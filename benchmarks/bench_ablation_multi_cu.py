"""Ablation — scaling to four CUs (issue queue + reorder buffer).

The paper's scalability argument (§1, §5.2.1): with more CUs the
combinatorial configuration space explodes (4 CUs x 4 settings = 256
combinations), so the temporal approach's exhaustive tuning stops
finishing, while the DO-based scheme still tunes each CU at hotspots of
the matching grain.  The paper reports the IQ/ROB CUs as work in
progress; this bench exercises the reproduction's implementation of them.
"""

import pytest

from benchmarks.conftest import ABLATION_BUDGET
from repro.sim.config import ExperimentConfig, MachineConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark

BENCH = "jess"


def run(scheme: str):
    config = ExperimentConfig(
        machine=MachineConfig(enable_pipeline_cus=True),
        max_instructions=ABLATION_BUDGET,
    )
    return run_benchmark(build_benchmark(BENCH), scheme, config)


@pytest.fixture(scope="module")
def runs():
    return {s: run(s) for s in ("baseline", "bbv", "hotspot")}


def test_four_cu_config_space(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bbv_stats = runs["bbv"].bbv_stats
    # The BBV tuner now faces 256 combinations per phase: with the
    # calibrated interval counts, phases cannot finish tuning.
    print(
        f"BBV phases {bbv_stats.n_phases}, tuned {bbv_stats.tuned_phases}"
    )
    assert bbv_stats.tuned_phases <= bbv_stats.n_phases * 0.2, (
        "with 256 combinations, few/no BBV phases should finish tuning"
    )


def test_hotspot_scheme_still_tunes(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    stats = runs["hotspot"].hotspot_stats
    assert stats.tuned_hotspots > 0
    # Decoupling keeps per-hotspot lists small: trials per managed
    # hotspot stay near the per-CU setting count, not near 256.
    trials_per_hotspot = sum(stats.tunings.values()) / max(
        1, stats.managed_hotspots
    )
    print(f"hotspot trials/hotspot = {trials_per_hotspot:.1f}")
    assert trials_per_hotspot < 40


def test_pipeline_cus_are_exercised(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    reconfigs = runs["hotspot"].applied_reconfigurations
    assert reconfigs.get("IQ", 0) + reconfigs.get("ROB", 0) >= 0
    stats = runs["hotspot"].hotspot_stats
    assert "IQ" in stats.coverage and "ROB" in stats.coverage


def test_four_cu_energy_still_saved(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = runs["baseline"]
    hot = runs["hotspot"]

    def epi(result, attr):
        return getattr(result, attr) / result.instructions

    reduction = 1 - epi(hot, "l1d_energy_nj") / epi(base, "l1d_energy_nj")
    print(f"4-CU hotspot L1D reduction: {reduction:.1%}")
    assert reduction > 0.10
