"""Figure 4 — performance impact of the adaptation schemes.

Paper shape: both schemes stay cheap (BBV 1.34–2.38 %, hotspot
0.4–2.47 %), with the hotspot average (1.56 %) below BBV's (1.87 %).

Scale note (EXPERIMENTS.md): at the reproduction's 1/100 interval scale,
measurement windows are 100x shorter, so tuning transients and
noise-driven configuration choices cost proportionally more — absolute
slowdowns inflate by roughly 3–5x.  The *ordering* (hotspot cheaper than
BBV) and the boundedness are the preserved shape.
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import figure4


def test_figure4(benchmark, suite):
    exhibit = benchmark.pedantic(
        figure4, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    bbv = exhibit.data["bbv"]
    hot = exhibit.data["hotspot"]

    # Ordering: the hotspot scheme is cheaper on average.
    assert hot["avg"] < bbv["avg"], (
        f"hotspot slowdown {hot['avg']:.2%} should undercut BBV "
        f"{bbv['avg']:.2%}"
    )

    # Boundedness (scale-inflated; see module docstring).
    assert hot["avg"] < 0.10, f"hotspot slowdown {hot['avg']:.2%}"
    assert bbv["avg"] < 0.15, f"BBV slowdown {bbv['avg']:.2%}"
    for name, value in hot.items():
        assert value < 0.15, f"hotspot {name}: {value:.2%}"
    for name, value in bbv.items():
        assert value < 0.22, f"bbv {name}: {value:.2%}"

    # Nothing *speeds up* dramatically either (adaptation never adds
    # cache capacity beyond the baseline).
    for value in list(hot.values()) + list(bbv.values()):
        assert value > -0.02
