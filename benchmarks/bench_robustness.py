"""Robustness — do the headline orderings survive a different seed?

The calibrated exhibits run at seed 12345.  This bench re-runs a
four-benchmark subset with a different execution seed (different trip
jitter, different working-set address streams) and asserts the
*conclusions* — not the numbers — still hold:

* hotspot >= BBV on L1D energy (the scheme's headline advantage);
* hotspot slowdown below BBV's;
* L2 savings substantial for both.
"""

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite

BENCHES = ["db", "compress", "mtrt", "javac"]
OTHER_SEED = 98765


@pytest.fixture(scope="module")
def reseeded_suite():
    config = ExperimentConfig(max_instructions=6_000_000, seed=OTHER_SEED)
    return run_suite(BENCHES, config)


def test_orderings_survive_reseeding(benchmark, reseeded_suite):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    suite = reseeded_suite
    for name, comparison in suite.comparisons.items():
        l1d_hot = comparison.energy_reduction("hotspot", "L1D")
        l1d_bbv = comparison.energy_reduction("bbv", "L1D")
        print(
            f"{name}: L1D hot {l1d_hot:.1%} vs bbv {l1d_bbv:.1%}; "
            f"slow hot {comparison.slowdown('hotspot'):.2%} vs "
            f"bbv {comparison.slowdown('bbv'):.2%}"
        )
        assert l1d_hot >= l1d_bbv - 0.03, (
            f"{name}: L1D ordering flipped under reseeding"
        )
    assert suite.average_slowdown("hotspot") < suite.average_slowdown(
        "bbv"
    ), "slowdown ordering flipped under reseeding"
    assert suite.average_energy_reduction("hotspot", "L2") > 0.25
    assert suite.average_energy_reduction("bbv", "L2") > 0.20


def test_savings_regime_stable(benchmark, reseeded_suite):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    suite = reseeded_suite
    # Within a handful of points of the calibrated-seed averages.
    assert 0.25 < suite.average_energy_reduction("hotspot", "L1D") < 0.55
    assert 0.15 < suite.average_energy_reduction("bbv", "L1D") < 0.45
