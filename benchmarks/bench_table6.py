"""Table 6 — tunings, reconfigurations, and coverage.

Paper shape (its Table 6 plus §5.2.1 prose):
* thanks to CU decoupling, the hotspot scheme makes *fewer tuning
  attempts* yet applies its chosen configurations *more often* than BBV;
* the L1D is reconfigured much more often than the L2 under the hotspot
  scheme (multi-grain adaptation: cheap CUs adapt at fine grain);
* coverage — instructions executed under tuned configurations — is high
  for the hotspot scheme.
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import table6
from repro.sim.metrics import mean


def test_table6(benchmark, suite):
    exhibit = benchmark.pedantic(
        table6, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    data = exhibit.data

    def avg(label: str) -> float:
        return mean(list(data[label].values()))

    # Fewer tunings: per managed unit, the hotspot scheme tests 4
    # configurations instead of 16 combinations.
    hot_tunings = avg("hotspot L1D tunings") + avg("hotspot L2 tunings")
    bbv_tunings = avg("BBV L1D tunings") + avg("BBV L2 tunings")
    assert hot_tunings < 1.5 * bbv_tunings, (
        f"hotspot tunings {hot_tunings:.0f} vs BBV {bbv_tunings:.0f}: "
        "decoupling shows no tuning advantage"
    )

    # More reconfigurations: recurring hotspots apply their chosen
    # configuration at every invocation with zero identification latency.
    hot_reconfigs = (
        avg("hotspot L1D reconfigs") + avg("hotspot L2 reconfigs")
    )
    bbv_reconfigs = avg("BBV L1D reconfigs") + avg("BBV L2 reconfigs")
    assert hot_reconfigs > bbv_reconfigs, (
        f"hotspot reconfigs {hot_reconfigs:.0f} should exceed BBV "
        f"{bbv_reconfigs:.0f}"
    )

    # Multi-grain adaptation: L1D reconfigured more often than L2.
    assert avg("hotspot L1D reconfigs") > avg("hotspot L2 reconfigs"), (
        "the low-overhead CU should be reconfigured more frequently"
    )

    # Good hotspot coverage on both CUs.
    assert avg("hotspot L1D coverage (%)") > 70
    assert avg("hotspot L2 coverage (%)") > 60
