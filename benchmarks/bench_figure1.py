"""Figure 1 — distribution of stable/transitional BBV phase intervals.

Paper shape: most benchmarks are heavily stable (the average stable share
is around 70 %), and javac has by far the largest transitional share —
"ignoring transitional phases may considerably reduce the coverage of
resource adaptation".
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import figure1
from repro.report.paper import PAPER


def test_figure1(benchmark, suite):
    exhibit = benchmark.pedantic(
        figure1, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    stable = exhibit.data["stable"]

    # Shape: the suite is predominantly stable on average.
    assert stable["avg"] > 0.55, (
        f"average stable share {stable['avg']:.2f} too low"
    )

    # Shape: javac is the most transitional benchmark (Figure 1's javac
    # bar; paper prose singles it out).
    worst = min(
        (name for name in stable if name != "avg"),
        key=lambda n: stable[n],
    )
    assert worst == PAPER["figure1"]["worst_stable_benchmark"], (
        f"most transitional benchmark is {worst}, paper says javac"
    )

    # Shape: streaming benchmarks are near-fully stable.
    assert stable["mpegaudio"] > 0.9
    assert stable["compress"] > 0.8
