"""End-to-end smoke check of the parallel run API via the real CLI.

Complements the exhibit benches: instead of calling the Python API, this
drives ``python -m repro quick --jobs 2`` as a subprocess (see the
``cli_quick_smoke`` session fixture in conftest) and asserts the engine
produced a sane report.
"""


def test_cli_quick_jobs2_smoke(cli_quick_smoke):
    completed = cli_quick_smoke
    assert completed.returncode == 0, completed.stderr
    assert "L1D energy reduction" in completed.stdout
    assert "slowdown" in completed.stdout
