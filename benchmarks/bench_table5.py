"""Table 5 — runtime characteristics of the hotspot and BBV approaches.

Paper shape:
* a large majority of managed hotspots finish tuning (~88 % on average:
  4 configurations to test instead of 16), while only a minority of BBV
  phases do (~29 %) — yet those tuned phases still cover most intervals;
* inter-phase IPC variation far exceeds per-phase variation for both
  approaches (phases/hotspots are internally homogeneous but mutually
  heterogeneous) — the paper reads this as "hotspots are closely related
  with program behavior changes".
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import table5
from repro.sim.metrics import mean


def test_table5(benchmark, suite):
    exhibit = benchmark.pedantic(
        table5, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    hot = exhibit.data["hotspot"]
    bbv = exhibit.data["bbv"]

    # Hotspots: both size classes observed, most hotspots tuned.
    tuned_pct = list(hot["% of tuned hotspots"].values())
    assert mean(tuned_pct) > 70, (
        f"only {mean(tuned_pct):.0f}% of hotspots finish tuning"
    )
    for name, count in hot["number of L1D hotspots"].items():
        assert count >= 1, f"{name}: no L1D hotspots"
    for name, count in hot["number of L2 hotspots"].items():
        assert count >= 1, f"{name}: no L2 hotspots"

    # BBV: phases detected everywhere; a minority complete the
    # 16-configuration tuning, but tuned phases dominate interval time.
    tuned_phase_frac = [
        bbv["number of tuned phases"][n]
        / max(1, bbv["number of phases"][n])
        for n in bbv["number of phases"]
    ]
    assert mean(tuned_phase_frac) < 0.8, (
        "BBV tunes nearly every phase - its combinatorial tuning cost "
        "is not being felt"
    )
    interval_cov = list(bbv["% of intervals in tuned phases"].values())
    assert mean(interval_cov) > 45, (
        f"tuned BBV phases cover only {mean(interval_cov):.0f}% of "
        "intervals"
    )

    # CoV structure: inter >> per, for both approaches.
    for label, rows in (("hotspot", hot), ("bbv", bbv)):
        per_key = [k for k in rows if k.startswith("per-")][0]
        inter_key = [k for k in rows if k.startswith("inter-")][0]
        per = mean(list(rows[per_key].values()))
        inter = mean(list(rows[inter_key].values()))
        assert inter > 1.5 * per, (
            f"{label}: inter-CoV {inter:.1f}% should dwarf per-CoV "
            f"{per:.1f}%"
        )
