"""Table 4 — runtime hotspot characteristics.

Paper shape: hotspots cover ~99 % of dynamic instructions; a hotspot's
average invocation count far exceeds hot_threshold, so the one-time
identification latency is a small single-digit percentage of execution
(at most 3.65 % in the paper, for compress).
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import table4
from repro.sim.config import ExperimentConfig


def test_table4(benchmark, suite, calibrated_config: ExperimentConfig):
    exhibit = benchmark.pedantic(
        table4, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    data = exhibit.data

    coverage = data["% of code in hotspots"]
    for name, value in coverage.items():
        assert value > 90, f"{name}: hotspot coverage {value:.1f}% too low"

    invocations = data["avg invocations per hotspot"]
    for name, value in invocations.items():
        assert value > 5 * calibrated_config.hot_threshold, (
            f"{name}: {value:.0f} invocations/hotspot does not dwarf "
            f"hot_threshold={calibrated_config.hot_threshold}"
        )

    latency = data["identification latency (%)"]
    for name, value in latency.items():
        assert value < 12, (
            f"{name}: identification latency {value:.1f}% too high"
        )
    avg_latency = sum(latency.values()) / len(latency)
    assert avg_latency < 8

    counts = data["number of hotspots"]
    for name, value in counts.items():
        assert value >= 5, f"{name}: only {value} hotspots detected"

    # jack has the most hotspots of the smallest mean size (its column
    # in the paper's Table 4 is the small-hotspot outlier).
    sizes = data["average hotspot size"]
    assert sizes["jack"] == min(sizes.values())
