"""Simulator throughput benchmarks (instructions simulated per second).

These time the substrate itself rather than reproducing an exhibit: the
block-granularity design is what makes the reproduction feasible in pure
Python, and these benches quantify it and catch regressions.
"""

import pytest

from repro.sim.config import ExperimentConfig, MachineConfig, build_machine
from repro.sim.driver import run_benchmark
from repro.vm.vm import VMConfig, VirtualMachine
from repro.workloads.specjvm import build_benchmark

BUDGET = 500_000


def simulate(scheme: str) -> int:
    config = ExperimentConfig(max_instructions=BUDGET)
    result = run_benchmark(build_benchmark("db"), scheme, config)
    return result.instructions


@pytest.mark.parametrize("scheme", ["baseline", "bbv", "hotspot"])
def test_throughput_by_scheme(benchmark, scheme):
    instructions = benchmark.pedantic(
        simulate, args=(scheme,), rounds=3, iterations=1
    )
    assert instructions >= BUDGET
    # Regression floor: the simulator should stay above ~0.2 M
    # instructions/second even on slow machines.
    assert benchmark.stats.stats.mean < BUDGET / 200_000


def test_interpreter_only_throughput(benchmark):
    """VM + machine with the no-op policy on a hand-built workload."""

    def run():
        machine = build_machine(MachineConfig())
        vm = VirtualMachine(
            build_benchmark("compress").program,
            machine,
            config=VMConfig(hot_threshold=4),
        )
        vm.run(BUDGET)
        return machine.instructions

    instructions = benchmark.pedantic(run, rounds=3, iterations=1)
    assert instructions >= BUDGET
