"""Supplementary exhibit — energy breakdown behind Figure 3.

Not a paper table, but the mechanism check for the headline result: cache
downsizing attacks *leakage* first (it scales linearly with capacity,
dynamic energy only with its square root), and the reconfiguration energy
the framework spends (dirty-line writebacks on resize, §2.1) must remain
a small fraction of what it saves.
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import energy_breakdown
from repro.sim.metrics import mean


def test_energy_breakdown(benchmark, suite):
    exhibit = benchmark.pedantic(
        energy_breakdown, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    data = exhibit.data

    def avg(label):
        return mean(list(data[label].values()))

    # Leakage dominates the baseline L2 (a large SRAM), which is why L2
    # savings track capacity so strongly.
    assert avg("L2 baseline leakage (nJ/insn)") > (
        avg("L2 baseline dynamic (nJ/insn)")
    )

    # Adaptation cuts leakage on both caches.
    for cache in ("L1D", "L2"):
        saved = (
            avg(f"{cache} baseline leakage (nJ/insn)")
            - avg(f"{cache} hotspot leakage (nJ/insn)")
        )
        assert saved > 0, f"{cache}: no leakage savings"

        # Reconfiguration energy is a small fraction of what it buys.
        reconfig = avg(f"{cache} hotspot reconfig (nJ/insn)")
        assert reconfig < 0.25 * saved, (
            f"{cache}: reconfiguration energy {reconfig:.4f} eats too "
            f"much of the {saved:.4f} leakage saving"
        )

    # The baseline spends no reconfiguration energy at all.
    assert avg("L1D baseline reconfig (nJ/insn)") == 0
    assert avg("L2 baseline reconfig (nJ/insn)") == 0
