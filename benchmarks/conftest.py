"""Shared fixtures for the benchmark harness.

The full calibrated suite (7 stand-ins x 3 schemes at the default 6 M
instruction budget) is resolved once per session through the experiment
engine; every exhibit bench is a different projection of those 21 runs.
Across sessions the persistent result store means the grid only actually
simulates when the configuration (or store) changed.  Set
``REPRO_BENCH_JOBS`` to fan the first, uncached resolution out across
worker processes.  Ablation benches run their own additional simulations.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite

#: Budget used by ablation benches (shorter than the headline suite; the
#: comparisons are within-bench, so only relative behaviour matters).
ABLATION_BUDGET = 3_000_000


@pytest.fixture(scope="session")
def calibrated_config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def suite(calibrated_config):
    """The three-scheme suite over all seven stand-ins (cached)."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return run_suite(config=calibrated_config, jobs=jobs)


@pytest.fixture(scope="session")
def cli_quick_smoke(tmp_path_factory):
    """End-to-end CLI smoke run exercising the parallel engine path.

    Invokes ``python -m repro quick --jobs 2`` as a real subprocess with
    an isolated store, mirroring how a user would drive the run API.
    Returns the completed process for benches to assert on.
    """
    store_dir = tmp_path_factory.mktemp("cli-smoke-store")
    src = str(Path(__file__).resolve().parent.parent / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "quick",
            "--jobs",
            "2",
            "--benchmarks",
            "db",
            "--instructions",
            "300000",
            "--store-dir",
            str(store_dir),
        ],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    return completed


def print_exhibit(exhibit) -> None:
    print()
    print(exhibit.rendered)
