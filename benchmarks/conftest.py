"""Shared fixtures for the benchmark harness.

The full calibrated suite (7 stand-ins x 3 schemes at the default 6 M
instruction budget) is simulated once per session; every exhibit bench is
a different projection of those 21 runs.  Ablation benches run their own
additional simulations.
"""

from __future__ import annotations

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite

#: Budget used by ablation benches (shorter than the headline suite; the
#: comparisons are within-bench, so only relative behaviour matters).
ABLATION_BUDGET = 3_000_000


@pytest.fixture(scope="session")
def calibrated_config() -> ExperimentConfig:
    return ExperimentConfig()


@pytest.fixture(scope="session")
def suite(calibrated_config):
    """The three-scheme suite over all seven stand-ins (cached)."""
    return run_suite(config=calibrated_config)


def print_exhibit(exhibit) -> None:
    print()
    print(exhibit.rendered)
