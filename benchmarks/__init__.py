"""Benchmark harness package (one bench per paper exhibit + ablations)."""
