"""Tables 1–3 — the qualitative comparison, machine configuration, and
benchmark descriptions, with measured values substituted into Table 1."""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import table1, table2, table3


def test_table1(benchmark, suite):
    exhibit = benchmark.pedantic(
        table1, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    # The DO-based approach tests far fewer configurations per tuning
    # target than the combinatorial temporal approach.
    assert (
        exhibit.data["avg_hotspot_trials"]
        < exhibit.data["avg_bbv_trials"]
    )
    # New-hotspot identification is a one-time cost, a small fraction of
    # execution.
    assert exhibit.data["avg_identification_latency"] < 0.10


def test_table2(benchmark):
    exhibit = benchmark.pedantic(table2, rounds=1, iterations=1)
    print_exhibit(exhibit)
    assert "L1 D-cache" in exhibit.data
    assert "4-way" in exhibit.data["L2 unified cache"]


def test_table3(benchmark):
    exhibit = benchmark.pedantic(table3, rounds=1, iterations=1)
    print_exhibit(exhibit)
    assert len(exhibit.data) == 7
    assert "ray traces" in exhibit.data["mtrt"]
