"""Scale-validity study — slowdown inflation is a scale artifact.

EXPERIMENTS.md's main deviation: at the reproduction's 1/100 interval
scale, absolute slowdowns run ~4x the paper's, because measurement
windows shrink 100x (noise vs. the 2 % threshold) while reconfiguration
refill costs do not shrink at all.  If that explanation is right, the
adaptive slowdown must *fall* as the interval scale grows toward the
paper's — everything else held equal.  This bench sweeps the interval
scale over 4x (with the workload's hotspot sizes and the instruction
budget tracking it, so all paper ratios stay fixed) and asserts the
trend.
"""

import dataclasses

import pytest

from repro.sim.config import ExperimentConfig, MachineConfig, ScaledParameters
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark

BENCH = "db"
BASE_SCALE = 0.01
#: (interval scale, instruction budget) — budget tracks the scale so each
#: run sees the same number of phases/intervals/invocations.
POINTS = [(0.005, 3_000_000), (0.01, 6_000_000), (0.02, 12_000_000)]


def run_at_scale(scale: float, budget: int):
    config = ExperimentConfig(
        machine=MachineConfig(params=ScaledParameters(scale=scale)),
        max_instructions=budget,
    )
    size_scale = scale / BASE_SCALE
    hotspot = run_benchmark(
        build_benchmark(BENCH, size_scale=size_scale), "hotspot", config
    )
    baseline = run_benchmark(
        build_benchmark(BENCH, size_scale=size_scale), "baseline", config
    )
    base_cpi = baseline.cycles / baseline.instructions
    cpi = hotspot.cycles / hotspot.instructions

    def epi(run, attr):
        return getattr(run, attr) / run.instructions

    return {
        "slowdown": cpi / base_cpi - 1,
        "l1d_reduction": 1 - epi(hotspot, "l1d_energy_nj")
        / epi(baseline, "l1d_energy_nj"),
    }


@pytest.fixture(scope="module")
def sweep():
    return {
        scale: run_at_scale(scale, budget) for scale, budget in POINTS
    }


def test_slowdown_shrinks_toward_paper_scale(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for scale, _budget in POINTS:
        m = sweep[scale]
        print(
            f"  scale 1/{1 / scale:.0f}: slowdown {m['slowdown']:.2%}, "
            f"L1D reduction {m['l1d_reduction']:.1%}"
        )
    finest = sweep[POINTS[0][0]]["slowdown"]
    coarsest = sweep[POINTS[-1][0]]["slowdown"]
    assert coarsest < finest + 0.01, (
        "slowdown should fall (or at worst hold) as the interval scale "
        "approaches the paper's — the inflation is a scale artifact"
    )


def test_savings_stable_across_scales(benchmark, sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    reductions = [sweep[scale]["l1d_reduction"] for scale, _ in POINTS]
    # The energy result is ratio-driven and should not swing wildly with
    # the scale choice.
    assert max(reductions) - min(reductions) < 0.35
    assert all(r > 0.2 for r in reductions)
