"""Ablation — sensitivity to the framework's two thresholds.

* ``performance_threshold`` (§3.2.2's 2 % IPC degradation bound): a looser
  bound admits smaller configurations (more energy saved, more slowdown);
  a tighter bound is more conservative.
* ``hot_threshold`` (Table 1): a higher detection threshold delays
  optimisation — identification latency grows roughly linearly with it.
"""

import pytest

from benchmarks.conftest import ABLATION_BUDGET
from repro.core.tuning import TuningConfig
from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.sim.experiment import cached_run, clear_cache
from repro.workloads.specjvm import build_benchmark

BENCH = "db"


def run_with_threshold(threshold: float):
    config = ExperimentConfig(
        tuning=TuningConfig(performance_threshold=threshold),
        max_instructions=ABLATION_BUDGET,
    )
    hotspot = run_benchmark(build_benchmark(BENCH), "hotspot", config)
    baseline = run_benchmark(build_benchmark(BENCH), "baseline", config)
    epi = hotspot.l1d_energy_nj / hotspot.instructions
    base_epi = baseline.l1d_energy_nj / baseline.instructions
    return 1 - epi / base_epi


@pytest.fixture(scope="module")
def threshold_sweep():
    return {t: run_with_threshold(t) for t in (0.005, 0.02, 0.10)}


def test_performance_threshold_trades_energy(benchmark, threshold_sweep):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for threshold, reduction in sorted(threshold_sweep.items()):
        print(f"threshold {threshold:.1%}: L1D reduction {reduction:.1%}")
    # A loose bound must not save *less* energy than a strict one
    # (monotone up to noise).
    assert threshold_sweep[0.10] >= threshold_sweep[0.005] - 0.05


def test_hot_threshold_drives_identification_latency(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    clear_cache()
    latencies = {}
    for hot_threshold in (3, 12):
        config = ExperimentConfig(
            max_instructions=ABLATION_BUDGET, hot_threshold=hot_threshold
        )
        result = cached_run(BENCH, "hotspot", config)
        latencies[hot_threshold] = result.identification_latency
        print(
            f"hot_threshold {hot_threshold}: latency "
            f"{result.identification_latency:.2%}"
        )
    assert latencies[12] > latencies[3], (
        "higher hot_threshold must raise identification latency"
    )
