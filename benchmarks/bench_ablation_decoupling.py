"""Ablation — CU decoupling on vs. off (the paper's central mechanism).

With decoupling disabled, every managed hotspot tunes the full
combinatorial configuration list of all CUs (16 instead of 4), and small
hotspots keep issuing L2 reconfiguration requests the hardware guard must
reject.  The paper's claim (§3.2.1, Table 1): decoupling significantly
reduces the tuning process.  Expected ablation shape: without decoupling,
tuning takes more trials per hotspot, fewer hotspots finish, and denied
reconfiguration requests appear.
"""

import pytest

from benchmarks.conftest import ABLATION_BUDGET
from repro.core.policy import HotspotACEPolicy
from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark

BENCHES = ("db", "jess")


def run_with_decoupling(decoupling: bool):
    config = ExperimentConfig(max_instructions=ABLATION_BUDGET)
    results = {}
    for name in BENCHES:
        policy = HotspotACEPolicy(
            tuning=config.tuning, decoupling=decoupling
        )
        result = run_benchmark(
            build_benchmark(name), "hotspot", config, policy=policy
        )
        results[name] = (result, policy.finalize(), policy.blocked_trials)
    return results


@pytest.fixture(scope="module")
def ablation():
    return {
        True: run_with_decoupling(True),
        False: run_with_decoupling(False),
    }


def test_decoupling_shrinks_config_lists(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for name in BENCHES:
        _, decoupled, _ = ablation[True][name]
        _, combinatorial, _ = ablation[False][name]
        # Trials per tuned hotspot: 4-ish vs 16-ish.
        d_trials = sum(decoupled.tunings.values()) / max(
            1, decoupled.managed_hotspots
        )
        c_trials = sum(combinatorial.tunings.values()) / max(
            1, combinatorial.managed_hotspots
        )
        print(
            f"{name}: trials/hotspot decoupled={d_trials:.1f} "
            f"combinatorial={c_trials:.1f}"
        )
        assert c_trials > d_trials, (
            f"{name}: combinatorial tuning should need more trials"
        )


def test_decoupling_improves_tuning_completion(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    total_decoupled = 0
    total_combinatorial = 0
    for name in BENCHES:
        _, decoupled, _ = ablation[True][name]
        _, combinatorial, _ = ablation[False][name]
        total_decoupled += decoupled.tuned_fraction
        total_combinatorial += combinatorial.tuned_fraction
    assert total_decoupled >= total_combinatorial, (
        "decoupled tuning should complete at least as often"
    )


def test_no_decoupling_blocks_trials_on_the_guard(benchmark, ablation):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blocked = sum(ablation[False][name][2] for name in BENCHES)
    blocked_decoupled = sum(ablation[True][name][2] for name in BENCHES)
    print(f"blocked trials: combinatorial={blocked} "
          f"decoupled={blocked_decoupled}")
    # Small hotspots requesting slow-CU changes run into the
    # reconfiguration-interval guard and must retry.
    assert blocked > blocked_decoupled
