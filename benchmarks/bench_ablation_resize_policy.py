"""Ablation — cache resize semantics: selective-sets vs. full flush.

DESIGN.md §6 notes the reproduction models resizing with selective-sets
semantics (surviving lines retained).  This bench quantifies the
alternative: with ``resize_policy="flush"`` every resize invalidates the
whole cache, inflating the reconfiguration cost the framework pays.  The
comparison shows (a) why selective hardware matters for fine-grain
adaptation and (b) that the headline savings do not depend on the
optimistic model — energy stays in the same regime under full flush, at a
higher performance price.
"""

import pytest

from benchmarks.conftest import ABLATION_BUDGET
from repro.sim.config import ExperimentConfig, MachineConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark

BENCH = "db"


def run(resize_policy: str):
    config = ExperimentConfig(
        machine=MachineConfig(resize_policy=resize_policy),
        max_instructions=ABLATION_BUDGET,
    )
    hotspot = run_benchmark(build_benchmark(BENCH), "hotspot", config)
    baseline = run_benchmark(build_benchmark(BENCH), "baseline", config)
    return hotspot, baseline


@pytest.fixture(scope="module")
def runs():
    return {policy: run(policy) for policy in ("selective", "flush")}


def metrics(pair):
    hotspot, baseline = pair
    base_cpi = baseline.cycles / baseline.instructions
    cpi = hotspot.cycles / hotspot.instructions

    def epi(run, attr):
        return getattr(run, attr) / run.instructions

    return {
        "slowdown": cpi / base_cpi - 1,
        "l1d_reduction": 1 - epi(hotspot, "l1d_energy_nj")
        / epi(baseline, "l1d_energy_nj"),
        "l2_reduction": 1 - epi(hotspot, "l2_energy_nj")
        / epi(baseline, "l2_energy_nj"),
    }


def test_flush_policy_costs_more_performance(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    selective = metrics(runs["selective"])
    flush = metrics(runs["flush"])
    for name, m in (("selective", selective), ("flush", flush)):
        print(
            f"  {name:9s} slowdown {m['slowdown']:.2%} "
            f"L1D {m['l1d_reduction']:.1%} L2 {m['l2_reduction']:.1%}"
        )
    assert flush["slowdown"] >= selective["slowdown"] - 0.01, (
        "full-flush resizing should not be cheaper than selective"
    )


def test_savings_survive_conservative_model(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    flush = metrics(runs["flush"])
    # The headline result does not hinge on the optimistic resize model.
    assert flush["l1d_reduction"] > 0.2
    assert flush["l2_reduction"] > 0.2
