"""Ablation — the full baseline landscape of paper §2.2/§3.5.

Runs five adaptation schemes on one benchmark:

* ``hotspot``      — the paper's framework;
* ``bbv``          — the paper's comparison scheme (no predictor);
* ``bbv+pred``     — BBV with the next-phase predictor of [20]/[24] that
                     the paper's baseline deliberately omits;
* ``working-set``  — Dhodapkar & Smith's detector under the same tuner;
* ``positional``   — the original positional approach [14]: large
                     procedures only, combinatorial tuning.

Paper claims quantified here:
* §3.5: the positional approach manages far fewer, coarser units than
  the hotspot framework ("inability to adapt to changes within the
  procedures");
* §3.5: next-phase prediction helps BBV recover transitional intervals —
  at the cost of acting on mispredictions;
* [10] (cited in §2.2): BBV is at least as strong a phase signal as
  working-set signatures.
"""

import pytest

from benchmarks.conftest import ABLATION_BUDGET
from repro.core.policy import HotspotACEPolicy
from repro.phases.policy import BBVACEPolicy
from repro.phases.positional import PositionalACEPolicy
from repro.phases.prediction import NextPhasePredictor
from repro.phases.working_set import make_working_set_policy
from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark

BENCH = "javac"  # transitional-heavy: the discriminating workload


def build_policies(config):
    return {
        "hotspot": HotspotACEPolicy(tuning=config.tuning),
        "bbv": BBVACEPolicy(tuning=config.tuning),
        "bbv+pred": BBVACEPolicy(
            tuning=config.tuning,
            next_phase_predictor=NextPhasePredictor(),
        ),
        "working-set": make_working_set_policy(tuning=config.tuning),
        "positional": PositionalACEPolicy(tuning=config.tuning),
    }


@pytest.fixture(scope="module")
def runs():
    config = ExperimentConfig(max_instructions=ABLATION_BUDGET)
    out = {
        "baseline": (
            run_benchmark(build_benchmark(BENCH), "baseline", config),
            None,
        )
    }
    for label, policy in build_policies(config).items():
        result = run_benchmark(
            build_benchmark(BENCH), "hotspot", config, policy=policy
        )
        out[label] = (result, policy)
    return out


def epi(result, attr: str) -> float:
    return getattr(result, attr) / result.instructions


def reduction(runs, label: str, attr: str) -> float:
    base = epi(runs["baseline"][0], attr)
    return 1 - epi(runs[label][0], attr) / base


def test_baseline_landscape(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print()
    for label in ("hotspot", "bbv", "bbv+pred", "working-set",
                  "positional"):
        l1d = reduction(runs, label, "l1d_energy_nj")
        l2 = reduction(runs, label, "l2_energy_nj")
        print(f"  {label:12s} L1D {l1d:+6.1%}  L2 {l2:+6.1%}")
    # The paper's framework leads the landscape on L1D energy.
    hotspot_l1d = reduction(runs, "hotspot", "l1d_energy_nj")
    for label in ("bbv", "working-set", "positional"):
        assert hotspot_l1d >= reduction(runs, label, "l1d_energy_nj") - 0.03


def test_positional_manages_coarser_units(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    hotspot_stats = runs["hotspot"][1].finalize()
    positional_stats = runs["positional"][1].finalize()
    print(
        f"managed units: hotspot {hotspot_stats.managed_hotspots}, "
        f"positional {positional_stats.managed_hotspots}"
    )
    assert (
        positional_stats.managed_hotspots
        < hotspot_stats.managed_hotspots
    ), "the positional approach should manage fewer, larger units"


def test_next_phase_predictor_acts_on_transitions(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    predicted_policy = runs["bbv+pred"][1]
    stats = predicted_policy.finalize()
    print(
        f"predictions applied: {stats.predicted_applications}, "
        f"accuracy: {stats.prediction_accuracy:.0%}"
    )
    # On the transitional-heavy workload the predictor fires, and its
    # accuracy is meaningfully better than chance over dozens of phases.
    assert stats.predicted_applications >= 0
    if predicted_policy.next_phase_predictor.predictions >= 10:
        assert stats.prediction_accuracy > 0.3


def test_working_set_detector_is_comparable_signal(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bbv_stats = runs["bbv"][1].finalize()
    wss_stats = runs["working-set"][1].finalize()
    print(
        f"phases: bbv {bbv_stats.n_phases}, "
        f"working-set {wss_stats.n_phases}; "
        f"stable: bbv {bbv_stats.occurrence_stats.stable_fraction:.0%}, "
        f"wss {wss_stats.occurrence_stats.stable_fraction:.0%}"
    )
    # Both detectors find phase structure on the same stream.
    assert wss_stats.n_phases >= 1
    assert wss_stats.occurrence_stats.stable_fraction > 0.3
