"""Figure 3 — L1D and L2 cache energy reduction (the headline result).

Paper shape: the hotspot scheme reduces L1D energy by 47 % on average to
BBV's 32 % — and wins on *every* benchmark, with db the strongest saver
(66 %, §5.2.2: a handful of methods cause ~95 % of its data misses).  On
the L2 the schemes are closer (58 % vs. 52 %), with the hotspot scheme
ahead on most benchmarks but not all (the paper's exceptions are jack and
mtrt).
"""

from benchmarks.conftest import print_exhibit
from repro.report.exhibits import figure3
from repro.report.paper import PAPER


def test_figure3(benchmark, suite):
    exhibit = benchmark.pedantic(
        figure3, args=(suite,), rounds=1, iterations=1
    )
    print_exhibit(exhibit)
    l1d = exhibit.data["L1D"]
    l2 = exhibit.data["L2"]
    paper = PAPER["figure3"]

    # L1D: hotspot beats BBV on average and on nearly every benchmark.
    assert l1d["hotspot"]["avg"] > l1d["bbv"]["avg"], (
        "hotspot scheme must beat BBV on average L1D energy"
    )
    wins = sum(
        1
        for name in l1d["hotspot"]
        if name != "avg"
        and l1d["hotspot"][name] >= l1d["bbv"][name] - 0.02
    )
    assert wins >= 6, f"hotspot wins L1D on only {wins}/7 benchmarks"

    # Both schemes deliver substantial savings (same regime as 47/32).
    assert l1d["hotspot"]["avg"] > 0.30
    assert 0.15 < l1d["bbv"]["avg"] < l1d["hotspot"]["avg"]

    # db is the strongest hotspot L1D saver (paper: 66 %).
    db_rank = sorted(
        (name for name in l1d["hotspot"] if name != "avg"),
        key=lambda n: l1d["hotspot"][n],
        reverse=True,
    ).index("db")
    assert db_rank == 0, "db should lead hotspot L1D savings"

    # L2: both schemes in the ~50 % regime, hotspot ahead on average.
    assert l2["hotspot"]["avg"] > 0.40
    assert l2["bbv"]["avg"] > 0.30
    assert l2["hotspot"]["avg"] > l2["bbv"]["avg"] - 0.02

    # Sanity vs. the paper's averages: same order of magnitude, same
    # ordering (absolute match is not expected on a different substrate).
    assert abs(l1d["hotspot"]["avg"] - paper["avg_l1d_reduction"]["hotspot"]) < 0.25
    assert abs(l2["hotspot"]["avg"] - paper["avg_l2_reduction"]["hotspot"]) < 0.25
