"""Ablation — JIT configuration prediction (the paper's future work).

§6: "one could use the JIT compiler ... to provide a good estimate for
the resource configuration required for this hotspot through appropriate
code analysis.  Such a feature could potentially completely eliminate the
tuning latency."  The reproduction's FootprintPredictor hoists the
statically-predicted configuration to the front of the tuning list, so a
correct prediction ends tuning after two trials (reference + prediction)
via the early-exit rule.

Expected shape: with prediction on, fewer tuning trials are spent per
hotspot while energy savings are preserved.
"""

import pytest

from benchmarks.conftest import ABLATION_BUDGET
from repro.core.policy import HotspotACEPolicy
from repro.core.prediction import (
    FootprintPredictor,
    install_program_for_prediction,
)
from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark

BENCH = "db"


def run(predict: bool):
    config = ExperimentConfig(max_instructions=ABLATION_BUDGET)
    built = build_benchmark(BENCH)
    predictor = FootprintPredictor() if predict else None
    policy = HotspotACEPolicy(tuning=config.tuning, predictor=predictor)
    result = run_benchmark(built, "hotspot", config, policy=policy)
    return result, policy


@pytest.fixture(scope="module")
def runs():
    return {flag: run(flag) for flag in (False, True)}


def test_prediction_reduces_tuning_trials(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base_result, base_policy = runs[False]
    pred_result, pred_policy = runs[True]
    base_stats = base_policy.finalize()
    pred_stats = pred_policy.finalize()
    base_trials = sum(base_stats.tunings.values())
    pred_trials = sum(pred_stats.tunings.values())
    print(
        f"trials without prediction: {base_trials}, "
        f"with prediction: {pred_trials} "
        f"({pred_policy.predictor.predictions} predictions made)"
    )
    assert pred_policy.predictor.predictions > 0
    assert pred_trials <= base_trials, (
        "prediction should not increase tuning trials"
    )


def test_prediction_preserves_energy_savings(benchmark, runs):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base_result, _ = runs[False]
    pred_result, _ = runs[True]

    def l1d_epi(result):
        return result.l1d_energy_nj / result.instructions

    # With prediction, per-instruction L1D energy stays in the same
    # regime (within 20 % of the unpredicted run).
    assert l1d_epi(pred_result) < 1.2 * l1d_epi(base_result)
