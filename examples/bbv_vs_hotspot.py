"""Head-to-head: the paper's comparison on a benchmark subset.

Runs baseline / BBV / hotspot on two stand-ins and prints Figure 3/4
style output — the single-command version of the paper's evaluation
(`python -m repro all` regenerates every exhibit on the full suite).

    python examples/bbv_vs_hotspot.py [benchmark ...]
"""

import sys
import time

from repro.report.figures import render_grouped_bars
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite
from repro.workloads.specjvm import BENCHMARK_NAMES


def main() -> None:
    names = sys.argv[1:] or ["db", "javac"]
    for name in names:
        if name not in BENCHMARK_NAMES:
            raise SystemExit(
                f"unknown benchmark {name!r}; choose from "
                f"{', '.join(BENCHMARK_NAMES)}"
            )

    config = ExperimentConfig(max_instructions=2_000_000)
    print(f"simulating {len(names)} benchmark(s) x 3 schemes ...")
    start = time.time()
    suite = run_suite(names, config)
    print(f"done in {time.time() - start:.1f}s\n")

    for cache in ("L1D", "L2"):
        print(
            render_grouped_bars(
                names,
                {
                    "BBV": [
                        suite.comparisons[n].energy_reduction("bbv", cache)
                        for n in names
                    ],
                    "hotspot": [
                        suite.comparisons[n].energy_reduction(
                            "hotspot", cache
                        )
                        for n in names
                    ],
                },
                title=f"{cache} cache energy reduction over baseline",
            )
        )
        print()
    print(
        render_grouped_bars(
            names,
            {
                "BBV": [
                    suite.comparisons[n].slowdown("bbv") for n in names
                ],
                "hotspot": [
                    suite.comparisons[n].slowdown("hotspot")
                    for n in names
                ],
            },
            title="performance degradation over baseline",
        )
    )
    print()
    for name in names:
        comparison = suite.comparisons[name]
        hs = comparison.hotspot.hotspot_stats
        bs = comparison.bbv.bbv_stats
        print(
            f"{name}: {hs.managed_hotspots} managed hotspots "
            f"({hs.tuned_hotspots} tuned, "
            f"{sum(hs.tunings.values())} trials) vs "
            f"{bs.n_phases} BBV phases "
            f"({bs.tuned_phases} tuned, "
            f"{sum(bs.tunings.values())} trials)"
        )


if __name__ == "__main__":
    main()
