"""Scaling the framework to four configurable units.

Enables the issue-queue and reorder-buffer CUs the paper reports as work
in progress (§4.1) alongside the two caches, and shows the scalability
story of §5.2.1: the combinatorial space grows to 4^4 = 256, so the BBV
temporal approach stops completing its tuning, while CU decoupling keeps
each hotspot's list at its own CU subset.

    python examples/multi_cu.py
"""

from repro.sim.config import ExperimentConfig, MachineConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark


def main() -> None:
    config = ExperimentConfig(
        machine=MachineConfig(enable_pipeline_cus=True),
        max_instructions=2_000_000,
    )
    print("four CUs: L1D, L2, IQ (issue queue), ROB (reorder buffer)")
    print("simulating 'jess' under all three schemes ...\n")

    runs = {
        scheme: run_benchmark(build_benchmark("jess"), scheme, config)
        for scheme in ("baseline", "bbv", "hotspot")
    }

    hot = runs["hotspot"].hotspot_stats
    bbv = runs["bbv"].bbv_stats

    print("hotspot scheme (CU decoupling):")
    print(f"  hotspots by CU class : {hot.hotspots_by_kind}")
    print(f"  tuned hotspots       : {hot.tuned_hotspots}/"
          f"{hot.managed_hotspots}")
    trials = sum(hot.tunings.values())
    print(f"  tuning trials        : {trials} "
          f"(~{trials / max(1, hot.managed_hotspots):.1f} per hotspot; "
          "a combinatorial tuner would need up to 256)")
    print(f"  reconfigurations     : {hot.reconfigs}")

    print()
    print("BBV scheme (combinatorial tuning over 256 combinations):")
    print(f"  phases               : {bbv.n_phases}")
    print(f"  tuned phases         : {bbv.tuned_phases} "
          "(the 256-entry list rarely completes)")
    print(f"  trials spent         : {sum(bbv.tunings.values())}")

    base = runs["baseline"]
    print()
    print("energy per instruction vs. baseline:")
    for label, attr in (("L1D", "l1d_energy_nj"), ("L2", "l2_energy_nj")):
        base_epi = getattr(base, attr) / base.instructions
        for scheme in ("bbv", "hotspot"):
            run = runs[scheme]
            epi = getattr(run, attr) / run.instructions
            print(f"  {label} {scheme:8s}: {1 - epi / base_epi:+.1%}")


if __name__ == "__main__":
    main()
