"""Adapt caches for a program written in the textual assembly DSL.

Demonstrates the public IR surface: a hand-written program with one
streaming kernel (cache-size-insensitive) and one table-walk kernel
(wants a 4 KB data cache), nested under a driver with a large-span sweep.
The framework detects all three as hotspots, assigns the kernels to the
L1D and the driver to the L2, and tunes each independently.

    python examples/custom_workload.py
"""

from repro import ACEFramework, assemble

SOURCE = """
entry main

method stream_kernel {
    region 0x20000000 2048
    block e {
        insns 6
        goto loop
    }
    block loop {
        insns 40
        loads 8
        stores 2
        mem stride span=2048 stride=64
        loop trips=25 exit=x
    }
    block x {
        insns 2
        ret
    }
}

method table_kernel {
    region 0x21000000 2200
    block e {
        insns 6
        goto loop
    }
    block loop {
        insns 44
        loads 10
        stores 2
        mem workingset span=2200 locality=0.6
        loop trips=30 exit=x
    }
    block x {
        insns 2
        ret
    }
}

method driver {
    region 0x22000000 20480
    block e {
        insns 8
        goto loop
    }
    block loop {
        insns 30
        loads 6
        stores 2
        mem workingset span=20480 locality=0.0
        call stream_kernel
        call table_kernel
        loop trips=4 exit=x
    }
    block x {
        insns 2
        ret
    }
}

method main {
    block top {
        insns 3
        call driver
        loop trips=100000 exit=end
    }
    block end {
        insns 1
        ret
    }
}
"""


def main() -> None:
    program = assemble(SOURCE)
    print(f"assembled: {program}")

    framework = ACEFramework()
    report = framework.run(program, max_instructions=1_200_000)

    print()
    print(report.summary())
    print()
    print("per-hotspot decisions:")
    stats = report.policy_stats
    for name, kind in sorted(stats.kind_of.items()):
        ipc = stats.hotspot_mean_ipc.get(name)
        line = f"  {name:14s} class={kind:9s}"
        if ipc:
            line += f" mean IPC={ipc:.2f}"
        print(line)
    print()
    print("The streaming kernel tolerates any L1D size, the table walk "
          "needs ~4 KB, and the driver's 20 KB span sets the L2 choice — "
          "each tuned at its own grain (CU decoupling).")


if __name__ == "__main__":
    main()
