"""The paper's future-work sketch: JIT configuration prediction.

§6: "one could use the JIT compiler in the DO system to provide a good
estimate for the resource configuration required for this hotspot through
appropriate code analysis.  Such a feature could potentially completely
eliminate the tuning latency and overhead."

The FootprintPredictor statically reads each hotspot's declared memory
behaviour out of the IR, predicts the smallest comfortable cache size,
and seeds the tuning list with it; a qualifying prediction ends tuning
after two trials instead of four.

    python examples/jit_prediction.py
"""

from repro.core.policy import HotspotACEPolicy
from repro.core.prediction import FootprintPredictor
from repro.sim.config import ExperimentConfig
from repro.sim.driver import run_benchmark
from repro.workloads.specjvm import build_benchmark


def run(predict: bool):
    config = ExperimentConfig(max_instructions=2_000_000)
    policy = HotspotACEPolicy(
        tuning=config.tuning,
        predictor=FootprintPredictor() if predict else None,
    )
    result = run_benchmark(
        build_benchmark("db"), "hotspot", config, policy=policy
    )
    return result, policy


def main() -> None:
    print("simulating 'db' with and without JIT prediction ...\n")
    plain_result, plain_policy = run(predict=False)
    pred_result, pred_policy = run(predict=True)

    plain = plain_policy.finalize()
    pred = pred_policy.finalize()

    print(f"{'':28s}{'no prediction':>15s}{'prediction':>13s}")
    print(f"{'tuning trials':28s}"
          f"{sum(plain.tunings.values()):>15d}"
          f"{sum(pred.tunings.values()):>13d}")
    print(f"{'tuned hotspots':28s}"
          f"{plain.tuned_hotspots:>15d}{pred.tuned_hotspots:>13d}")

    def epi(result, attr):
        return getattr(result, attr) / result.instructions

    for label, attr in (("L1D", "l1d_energy_nj"), ("L2", "l2_energy_nj")):
        print(f"{label + ' energy/insn (nJ)':28s}"
              f"{epi(plain_result, attr):>15.4f}"
              f"{epi(pred_result, attr):>13.4f}")
    print(f"{'predictions made':28s}{'-':>15s}"
          f"{pred_policy.predictor.predictions:>13d}")
    print()
    print("A qualifying prediction ends a hotspot's tuning after two "
          "trials (reference + predicted), cutting the time spent in "
          "sub-optimal configurations.")


if __name__ == "__main__":
    main()
