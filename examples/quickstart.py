"""Quickstart: run the DO-based ACE framework on one benchmark.

Builds the `db` SPECjvm98 stand-in, runs it under hotspot-driven cache
adaptation, and compares energy and performance against the static
maximum-size baseline — the experiment behind the paper's headline
numbers, on one benchmark.

    python examples/quickstart.py
"""

from repro import ACEFramework, build_benchmark


def main() -> None:
    built = build_benchmark("db")
    framework = ACEFramework()

    print("configuration:", framework.describe())
    print(f"running '{built.name}' (1.5M instructions, adaptive then "
          "baseline)...")

    report = framework.run(
        built.program,
        max_instructions=1_500_000,
        thread_entries=built.thread_entries,
    )

    print()
    print(report.summary())
    print()
    print(f"  L1D energy reduction : {report.l1d_energy_reduction:.1%}")
    print(f"  L2  energy reduction : {report.l2_energy_reduction:.1%}")
    print(f"  slowdown             : {report.slowdown:+.2%}")
    print(f"  hotspots detected    : {report.hotspots_detected}")
    stats = report.policy_stats
    print(f"  managed / tuned      : {stats.managed_hotspots} / "
          f"{stats.tuned_hotspots}")
    print(f"  by size class        : {stats.hotspots_by_kind}")
    print(f"  tuning trials        : {stats.tunings}")
    print(f"  reconfigurations     : {stats.reconfigs}")
    print(f"  coverage             : "
          f"{ {k: f'{v:.0%}' for k, v in stats.coverage.items()} }")


if __name__ == "__main__":
    main()
