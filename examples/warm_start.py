"""Warm-starting: persist the DO database and tuning results across runs.

Production DO systems persist their translation caches; applying the same
idea to the paper's framework removes both remaining latencies on a rerun
of the same workload: hotspots are recognised at their *first* invocation
(zero identification latency) and adopt last run's configurations without
tuning (zero tuning latency) — pending a quick A/B verification by the
sampling code, so stale entries are walked back instead of trusted.

    python examples/warm_start.py
"""

from repro.core.policy import HotspotACEPolicy
from repro.sim.config import ExperimentConfig, build_machine
from repro.sim.driver import run_benchmark
from repro.vm.hotspot import DODatabase
from repro.vm.vm import VMConfig, VirtualMachine
from repro.workloads.specjvm import build_benchmark


def cold_run(config):
    """First execution: detect, tune, and harvest the DO database."""
    built = build_benchmark("db")
    policy = HotspotACEPolicy(tuning=config.tuning)
    machine = build_machine(config.machine)
    vm = VirtualMachine(
        built.program, machine, policy=policy,
        config=VMConfig(hot_threshold=config.hot_threshold),
        thread_entries=built.thread_entries,
    )
    vm.run(config.max_instructions)
    return vm, policy


def main() -> None:
    config = ExperimentConfig(max_instructions=1_500_000)

    print("run 1 (cold): detecting and tuning ...")
    vm, policy = cold_run(config)
    database_blob = vm.database.to_dict()
    chosen = policy.chosen_configs()
    stats = policy.finalize()
    cold_latency = sum(
        p.pre_hot_instructions for p in vm.database.profiles()
        if p.is_hot
    ) / vm.machine.instructions
    print(f"  hotspots detected : {len(vm.database.hotspots)}")
    print(f"  tuning trials     : {sum(stats.tunings.values())}")
    print(f"  identification    : {cold_latency:.2%} of execution")
    print(f"  persisted configs : {chosen}")

    print()
    print("run 2 (warm): preloaded database + inherited configurations ...")
    warm_policy = HotspotACEPolicy(
        tuning=config.tuning, warm_start=chosen
    )
    result = run_benchmark(
        build_benchmark("db"), "hotspot", config,
        policy=warm_policy,
        preload_database=DODatabase.from_dict(database_blob),
    )
    warm_stats = warm_policy.finalize()
    print(f"  warm-started      : {warm_policy.warm_started} hotspots")
    print(f"  tuning trials     : {sum(warm_stats.tunings.values())}")
    print(f"  identification    : "
          f"{result.identification_latency:.2%} of execution")
    print(f"  L1D coverage      : {warm_stats.coverage['L1D']:.0%} "
          "(configured from the first invocation)")


if __name__ == "__main__":
    main()
