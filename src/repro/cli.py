"""Command-line interface: regenerate any exhibit of the paper.

Examples::

    python -m repro figure3
    python -m repro table4 --benchmarks db javac --instructions 2000000
    python -m repro all --instructions 6000000
    python -m repro quick   # one-benchmark smoke run
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.report import exhibits
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite
from repro.workloads.specjvm import BENCHMARK_NAMES

SUITE_EXHIBITS = {
    "figure1": exhibits.figure1,
    "energy": exhibits.energy_breakdown,
    "table1": exhibits.table1,
    "table4": exhibits.table4,
    "table5": exhibits.table5,
    "table6": exhibits.table6,
    "figure3": exhibits.figure3,
    "figure4": exhibits.figure4,
}

STATIC_EXHIBITS = {
    "table2": lambda: exhibits.table2(),
    "table3": lambda: exhibits.table3(),
}

ALL_EXHIBITS = [
    "figure1", "table1", "table2", "table3", "table4", "table5",
    "table6", "figure3", "figure4", "energy",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ace",
        description=(
            "Reproduction of 'Effective Adaptive Computing Environment "
            "Management via Dynamic Optimization' (CGO 2005): regenerate "
            "the paper's tables and figures on synthetic SPECjvm98 "
            "stand-ins."
        ),
    )
    parser.add_argument(
        "exhibit",
        choices=ALL_EXHIBITS + ["all", "quick"],
        help="which exhibit to regenerate ('all' for every one, 'quick' "
        "for a fast single-benchmark smoke run)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        choices=list(BENCHMARK_NAMES),
        default=None,
        help="subset of benchmarks (default: all seven)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="instruction budget per run (default: calibrated 6,000,000)",
    )
    parser.add_argument(
        "--hot-threshold",
        type=int,
        default=None,
        help="hotspot detection threshold (invocations)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="simulation seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for simulations (default: 1, serial; "
        "results are identical for any value)",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="persistent result-store directory (default: results/store, "
        "or $REPRO_STORE_DIR)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent result store (in-memory cache only)",
    )
    return parser


def make_config(args) -> ExperimentConfig:
    config = ExperimentConfig()
    if args.instructions is not None:
        config.max_instructions = args.instructions
    if args.hot_threshold is not None:
        config.hot_threshold = args.hot_threshold
    if args.seed is not None:
        config.seed = args.seed
    return config


def configure_store(args) -> None:
    """Apply ``--no-store`` / ``--store-dir`` to the experiment layer."""
    from repro.sim.experiment import set_default_store
    from repro.sim.store import ResultStore

    if args.no_store:
        set_default_store(None)
    elif args.store_dir is not None:
        set_default_store(ResultStore(args.store_dir))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.exhibit in STATIC_EXHIBITS:
        print(STATIC_EXHIBITS[args.exhibit]().rendered)
        return 0

    configure_store(args)
    from repro.sim.experiment import make_engine

    engine = make_engine(jobs=args.jobs)
    config = make_config(args)
    if args.exhibit == "quick":
        from repro.sim.experiment import compare_schemes

        config.max_instructions = min(config.max_instructions, 1_500_000)
        start = time.time()
        comparison = compare_schemes(
            (args.benchmarks or ["db"])[0], config, engine=engine
        )
        for cache in ("L1D", "L2"):
            print(
                f"{cache} energy reduction: "
                f"BBV {comparison.energy_reduction('bbv', cache):.1%}, "
                f"hotspot "
                f"{comparison.energy_reduction('hotspot', cache):.1%}"
            )
        print(
            f"slowdown: BBV {comparison.slowdown('bbv'):.2%}, "
            f"hotspot {comparison.slowdown('hotspot'):.2%}"
        )
        print(f"({time.time() - start:.1f}s)")
        return 0

    start = time.time()
    suite = run_suite(args.benchmarks, config, engine=engine)
    elapsed = time.time() - start
    wanted = (
        ALL_EXHIBITS if args.exhibit == "all" else [args.exhibit]
    )
    for name in wanted:
        if name in STATIC_EXHIBITS:
            print(STATIC_EXHIBITS[name]().rendered)
        else:
            print(SUITE_EXHIBITS[name](suite).rendered)
        print()
    stats = engine.stats
    print(
        f"(suite resolved in {elapsed:.0f}s: {stats.simulations} "
        f"simulated, {stats.memory_hits} memory hits, "
        f"{stats.store_hits} store hits, jobs={args.jobs})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
