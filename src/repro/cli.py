"""Command-line interface: regenerate any exhibit of the paper.

Examples::

    python -m repro figure3
    python -m repro table4 --benchmarks db javac --instructions 2000000
    python -m repro all --instructions 6000000
    python -m repro quick   # one-benchmark smoke run
    python -m repro run db --scheme hotspot --trace out.json --metrics

The ``run`` command executes a single benchmark/scheme cell with
telemetry: ``--trace PATH`` writes a Chrome-trace JSON loadable in
``chrome://tracing`` / Perfetto (one track per CU, one per hotspot, the
policy decision lane, and the engine worker lane) and works on every
backend — with ``--backend local:4`` or ``ssh:hostfile`` the workers
capture their tuning events and the engine clock-aligns them into one
merged trace with per-worker tracks (docs/INTERNALS.md §15).
``--metrics`` prints the event/metric summary tables, ``--progress``
streams a live per-cell heartbeat (done/total, in-flight, ETA) to
stderr, ``--record [DIR]`` writes a flight-recorder JSONL manifest of
the run, and ``--stats-json PATH`` (all available on every command)
dumps the engine's counters as machine-readable JSON.

Crash-safe resume (docs/INTERNALS.md §16): ``--resume MANIFEST``
replays a killed run's flight-recorder manifest (a ``.jsonl`` path, or
a directory whose newest manifest is taken), partitions the batch into
done / failed / never-started cells, and re-executes only the
remainder — finished cells come back from the result store under the
same fingerprints, with zero re-simulation.  The continuation writes
its own manifest (next to the original unless ``--record`` says
otherwise) linking back via ``resume_of``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from time import perf_counter
from typing import List, Optional

from repro.report import exhibits
from repro.sim.config import ExperimentConfig
from repro.sim.driver import SCHEMES, RunSpec
from repro.sim.experiment import run_suite
from repro.sim.options import ExecutionOptions
from repro.workloads.specjvm import BENCHMARK_NAMES

SUITE_EXHIBITS = {
    "figure1": exhibits.figure1,
    "energy": exhibits.energy_breakdown,
    "table1": exhibits.table1,
    "table4": exhibits.table4,
    "table5": exhibits.table5,
    "table6": exhibits.table6,
    "figure3": exhibits.figure3,
    "figure4": exhibits.figure4,
}

STATIC_EXHIBITS = {
    "table2": lambda: exhibits.table2(),
    "table3": lambda: exhibits.table3(),
}

ALL_EXHIBITS = [
    "figure1", "table1", "table2", "table3", "table4", "table5",
    "table6", "figure3", "figure4", "energy",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ace",
        description=(
            "Reproduction of 'Effective Adaptive Computing Environment "
            "Management via Dynamic Optimization' (CGO 2005): regenerate "
            "the paper's tables and figures on synthetic SPECjvm98 "
            "stand-ins."
        ),
    )
    parser.add_argument(
        "exhibit",
        choices=ALL_EXHIBITS + ["all", "quick", "run"],
        help="which exhibit to regenerate ('all' for every one, 'quick' "
        "for a fast single-benchmark smoke run, 'run' for a single "
        "traced benchmark/scheme cell)",
    )
    parser.add_argument(
        "bench",
        nargs="?",
        choices=list(BENCHMARK_NAMES),
        default=None,
        help="benchmark for the 'run' command",
    )
    parser.add_argument(
        "--scheme",
        choices=list(SCHEMES),
        default="hotspot",
        help="adaptation scheme for the 'run' command (default: hotspot)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        choices=list(BENCHMARK_NAMES),
        default=None,
        help="subset of benchmarks (default: all seven)",
    )
    parser.add_argument(
        "--instructions",
        type=int,
        default=None,
        help="instruction budget per run (default: calibrated 6,000,000)",
    )
    parser.add_argument(
        "--hot-threshold",
        type=int,
        default=None,
        help="hotspot detection threshold (invocations)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="simulation seed"
    )
    parser.add_argument(
        "--kernel",
        choices=["fast", "reference", "turbo"],
        default=None,
        help="simulation kernel: 'fast' (batched/inlined hot loop, the "
        "default) or 'reference' (the readable interpreter) are "
        "bit-identical (tests/test_kernel_equivalence.py); 'turbo' is the "
        "opt-in vectorized tier — statistically equivalent under the "
        "tolerance gate (tests/stat_equivalence.py), never the default, "
        "and excluded from golden traces",
    )
    ExecutionOptions.add_arguments(parser)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome-trace JSON (chrome://tracing / Perfetto) of "
        "the tuning-event timeline ('run' command; forces a live, "
        "uncached simulation).  Works on every --backend: pool workers "
        "capture their events and the engine merges them into one "
        "clock-aligned trace with per-worker tracks",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry event/metric summary after the run",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a live per-cell progress heartbeat (done/total, "
        "cells in flight, ETA) to stderr",
    )
    parser.add_argument(
        "--record",
        nargs="?",
        const="auto",
        default=None,
        metavar="DIR",
        help="write a flight-recorder JSONL manifest of the run (backend "
        "config, per-cell outcomes, degradation notes); DIR may be a "
        "directory or a .jsonl path, default results/runs/",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help="resume a killed run from its flight-recorder manifest (a "
        ".jsonl path, or a directory whose newest manifest is used): "
        "finished cells are served from the result store under the same "
        "fingerprints, only the remainder re-executes, and the "
        "continuation manifest links back via resume_of",
    )
    parser.add_argument(
        "--stats-json",
        default=None,
        metavar="PATH",
        help="dump the engine's stats counters (simulations, memory/store "
        "hits, retries, timeouts) as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--inject",
        default=None,
        metavar="PLAN",
        help="fault-injection plan, e.g. "
        "'seed=42,worker_crash=0.2,cell_timeout=0.1' (see repro.faults."
        "FaultPlan; plans that perturb simulation results disable "
        "caching for the affected cells)",
    )
    parser.add_argument(
        "--on-error",
        choices=["raise", "skip", "partial"],
        default="raise",
        dest="on_error",
        help="batch failure policy: 'raise' aborts on the first cell "
        "that exhausts its retries (default); 'skip'/'partial' keep "
        "serving surviving cells ('partial' still fails when no cell "
        "succeeded)",
    )
    return parser


def make_config(args) -> ExperimentConfig:
    config = ExperimentConfig()
    if args.instructions is not None:
        config.max_instructions = args.instructions
    if args.hot_threshold is not None:
        config.hot_threshold = args.hot_threshold
    if args.seed is not None:
        config.seed = args.seed
    if args.kernel is not None:
        config.sim_kernel = args.kernel
    return config


def configure_store(options: ExecutionOptions) -> None:
    """Apply ``--no-store`` / ``--store-dir`` to the experiment layer."""
    from repro.sim.experiment import set_default_store

    if options.no_store or options.store_dir is not None:
        set_default_store(options.make_store())


def make_fault_plan(args):
    """Parse ``--inject`` into a FaultPlan (or None); exits on bad specs."""
    if args.inject is None:
        return None
    from repro.faults import FaultPlan

    try:
        return FaultPlan.from_spec(args.inject)
    except ValueError as error:
        print(f"error: bad --inject plan: {error}", file=sys.stderr)
        raise SystemExit(2)


def make_progress_printer(args):
    """The ``--progress`` stderr heartbeat (or None when not asked)."""
    if not args.progress:
        return None

    def _print(progress) -> None:
        eta = (
            f", eta {progress.eta_s:.0f}s"
            if progress.eta_s is not None
            else ""
        )
        print(
            f"[{progress.done}/{progress.total}] "
            f"{progress.spec.benchmark_name}/{progress.spec.scheme} "
            f"({progress.source}, {progress.in_flight} in flight{eta})",
            file=sys.stderr,
        )

    return _print


def resolve_resume(args) -> Optional[str]:
    """Resolve ``--resume`` into a manifest path (or None).

    A directory argument picks its newest ``*.jsonl`` manifest, so
    ``--resume results/runs`` continues whatever run died last.
    """
    if getattr(args, "resume", None) is None:
        return None
    from pathlib import Path

    target = Path(args.resume)
    if target.is_dir():
        manifests = list(target.glob("*.jsonl"))
        if not manifests:
            raise SystemExit(
                f"error: --resume {target}: no *.jsonl manifest found"
            )
        target = max(manifests, key=lambda p: p.stat().st_mtime)
    elif not target.exists():
        raise SystemExit(f"error: --resume {target}: no such manifest")
    print(f"(resuming from {target})", file=sys.stderr)
    return str(target)


def make_recorder(args, resume_from: Optional[str] = None):
    """Resolve ``--record`` into a FlightRecorder (or None).

    A resumed run always records — the continuation manifest is the
    crash-safety artifact — landing next to the original manifest
    unless ``--record`` points elsewhere.
    """
    if args.record is None and resume_from is None:
        return None
    from pathlib import Path

    from repro.obs import FlightRecorder

    if args.record is None:
        target = str(Path(resume_from).parent)
    else:
        target = "results/runs" if args.record == "auto" else args.record
    if target.endswith(".jsonl"):
        recorder = FlightRecorder(target)
    else:
        recorder = FlightRecorder.in_dir(target)
    print(f"(flight recorder: {recorder.path})", file=sys.stderr)
    return recorder


def dump_stats_json(args, engine, elapsed: float) -> None:
    """Satisfy ``--stats-json``: engine counters, machine-readable."""
    if args.stats_json is None:
        return
    payload = dataclasses.asdict(engine.stats)
    payload["elapsed_seconds"] = round(elapsed, 3)
    payload["jobs"] = engine.jobs
    payload["backend"] = engine.pool.name
    text = json.dumps(payload, indent=2, sort_keys=True)
    if args.stats_json == "-":
        print(text)
    else:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"(engine stats written to {args.stats_json})")


def run_command(args) -> int:
    """The ``run`` exhibit: one traced benchmark/scheme cell."""
    from repro.obs import Telemetry, write_chrome_trace
    from repro.sim.engine import (
        BatchExecutionError,
        CellExecutionError,
        Engine,
    )
    from repro.sim.experiment import get_default_store

    if args.bench is None:
        print(
            "error: 'run' needs a benchmark, e.g. "
            "`python -m repro run db --scheme hotspot`",
            file=sys.stderr,
        )
        return 2
    tracing = args.trace is not None or args.metrics
    telemetry = Telemetry() if tracing else None
    options = ExecutionOptions.from_args(args)
    configure_store(options)
    # A traced run must observe live tuning decisions, so both cache
    # layers are bypassed; the configured backend is used either way —
    # pool workers capture their telemetry and the engine clock-aligns
    # it into this session (docs/INTERNALS.md §15).
    resume_from = resolve_resume(args)
    engine = Engine(
        pool=options.resolved_backend(),
        store=None if tracing else get_default_store(),
        use_cache=not tracing,
        telemetry=telemetry,
        failure_policy=args.on_error,
        fault_plan=make_fault_plan(args),
        chunk_size=options.chunk_size,
        max_pool_rebuilds=options.max_pool_rebuilds,
        straggler_factor=options.straggler_factor,
        schedule=options.schedule,
        cost_model_dir=options.cost_model_dir,
        progress=make_progress_printer(args),
        recorder=make_recorder(args, resume_from),
        resume=resume_from,
    )
    config = make_config(args)
    start = perf_counter()
    try:
        result = engine.run_one(RunSpec(args.bench, args.scheme, config))
    except (CellExecutionError, BatchExecutionError) as error:
        elapsed = perf_counter() - start
        print(f"error: {error}", file=sys.stderr)
        dump_stats_json(args, engine, elapsed)
        return 1
    elapsed = perf_counter() - start
    if result is None:
        print(
            f"error: cell {args.bench}/{args.scheme} failed "
            f"(failure policy {args.on_error!r}); see engine stats",
            file=sys.stderr,
        )
        dump_stats_json(args, engine, elapsed)
        return 1
    print(
        f"{result.benchmark}/{result.scheme}: "
        f"{result.instructions:,} insns, {result.cycles:,.0f} cycles, "
        f"IPC {result.ipc:.3f}"
    )
    print(
        f"L1D {result.l1d_energy_nj / 1e3:.1f} uJ "
        f"(miss rate {result.l1d_miss_rate:.2%}), "
        f"L2 {result.l2_energy_nj / 1e3:.1f} uJ "
        f"(miss rate {result.l2_miss_rate:.2%})"
    )
    print(
        f"hotspots: {result.n_hotspots} detected, "
        f"coverage {result.hotspot_coverage:.1%} "
        f"({elapsed:.1f}s)"
    )
    if telemetry is not None:
        if args.trace is not None:
            path = write_chrome_trace(telemetry, args.trace)
            log = telemetry.log
            dropped = (
                f", {log.dropped} dropped" if log.dropped else ""
            )
            print(
                f"trace written to {path} "
                f"({len(log)} events{dropped}; load in chrome://tracing "
                f"or https://ui.perfetto.dev)"
            )
        if args.metrics:
            print()
            print(exhibits.timeline(telemetry).rendered)
    dump_stats_json(args, engine, elapsed)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.exhibit == "run":
        return run_command(args)
    if args.exhibit in STATIC_EXHIBITS:
        print(STATIC_EXHIBITS[args.exhibit]().rendered)
        return 0

    options = ExecutionOptions.from_args(args)
    configure_store(options)
    from repro.sim.experiment import make_engine

    resume_from = resolve_resume(args)
    engine = make_engine(
        failure_policy=args.on_error,
        fault_plan=make_fault_plan(args),
        options=options,
        progress=make_progress_printer(args),
        recorder=make_recorder(args, resume_from),
        resume=resume_from,
    )
    config = make_config(args)
    if args.exhibit == "quick":
        from repro.sim.engine import (
            BatchExecutionError,
            CellExecutionError,
        )
        from repro.sim.experiment import compare_schemes

        config.max_instructions = min(config.max_instructions, 1_500_000)
        start = perf_counter()
        try:
            comparison = compare_schemes(
                (args.benchmarks or ["db"])[0], config, engine=engine
            )
        except (CellExecutionError, BatchExecutionError) as error:
            elapsed = perf_counter() - start
            print(f"error: {error}", file=sys.stderr)
            dump_stats_json(args, engine, elapsed)
            return 1
        for cache in ("L1D", "L2"):
            print(
                f"{cache} energy reduction: "
                f"BBV {comparison.energy_reduction('bbv', cache):.1%}, "
                f"hotspot "
                f"{comparison.energy_reduction('hotspot', cache):.1%}"
            )
        print(
            f"slowdown: BBV {comparison.slowdown('bbv'):.2%}, "
            f"hotspot {comparison.slowdown('hotspot'):.2%}"
        )
        elapsed = perf_counter() - start
        print(f"({elapsed:.1f}s)")
        dump_stats_json(args, engine, elapsed)
        return 0

    from repro.sim.engine import BatchExecutionError, CellExecutionError

    start = perf_counter()
    try:
        suite = run_suite(args.benchmarks, config, engine=engine)
    except (CellExecutionError, BatchExecutionError) as error:
        elapsed = perf_counter() - start
        print(f"error: {error}", file=sys.stderr)
        dump_stats_json(args, engine, elapsed)
        return 1
    elapsed = perf_counter() - start
    wanted = (
        ALL_EXHIBITS if args.exhibit == "all" else [args.exhibit]
    )
    for name in wanted:
        if name in STATIC_EXHIBITS:
            print(STATIC_EXHIBITS[name]().rendered)
        else:
            print(SUITE_EXHIBITS[name](suite).rendered)
        print()
    stats = engine.stats
    degraded = (
        f", {stats.failures} FAILED" if stats.failures else ""
    )
    print(
        f"(suite resolved in {elapsed:.0f}s: {stats.simulations} "
        f"simulated, {stats.memory_hits} memory hits, "
        f"{stats.store_hits} store hits, "
        f"backend={engine.pool.name}:{engine.jobs}{degraded})"
    )
    dump_stats_json(args, engine, elapsed)
    return 0


if __name__ == "__main__":
    sys.exit(main())
