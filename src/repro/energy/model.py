"""Runtime energy accounting.

One :class:`CacheEnergyModel` per configurable cache tracks dynamic,
leakage, and reconfiguration energy, always pricing at the cache's *current*
setting.  The :class:`EnergyModel` aggregates the per-component accounts and
is what the adaptation policies snapshot to judge a configuration's energy
efficiency (paper §3.2.2) and what the evaluation reports (Figure 3).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.energy.params import (
    CacheEnergySpec,
    EnergyPoint,
    MEMORY_ACCESS_NJ,
    scaled_energy_table,
)


class CacheEnergyModel:
    """Energy account of one size-configurable cache."""

    __slots__ = (
        "name",
        "spec",
        "_table",
        "_read_nj",
        "_write_nj",
        "_leak_nj",
        "current_size",
        "dynamic_nj",
        "leakage_nj",
        "reconfig_nj",
    )

    def __init__(
        self, name: str, spec: CacheEnergySpec, sizes: Sequence[int],
        initial_size: int,
    ):
        self.name = name
        self.spec = spec
        self._table: Dict[int, EnergyPoint] = scaled_energy_table(spec, sizes)
        if initial_size not in self._table:
            raise ValueError(
                f"{name}: initial size {initial_size} not in table"
            )
        self.dynamic_nj = 0.0
        self.leakage_nj = 0.0
        self.reconfig_nj = 0.0
        self.current_size = initial_size
        self._bind(initial_size)

    def _bind(self, size: int) -> None:
        point = self._table[size]
        self._read_nj = point.read_nj
        self._write_nj = point.write_nj
        self._leak_nj = point.leak_nj_per_cycle

    def set_size(self, size: int) -> None:
        """Re-price after a reconfiguration."""
        if size not in self._table:
            raise ValueError(f"{self.name}: size {size} not in table")
        self.current_size = size
        self._bind(size)

    # -- hot path ---------------------------------------------------------

    def add_accesses(self, reads: int, writes: int) -> None:
        self.dynamic_nj += reads * self._read_nj + writes * self._write_nj

    def add_cycles(self, cycles: float) -> None:
        self.leakage_nj += cycles * self._leak_nj

    def add_reconfig_writebacks(self, dirty_lines: int) -> None:
        self.reconfig_nj += dirty_lines * self.spec.writeback_line_nj

    # -- reporting ----------------------------------------------------------

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.leakage_nj + self.reconfig_nj

    def breakdown(self) -> Dict[str, float]:
        return {
            "dynamic": self.dynamic_nj,
            "leakage": self.leakage_nj,
            "reconfig": self.reconfig_nj,
            "total": self.total_nj,
        }

    def __repr__(self) -> str:
        return (
            f"CacheEnergyModel({self.name!r}, size={self.current_size}, "
            f"total={self.total_nj:.1f}nJ)"
        )


class PipelineEnergyModel:
    """Per-cycle energy of a resizable pipeline structure (IQ/ROB extension).

    Energy per cycle scales linearly with the structure's entry count —
    CAM/RAM leakage and clocking dominate these structures.
    """

    __slots__ = ("name", "full_entries", "nj_per_cycle_full", "_nj", "energy_nj",
                 "current_entries")

    def __init__(
        self, name: str, full_entries: int, nj_per_cycle_full: float
    ):
        self.name = name
        self.full_entries = full_entries
        self.nj_per_cycle_full = nj_per_cycle_full
        self.current_entries = full_entries
        self._nj = nj_per_cycle_full
        self.energy_nj = 0.0

    def set_entries(self, entries: int) -> None:
        self.current_entries = entries
        self._nj = self.nj_per_cycle_full * entries / self.full_entries

    def add_cycles(self, cycles: float) -> None:
        self.energy_nj += cycles * self._nj


class EnergyModel:
    """Aggregate energy state of the simulated machine."""

    def __init__(
        self,
        l1d: CacheEnergyModel,
        l2: CacheEnergyModel,
        memory_access_nj: float = MEMORY_ACCESS_NJ,
        pipeline: Optional[Dict[str, PipelineEnergyModel]] = None,
    ):
        self.l1d = l1d
        self.l2 = l2
        self.memory_access_nj = memory_access_nj
        self.memory_nj = 0.0
        self.pipeline: Dict[str, PipelineEnergyModel] = dict(pipeline or {})

    def add_memory_accesses(self, count: int) -> None:
        self.memory_nj += count * self.memory_access_nj

    def add_cycles(self, cycles: float) -> None:
        """Leakage everywhere: caches always burn, whatever their size."""
        self.l1d.add_cycles(cycles)
        self.l2.add_cycles(cycles)
        for component in self.pipeline.values():
            component.add_cycles(cycles)

    def cache_model(self, name: str) -> CacheEnergyModel:
        if name == self.l1d.name:
            return self.l1d
        if name == self.l2.name:
            return self.l2
        raise KeyError(f"no cache energy model named {name!r}")

    def totals(self) -> Dict[str, float]:
        out = {
            self.l1d.name: self.l1d.total_nj,
            self.l2.name: self.l2.total_nj,
            "memory": self.memory_nj,
        }
        for name, component in self.pipeline.items():
            out[name] = component.energy_nj
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={value:.1f}nJ" for name, value in self.totals().items()
        )
        return f"EnergyModel({parts})"
