"""Energy parameters and CACTI-style size scaling.

All energies are in nanojoules.  At the paper's 1 GHz / 2 V operating point
one cycle is 1 ns, so a leakage *power* of ``x`` watts is exactly ``x`` nJ
per cycle — leakage constants below are therefore directly interpretable as
watts.

Scaling laws (conventional CACTI behaviour over one decade of capacity):

* dynamic energy per access ∝ ``size ** dynamic_exponent`` (default 0.5 —
  bitline/wordline capacitance grows roughly with the square root of
  capacity at fixed associativity);
* leakage ∝ ``size`` (transistor count).

Absolute values are calibrated so the baseline 64 KB L1D is roughly
half-dynamic/half-leakage and the 1 MB L2 is leakage-dominated, matching the
qualitative regime of Wattch-era 0.18 µm models.  Only *relative* energies
matter for the paper's reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.scaling import STRUCTURE_SCALE


@dataclass(frozen=True)
class EnergyPoint:
    """Energy constants for one cache size."""

    read_nj: float
    write_nj: float
    leak_nj_per_cycle: float

    def __post_init__(self) -> None:
        for field_name in ("read_nj", "write_nj", "leak_nj_per_cycle"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")


@dataclass(frozen=True)
class CacheEnergySpec:
    """Reference point + scaling law for one cache."""

    ref_size: int
    ref: EnergyPoint
    dynamic_exponent: float = 0.5
    #: Energy to move one dirty line to the next level on writeback/flush.
    writeback_line_nj: float = 2.0

    def point(self, size: int) -> EnergyPoint:
        ratio = size / self.ref_size
        dyn = ratio ** self.dynamic_exponent
        return EnergyPoint(
            read_nj=self.ref.read_nj * dyn,
            write_nj=self.ref.write_nj * dyn,
            leak_nj_per_cycle=self.ref.leak_nj_per_cycle * ratio,
        )


def scaled_energy_table(
    spec: CacheEnergySpec, sizes: Sequence[int]
) -> Dict[int, EnergyPoint]:
    """Materialise the per-size energy table for a configurable cache."""
    return {size: spec.point(size) for size in sizes}


#: L1 data cache reference, anchored at the *maximum configurable size*
#: (the structure-scaled analogue of the paper's 64 KB — see
#: repro.sim.config.STRUCTURE_SCALE).  Only size *ratios* enter the
#: reported energy reductions, so the anchor value is a free choice.
DEFAULT_L1D_ENERGY = CacheEnergySpec(
    ref_size=64 * 1024 // STRUCTURE_SCALE,
    ref=EnergyPoint(read_nj=1.0, write_nj=1.2, leak_nj_per_cycle=0.45),
    dynamic_exponent=0.5,
    writeback_line_nj=2.0,
)

#: Unified L2 reference at its maximum configurable size (the scaled
#: analogue of the paper's 1 MB); leakage-dominated, as large SRAMs are.
DEFAULT_L2_ENERGY = CacheEnergySpec(
    ref_size=1024 * 1024 // STRUCTURE_SCALE,
    ref=EnergyPoint(read_nj=3.5, write_nj=4.0, leak_nj_per_cycle=2.0),
    dynamic_exponent=0.5,
    writeback_line_nj=8.0,
)

#: Energy of one main-memory access; only used as the downstream term of
#: the L2 tuning metric (an L2 downsizing that thrashes memory must not
#: look "energy-efficient").
MEMORY_ACCESS_NJ = 15.0
