"""Energy modelling.

Stands in for the Wattch-based power model of Dynamic SimpleScalar
(paper §4.1), augmented — as the paper's was — with the energy spent
reconfiguring hardware (writing dirty cache lines down the hierarchy).
Per-access and leakage energies scale with cache capacity following
CACTI-style laws; see :mod:`repro.energy.params` for the scaling and the
default constants.
"""

from repro.energy.params import (
    DEFAULT_L1D_ENERGY,
    DEFAULT_L2_ENERGY,
    CacheEnergySpec,
    EnergyPoint,
    scaled_energy_table,
)
from repro.energy.model import (
    CacheEnergyModel,
    EnergyModel,
    PipelineEnergyModel,
)

__all__ = [
    "CacheEnergyModel",
    "CacheEnergySpec",
    "DEFAULT_L1D_ENERGY",
    "DEFAULT_L2_ENERGY",
    "EnergyModel",
    "EnergyPoint",
    "PipelineEnergyModel",
    "scaled_energy_table",
]
