"""Flight recorder: a persistent per-run JSONL manifest.

Where the event log answers "what did the tuner decide" and the metrics
registry "how often", the flight recorder answers the post-mortem
question: *what did this run actually do, and what went wrong* — after
the process is gone.  One :class:`FlightRecorder` writes one append-only
JSONL file per engine run, flushed record by record so a crashed or
killed run still leaves everything it knew on disk:

* ``begin_batch`` — backend spec, worker count, failure policy, retry
  budget, fault-plan spec, and every cell's ``(benchmark, scheme,
  config-fingerprint)`` identity;
* ``cell`` — one record per terminal cell outcome (status, attempts,
  source layer, error + remote traceback for failures);
* ``note`` — degradation breadcrumbs (worker crashes, pool rebuilds,
  degrade-to-serial transitions, unarmed timeouts);
* ``end_batch`` / ``batch_aborted`` — outcome tally, engine counters,
  telemetry truncation counts.

The engine attaches a recorder when asked (``Engine(recorder=...)``,
CLI ``--record``) or when ``$REPRO_FLIGHT_DIR`` names a directory —
the environment hook exists so CI chaos jobs can dump every run's
manifest without plumbing a flag through each entry point.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Union


class FlightRecorder:
    """Append-only JSONL writer for one run's manifest."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    @classmethod
    def in_dir(
        cls, directory: Union[str, Path], run_id: Optional[str] = None
    ) -> "FlightRecorder":
        """A recorder on a fresh, collision-free file in ``directory``."""
        if run_id is None:
            run_id = f"run-{time.time_ns()}-{os.getpid()}"
        return cls(Path(directory) / f"{run_id}.jsonl")

    @classmethod
    def from_env(cls) -> Optional["FlightRecorder"]:
        """A recorder under ``$REPRO_FLIGHT_DIR``, or None when unset."""
        directory = os.environ.get("REPRO_FLIGHT_DIR")
        return cls.in_dir(directory) if directory else None

    def _write(self, kind: str, **fields: object) -> None:
        record: Dict[str, object] = {"ts": time.time(), "kind": kind}
        record.update(fields)
        # Append + flush per record: a killed run keeps everything it
        # managed to learn.  default=repr degrades unserialisable
        # payloads (an exotic fault-plan field) to their repr instead of
        # losing the record.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=repr))
            handle.write("\n")

    # -- engine hooks -------------------------------------------------------

    def begin_batch(
        self,
        backend: str,
        workers: int,
        failure_policy: str,
        cell_timeout: Optional[float],
        max_retries: int,
        fault_plan: Optional[object],
        cells: List[Dict[str, object]],
    ) -> None:
        self._write(
            "begin_batch",
            backend=backend,
            workers=workers,
            failure_policy=failure_policy,
            cell_timeout=cell_timeout,
            max_retries=max_retries,
            fault_plan=None if fault_plan is None else repr(fault_plan),
            cells=cells,
        )

    def cell(
        self,
        benchmark: str,
        scheme: str,
        status: str,
        attempts: int,
        source: str,
        error: Optional[str] = None,
        traceback: Optional[str] = None,
    ) -> None:
        self._write(
            "cell",
            benchmark=benchmark,
            scheme=scheme,
            status=status,
            attempts=attempts,
            source=source,
            error=error,
            traceback=traceback,
        )

    def note(self, what: str, **fields: object) -> None:
        """A degradation breadcrumb (worker crash, degrade-to-serial...)."""
        self._write("note", what=what, **fields)

    def end_batch(self, batch, stats, events_dropped: int = 0) -> None:
        self._write(
            "end_batch",
            outcomes=batch.counts(),
            cells=len(batch),
            degraded=batch.degraded,
            stats=dataclasses.asdict(stats),
            events_dropped=events_dropped,
        )

    def batch_aborted(self, error: BaseException) -> None:
        self._write("batch_aborted", error=repr(error)[:500])

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, object]]:
        """Parse a manifest back into its records (inspection helper)."""
        records = []
        for line in Path(path).read_text(encoding="utf-8").splitlines():
            if line.strip():
                records.append(json.loads(line))
        return records

    def __repr__(self) -> str:
        return f"FlightRecorder({str(self.path)!r})"
