"""Flight recorder: a persistent per-run JSONL manifest.

Where the event log answers "what did the tuner decide" and the metrics
registry "how often", the flight recorder answers the post-mortem
question: *what did this run actually do, and what went wrong* — after
the process is gone.  One :class:`FlightRecorder` writes one append-only
JSONL file per engine run, flushed record by record so a crashed or
killed run still leaves everything it knew on disk:

* ``begin_batch`` — backend spec, worker count, failure policy, retry
  budget, fault-plan spec, and every cell's ``(benchmark, scheme,
  config-fingerprint)`` identity;
* ``cell`` — one record per terminal cell outcome (status, attempts,
  source layer, error + remote traceback for failures);
* ``note`` — degradation breadcrumbs (worker crashes, pool rebuilds,
  degrade-to-serial transitions, unarmed timeouts);
* ``end_batch`` / ``batch_aborted`` — outcome tally, engine counters,
  telemetry truncation counts.

The engine attaches a recorder when asked (``Engine(recorder=...)``,
CLI ``--record``) or when ``$REPRO_FLIGHT_DIR`` names a directory —
the environment hook exists so CI chaos jobs can dump every run's
manifest without plumbing a flag through each entry point.

Manifests are also the substrate of crash-safe resume
(docs/INTERNALS.md §16): ``repro run --resume MANIFEST`` replays the
records via :meth:`FlightRecorder.replay` to learn which cells already
reached a terminal state, then re-runs the campaign under the same
fingerprints so finished work is answered by the result store instead
of re-simulated.  Three properties make the replay trustworthy: every
record carries a ``schema`` version, batch begin/end records are
fsynced (a manifest that *starts* is durably marked as such), and a
torn trailing line — the expected wound of a SIGKILL mid-write — is
skipped with a warning rather than poisoning the whole file.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

#: Manifest record schema.  v1 (implicit, PR 7) had no schema field and
#: no fingerprints on cell records; v2 adds both plus resume linkage.
SCHEMA_VERSION = 2

#: A cell's replay identity: ``(benchmark, scheme, fingerprint)`` — the
#: same triple that keys the result store, so "done in the manifest"
#: and "answerable by the store" agree.
CellIdentity = Tuple[str, str, str]


@dataclasses.dataclass
class ManifestReplay:
    """What a prior run's manifest says about each cell.

    ``done``/``failed`` hold identities whose last ``cell`` record was
    terminal-ok / terminal-not-ok; ``declared`` holds every identity
    the ``begin_batch`` record announced (so never-started cells are
    ``declared - done - failed``).  ``completed`` is True when the
    manifest reached ``end_batch`` — resuming a batch that finished is
    legal but usually a sign the wrong manifest was named.
    """

    path: Path
    declared: Set[CellIdentity]
    done: Set[CellIdentity]
    failed: Set[CellIdentity]
    completed: bool
    aborted: bool

    def classify(self, identity: CellIdentity) -> str:
        if identity in self.done:
            return "done"
        if identity in self.failed:
            return "failed"
        return "new"


class FlightRecorder:
    """Append-only JSONL writer for one run's manifest."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    @classmethod
    def in_dir(
        cls, directory: Union[str, Path], run_id: Optional[str] = None
    ) -> "FlightRecorder":
        """A recorder on a fresh, collision-free file in ``directory``."""
        if run_id is None:
            run_id = f"run-{time.time_ns()}-{os.getpid()}"
        return cls(Path(directory) / f"{run_id}.jsonl")

    @classmethod
    def from_env(cls) -> Optional["FlightRecorder"]:
        """A recorder under ``$REPRO_FLIGHT_DIR``, or None when unset."""
        directory = os.environ.get("REPRO_FLIGHT_DIR")
        return cls.in_dir(directory) if directory else None

    def _write(self, kind: str, _sync: bool = False, **fields: object) -> None:
        record: Dict[str, object] = {
            "ts": time.time(),
            "kind": kind,
            "schema": SCHEMA_VERSION,
        }
        record.update(fields)
        # Append + flush per record: a killed run keeps everything it
        # managed to learn.  default=repr degrades unserialisable
        # payloads (an exotic fault-plan field) to their repr instead of
        # losing the record.  Batch lifecycle records additionally
        # fsync: resume must be able to trust that a manifest which
        # names its cells really started (and one with ``end_batch``
        # really finished) even across power loss.
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True, default=repr))
            handle.write("\n")
            if _sync:
                handle.flush()
                os.fsync(handle.fileno())

    # -- engine hooks -------------------------------------------------------

    def begin_batch(
        self,
        backend: str,
        workers: int,
        failure_policy: str,
        cell_timeout: Optional[float],
        max_retries: int,
        fault_plan: Optional[object],
        cells: List[Dict[str, object]],
        resume_of: Optional[str] = None,
        resume_counts: Optional[Dict[str, int]] = None,
    ) -> None:
        self._write(
            "begin_batch",
            _sync=True,
            backend=backend,
            workers=workers,
            failure_policy=failure_policy,
            cell_timeout=cell_timeout,
            max_retries=max_retries,
            fault_plan=None if fault_plan is None else repr(fault_plan),
            cells=cells,
            resume_of=resume_of,
            resume_counts=resume_counts,
        )

    def cell(
        self,
        benchmark: str,
        scheme: str,
        status: str,
        attempts: int,
        source: str,
        error: Optional[str] = None,
        traceback: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self._write(
            "cell",
            benchmark=benchmark,
            scheme=scheme,
            status=status,
            attempts=attempts,
            source=source,
            error=error,
            traceback=traceback,
            fingerprint=fingerprint,
        )

    def note(self, what: str, **fields: object) -> None:
        """A degradation breadcrumb (worker crash, degrade-to-serial...)."""
        self._write("note", what=what, **fields)

    def end_batch(self, batch, stats, events_dropped: int = 0) -> None:
        self._write(
            "end_batch",
            _sync=True,
            outcomes=batch.counts(),
            cells=len(batch),
            degraded=batch.degraded,
            stats=dataclasses.asdict(stats),
            events_dropped=events_dropped,
        )

    def batch_aborted(self, error: BaseException) -> None:
        self._write("batch_aborted", _sync=True, error=repr(error)[:500])

    @staticmethod
    def read(path: Union[str, Path]) -> List[Dict[str, object]]:
        """Parse a manifest back into its records (inspection helper).

        Tolerant of torn lines: a record whose write was cut off by a
        SIGKILL (or a disk-full truncation) is skipped with a warning
        rather than raised — everything decodable is still returned,
        which is exactly what ``--resume`` needs from a crashed run.
        """
        records = []
        for number, line in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                warnings.warn(
                    f"{path}:{number}: skipping undecodable manifest "
                    f"line ({len(line)} bytes; torn write?)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return records

    @staticmethod
    def replay(path: Union[str, Path]) -> ManifestReplay:
        """Replay a manifest into per-cell terminal states for resume.

        Identities come from ``begin_batch`` (declared) and ``cell``
        records (terminal outcomes); only records that carry a
        fingerprint participate — a v1 manifest without fingerprints
        yields an empty partition and the resume degenerates to a
        plain re-run (correct, just without the bookkeeping).  When a
        cell appears more than once (a batch resumed twice), the last
        record wins.
        """
        path = Path(path)
        declared: Set[CellIdentity] = set()
        last_status: Dict[CellIdentity, str] = {}
        completed = False
        aborted = False
        for record in FlightRecorder.read(path):
            kind = record.get("kind")
            if kind == "begin_batch":
                for cell in record.get("cells") or []:
                    fingerprint = cell.get("fingerprint")
                    if fingerprint:
                        declared.add(
                            (
                                str(cell.get("benchmark")),
                                str(cell.get("scheme")),
                                str(fingerprint),
                            )
                        )
            elif kind == "cell":
                fingerprint = record.get("fingerprint")
                if fingerprint:
                    identity = (
                        str(record.get("benchmark")),
                        str(record.get("scheme")),
                        str(fingerprint),
                    )
                    last_status[identity] = str(record.get("status"))
            elif kind == "end_batch":
                completed = True
            elif kind == "batch_aborted":
                aborted = True
        done = {i for i, s in last_status.items() if s == "ok"}
        failed = {i for i in last_status if i not in done}
        return ManifestReplay(
            path=path,
            declared=declared | done | failed,
            done=done,
            failed=failed,
            completed=completed,
            aborted=aborted,
        )

    def __repr__(self) -> str:
        return f"FlightRecorder({str(self.path)!r})"
