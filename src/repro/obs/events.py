"""Run-scoped event log: the structured timeline of tuning decisions.

The paper's mechanism is a *sequence* of runtime decisions — hotspot
detection, per-CU tuning walks, configuration pinning, drift-triggered
re-tuning — and evaluating it (tuning latency, configurations explored,
time spent mis-configured) needs those decisions as first-class,
timestamped records rather than end-of-run aggregates.

Two clocks coexist:

* **simulated time** — the machine's retired-instruction counter.  Every
  event emitted from inside a simulation (VM, policies, machine model)
  is stamped with it, so the timeline is deterministic and comparable
  across runs;
* **wall time** — ``time.perf_counter`` relative to telemetry creation,
  used by the engine for cell scheduling events (where simulated time of
  different cells is meaningless to interleave).

The two domains never share a track; the Chrome-trace exporter places
them in separate trace processes.

Overhead contract (docs/INTERNALS.md §10): telemetry is strictly opt-in.
The default sink is :data:`NULL_TELEMETRY`, whose ``enabled`` flag lets
hot code skip argument construction entirely, and only
*decision-granularity* events exist — nothing is ever emitted per block.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, NullMetricsRegistry

# -- event vocabulary -------------------------------------------------------
#
# Simulation-clock events (ts = retired instructions):
HOTSPOT_DETECTED = "hotspot_detected"
HOTSPOT_UNMANAGED = "hotspot_unmanaged"
HOTSPOT_INVOKE = "hotspot_invoke"
TUNING_STARTED = "tuning_started"
CONFIG_TRIED = "config_tried"
CONFIG_PINNED = "config_pinned"
CONFIG_DEMOTED = "config_demoted"
SAMPLING_RETUNE = "sampling_retune"
CACHE_RESIZE = "cache_resize"
RECONFIG_APPLIED = "reconfig_applied"
RECONFIG_DENIED = "reconfig_denied"
PHASE_TRANSITION = "phase_transition"
# Wall-clock events (ts = microseconds since telemetry creation):
CELL_START = "cell_start"
CELL_DONE = "cell_done"
STORE_HIT = "store_hit"
MEMORY_HIT = "memory_hit"
RETRY = "retry"
TIMEOUT = "timeout"
# Wall-clock failure/degradation events (graceful-degradation paths):
WORKER_CRASH = "worker_crash"
CELL_FAILED = "cell_failed"
BATCH_DEGRADED = "batch_degraded"
TIMEOUT_DISABLED = "timeout_disabled"
# Wall-clock pool-lifecycle events (persistent worker pools):
POOL_SPAWNED = "pool_spawned"
POOL_REUSED = "pool_reused"
WORKER_WARMUP = "worker_warmup"
# Wall-clock distributed-telemetry events (docs/INTERNALS.md §15):
# ``cell_exec`` spans mark where a cell actually executed (one track per
# worker process, clock-rebased into the parent timeline); ``progress``
# is the engine's per-cell heartbeat (done/total, in-flight, ETA).
CELL_EXEC = "cell_exec"
PROGRESS = "progress"
# Wall-clock resilience events (docs/INTERNALS.md §16): per-host circuit
# breakers, speculative straggler re-execution, manifest-replay resume.
HOST_DOWN = "host_down"
HOST_RECOVERED = "host_recovered"
CIRCUIT_OPEN = "circuit_open"
STRAGGLER_DETECTED = "straggler_detected"
SPECULATION_WON = "speculation_won"
BATCH_RESUMED = "batch_resumed"
# Wall-clock scheduling event (docs/INTERNALS.md §18): one per pool
# round, carrying the planner's mode, chunk layout, and predicted vs
# measured makespan so cost-model quality is observable.
SCHEDULE_PLANNED = "schedule_planned"

#: The complete vocabulary, in rough lifecycle order (used by summaries).
EVENT_TYPES: Tuple[str, ...] = (
    HOTSPOT_DETECTED,
    HOTSPOT_UNMANAGED,
    HOTSPOT_INVOKE,
    TUNING_STARTED,
    CONFIG_TRIED,
    CONFIG_PINNED,
    CONFIG_DEMOTED,
    SAMPLING_RETUNE,
    CACHE_RESIZE,
    RECONFIG_APPLIED,
    RECONFIG_DENIED,
    PHASE_TRANSITION,
    CELL_START,
    CELL_DONE,
    STORE_HIT,
    MEMORY_HIT,
    RETRY,
    TIMEOUT,
    WORKER_CRASH,
    CELL_FAILED,
    BATCH_DEGRADED,
    TIMEOUT_DISABLED,
    POOL_SPAWNED,
    POOL_REUSED,
    WORKER_WARMUP,
    CELL_EXEC,
    PROGRESS,
    HOST_DOWN,
    HOST_RECOVERED,
    CIRCUIT_OPEN,
    STRAGGLER_DETECTED,
    SPECULATION_WON,
    BATCH_RESUMED,
    SCHEDULE_PLANNED,
)

#: Events stamped with wall time; everything else uses simulated time.
WALL_CLOCK_EVENTS = frozenset(
    (
        CELL_START,
        CELL_DONE,
        STORE_HIT,
        MEMORY_HIT,
        RETRY,
        TIMEOUT,
        WORKER_CRASH,
        CELL_FAILED,
        BATCH_DEGRADED,
        TIMEOUT_DISABLED,
        POOL_SPAWNED,
        POOL_REUSED,
        WORKER_WARMUP,
        CELL_EXEC,
        PROGRESS,
        HOST_DOWN,
        HOST_RECOVERED,
        CIRCUIT_OPEN,
        STRAGGLER_DETECTED,
        SPECULATION_WON,
        BATCH_RESUMED,
        SCHEDULE_PLANNED,
    )
)


class Event:
    """One timeline record.

    ``ts`` is simulated instructions for simulation events and wall-clock
    microseconds for engine events (see module docstring); ``dur`` (same
    unit as ``ts``) is non-zero for span events such as
    :data:`HOTSPOT_INVOKE` and :data:`CELL_DONE`.  ``track`` names the
    timeline lane (``"CU:L1D"``, ``"policy"``, ``"worker:0"``, ...).
    """

    __slots__ = ("name", "ts", "track", "dur", "args")

    def __init__(
        self,
        name: str,
        ts: float,
        track: str,
        dur: float = 0.0,
        args: Optional[Dict[str, object]] = None,
    ):
        self.name = name
        self.ts = ts
        self.track = track
        self.dur = dur
        self.args = args or {}

    @property
    def wall_clock(self) -> bool:
        return self.name in WALL_CLOCK_EVENTS

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "ts": self.ts,
            "track": self.track,
        }
        if self.dur:
            payload["dur"] = self.dur
        if self.args:
            payload["args"] = self.args
        return payload

    def __repr__(self) -> str:
        return (
            f"Event({self.name!r}, ts={self.ts:.0f}, track={self.track!r}"
            + (f", dur={self.dur:.0f}" if self.dur else "")
            + ")"
        )


class EventLog:
    """Append-only, bounded event buffer for one run.

    The bound keeps a long traced run from exhausting memory: once
    ``max_events`` is reached, further appends are counted in ``dropped``
    instead of stored (decision events are few; the bound exists for the
    per-invocation :data:`HOTSPOT_INVOKE` spans of very hot methods).
    """

    def __init__(self, max_events: int = 100_000):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = max_events
        self.events: List[Event] = []
        self.dropped = 0

    def append(self, event: Event) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def by_name(self, name: str) -> List[Event]:
        return [e for e in self.events if e.name == name]

    def counts(self) -> Dict[str, int]:
        """Event count per type, vocabulary order first, extras after."""
        raw: Dict[str, int] = {}
        for event in self.events:
            raw[event.name] = raw.get(event.name, 0) + 1
        ordered = {n: raw.pop(n) for n in EVENT_TYPES if n in raw}
        ordered.update(sorted(raw.items()))
        return ordered

    def tracks(self) -> List[str]:
        """Distinct track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.track, None)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"EventLog({len(self.events)} events, dropped={self.dropped})"
        )


class Telemetry:
    """Live telemetry session: an event log plus a metrics registry.

    One ``Telemetry`` spans one run (or one engine batch); pass it to
    :func:`repro.sim.driver.execute` /
    :class:`repro.sim.engine.Engine` and export afterwards via
    :mod:`repro.obs.export`.
    """

    enabled = True

    def __init__(self, max_events: int = 100_000):
        self.log = EventLog(max_events)
        self.metrics = MetricsRegistry()
        self._t0 = time.perf_counter()
        #: Epoch anchor of this session's wall-clock microsecond axis.
        #: Worker snapshots stamp chunk starts in ``time.time()`` terms;
        #: :meth:`wall_to_us` maps those onto this session's timeline
        #: (docs/INTERNALS.md §15 has the full rebase math).
        self._t0_wall = time.time()

    def emit(
        self,
        name: str,
        ts: float,
        track: str = "policy",
        dur: float = 0.0,
        **args: object,
    ) -> None:
        """Record one simulated-time event."""
        self.log.append(Event(name, ts, track, dur, args))

    def now_us(self) -> float:
        """Wall-clock microseconds since this session started."""
        return (time.perf_counter() - self._t0) * 1e6

    def wall_to_us(self, wall: float) -> float:
        """Map an epoch timestamp (``time.time()``) onto this session's
        microsecond axis.  Used to rebase worker-side chunk snapshots;
        callers clamp the estimate into the feasible submission window
        because the two clocks drift independently."""
        return (wall - self._t0_wall) * 1e6

    def emit_wall(
        self,
        name: str,
        track: str = "engine",
        ts: Optional[float] = None,
        dur: float = 0.0,
        **args: object,
    ) -> None:
        """Record one wall-clock event (``ts`` defaults to *now*)."""
        self.log.append(
            Event(name, self.now_us() if ts is None else ts, track, dur, args)
        )

    def __repr__(self) -> str:
        return (
            f"Telemetry({len(self.log)} events, "
            f"{len(self.metrics)} metrics)"
        )


class _NullEventLog(EventLog):
    """Log that stores nothing (shared by the null telemetry sink)."""

    def __init__(self) -> None:
        super().__init__(max_events=1)

    def append(self, event: Event) -> None:  # noqa: ARG002 — sink
        pass


class NullTelemetry:
    """The disabled path: records nothing, allocates nothing per call.

    Instrumented code either checks ``telemetry.enabled`` before building
    event arguments (hot-ish paths) or calls ``emit``/``metrics``
    unconditionally (cold paths) — both are safe and free here.
    """

    enabled = False

    def __init__(self) -> None:
        self.log = _NullEventLog()
        self.metrics = NullMetricsRegistry()

    def emit(
        self,
        name: str,
        ts: float,
        track: str = "policy",
        dur: float = 0.0,
        **args: object,
    ) -> None:
        pass

    def now_us(self) -> float:
        return 0.0

    def wall_to_us(self, wall: float) -> float:
        return 0.0

    def emit_wall(
        self,
        name: str,
        track: str = "engine",
        ts: Optional[float] = None,
        dur: float = 0.0,
        **args: object,
    ) -> None:
        pass

    def __repr__(self) -> str:
        return "NullTelemetry()"


#: Shared default sink.  Everything instrumented defaults to this, so an
#: un-traced run takes only the ``enabled`` check on decision paths.
NULL_TELEMETRY = NullTelemetry()
