"""Telemetry subsystem: tuning-event timeline, metrics, exporters.

``repro.obs`` makes the framework's runtime decisions observable:

* :class:`~repro.obs.events.Telemetry` — one session object carrying a
  typed, timestamped :class:`~repro.obs.events.EventLog` plus a
  :class:`~repro.obs.registry.MetricsRegistry`;
* emit points across the VM (hotspot detection, hotspot invoke/return),
  both adaptation policies (tuning walk, pin, re-tune, phase
  transitions), the machine model (reconfigurations applied/denied), and
  the experiment engine (cell timing, cache-layer hits);
* exporters in :mod:`repro.obs.export` — JSONL, Chrome-trace JSON
  (``chrome://tracing`` / Perfetto), and markdown summaries for
  :mod:`repro.report`.

Telemetry is opt-in: every instrumented component defaults to the
module-level :data:`~repro.obs.events.NULL_TELEMETRY` no-op sink, and
only decision-granularity events exist (never per-block), so the
instrumented-but-disabled simulator stays within noise of an
uninstrumented one.  See docs/INTERNALS.md §10 for the architecture and
overhead contract.
"""

from repro.obs.events import (
    BATCH_DEGRADED,
    BATCH_RESUMED,
    CACHE_RESIZE,
    CIRCUIT_OPEN,
    CELL_DONE,
    CELL_EXEC,
    CELL_FAILED,
    CELL_START,
    CONFIG_DEMOTED,
    CONFIG_PINNED,
    CONFIG_TRIED,
    EVENT_TYPES,
    Event,
    EventLog,
    HOST_DOWN,
    HOST_RECOVERED,
    HOTSPOT_DETECTED,
    HOTSPOT_INVOKE,
    HOTSPOT_UNMANAGED,
    MEMORY_HIT,
    NULL_TELEMETRY,
    NullTelemetry,
    PHASE_TRANSITION,
    PROGRESS,
    RECONFIG_APPLIED,
    RECONFIG_DENIED,
    RETRY,
    SAMPLING_RETUNE,
    SPECULATION_WON,
    STORE_HIT,
    STRAGGLER_DETECTED,
    TIMEOUT,
    TIMEOUT_DISABLED,
    TUNING_STARTED,
    Telemetry,
    WALL_CLOCK_EVENTS,
    WORKER_CRASH,
)
from repro.obs.export import (
    chrome_trace,
    summary_markdown,
    timeline_markdown,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import FlightRecorder, ManifestReplay
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.remote import (
    DEFAULT_CELL_EVENT_CAP,
    ChunkCapture,
    merge_chunk_info,
    merge_metrics,
    rebase_start_us,
    snapshot_metrics,
)

__all__ = [
    "BATCH_DEGRADED",
    "BATCH_RESUMED",
    "CACHE_RESIZE",
    "CIRCUIT_OPEN",
    "CELL_DONE",
    "CELL_EXEC",
    "CELL_FAILED",
    "CELL_START",
    "CONFIG_DEMOTED",
    "CONFIG_PINNED",
    "CONFIG_TRIED",
    "ChunkCapture",
    "Counter",
    "DEFAULT_CELL_EVENT_CAP",
    "EVENT_TYPES",
    "Event",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "HOST_DOWN",
    "HOST_RECOVERED",
    "HOTSPOT_DETECTED",
    "HOTSPOT_INVOKE",
    "HOTSPOT_UNMANAGED",
    "Histogram",
    "MEMORY_HIT",
    "ManifestReplay",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullMetricsRegistry",
    "NullTelemetry",
    "PHASE_TRANSITION",
    "PROGRESS",
    "RECONFIG_APPLIED",
    "RECONFIG_DENIED",
    "RETRY",
    "SAMPLING_RETUNE",
    "SPECULATION_WON",
    "STORE_HIT",
    "STRAGGLER_DETECTED",
    "TIMEOUT",
    "TIMEOUT_DISABLED",
    "TUNING_STARTED",
    "Telemetry",
    "WALL_CLOCK_EVENTS",
    "WORKER_CRASH",
    "chrome_trace",
    "merge_chunk_info",
    "merge_metrics",
    "rebase_start_us",
    "snapshot_metrics",
    "summary_markdown",
    "timeline_markdown",
    "write_chrome_trace",
    "write_jsonl",
]
