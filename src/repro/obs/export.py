"""Exporters for a telemetry session: JSONL, Chrome trace, markdown.

Three views of the same :class:`~repro.obs.events.EventLog`:

* :func:`write_jsonl` — one JSON object per event, for ad-hoc grepping
  and downstream tooling;
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format JSON that ``chrome://tracing`` and Perfetto load.  Simulated
  time and wall time are separate trace *processes*; every CU, the
  policy, each hotspot, and each engine worker gets its own *thread*
  (track).  Simulated timestamps use retired instructions as the
  microsecond field — Perfetto's "µs" then simply reads "instructions".
  Tracks merged back from pool workers (docs/INTERNALS.md §15) add two
  shapes: simulated-clock tracks named ``{origin}|{cell}|{track}`` get
  one extra trace process per worker origin (each cell's instruction
  clock restarts at 0, so they must not share the local simulation
  process), and wall-clock ``host:{origin}`` tracks (``cell_exec``
  spans, rebased worker events) join the engine process;
* :func:`timeline_markdown` / :func:`summary_markdown` — the report-layer
  form (`repro.report.exhibits.timeline`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.events import (
    EventLog,
    HOTSPOT_INVOKE,
    Telemetry,
)

#: Trace-process ids: simulated-clock tracks vs. wall-clock tracks.
#: Remote worker origins take one pid each, from REMOTE_PID_BASE up.
SIM_PID = 1
ENGINE_PID = 2
REMOTE_PID_BASE = 3


def _log_of(source: Union[Telemetry, EventLog]) -> EventLog:
    return source.log if isinstance(source, Telemetry) else source


def write_jsonl(
    source: Union[Telemetry, EventLog], path: Union[str, Path]
) -> int:
    """Write one JSON object per event; returns the number written."""
    log = _log_of(source)
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for event in log:
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return len(log)


def _track_order(track: str) -> tuple:
    """Stable display order: CUs, then policy/vm lanes, then the rest."""
    if track.startswith("CU:"):
        return (0, track)
    if track in ("policy", "vm"):
        return (1, track)
    if track.startswith("hotspot:"):
        return (2, track)
    if track.startswith("worker:"):
        return (3, track)
    if track.startswith("host:"):
        return (4, track)
    if "|" in track:
        return (5, track)
    return (6, track)


def _remote_origin(track: str) -> Optional[str]:
    """The worker origin of a merged remote simulation track, or None.

    Remote tracks are ``{host#pid}|{cell}|{orig track}`` — built by
    :func:`repro.obs.remote.merge_chunk_info`, which reserves ``|`` for
    exactly this (no local track name contains one).
    """
    return track.split("|", 1)[0] if "|" in track else None


def chrome_trace(source: Union[Telemetry, EventLog]) -> Dict[str, object]:
    """Build a ``chrome://tracing`` / Perfetto-loadable trace dict.

    Decision events become instants (``ph: "i"``); events carrying a
    duration (hotspot invocations, engine cells) become complete spans
    (``ph: "X"``).
    """
    log = _log_of(source)
    tids: Dict[tuple, int] = {}
    tracks = sorted(log.tracks(), key=_track_order)
    # One extra trace process per remote worker origin: the simulated
    # clock restarts per cell, so merged worker timelines must not share
    # the local simulation process's time axis.
    origin_pids: Dict[str, int] = {}
    for track in tracks:
        origin = _remote_origin(track)
        if origin is not None and origin not in origin_pids:
            origin_pids[origin] = REMOTE_PID_BASE + len(origin_pids)

    def _pid_of(track: str, wall_clock: bool) -> int:
        origin = _remote_origin(track)
        if origin is not None and not wall_clock:
            return origin_pids[origin]
        return ENGINE_PID if wall_clock else SIM_PID

    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M", "pid": SIM_PID, "tid": 0,
            "name": "process_name",
            "args": {"name": "simulation (ts = instructions)"},
        },
        {
            "ph": "M", "pid": ENGINE_PID, "tid": 0,
            "name": "process_name",
            "args": {"name": "engine (ts = wall-clock us)"},
        },
    ]
    for origin, pid in origin_pids.items():
        trace_events.append(
            {
                "ph": "M", "pid": pid, "tid": 0,
                "name": "process_name",
                "args": {"name": f"worker {origin} (ts = instructions)"},
            }
        )
    for track in tracks:
        pid = _pid_of(
            track,
            track.startswith(("worker:", "host:")) or track == "engine",
        )
        tid = len(tids) + 1
        tids[(pid, track)] = tid
        trace_events.append(
            {
                "ph": "M", "pid": pid, "tid": tid,
                "name": "thread_name", "args": {"name": track},
            }
        )
    body: List[Dict[str, object]] = []
    for event in log:
        pid = _pid_of(event.track, event.wall_clock)
        record: Dict[str, object] = {
            "name": event.name,
            "cat": "engine" if event.wall_clock else "tuning",
            "pid": pid,
            "tid": tids.get((pid, event.track), 0),
            "ts": event.ts,
        }
        if event.dur:
            record["ph"] = "X"
            record["dur"] = event.dur
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if event.args:
            record["args"] = dict(event.args)
        body.append(record)
    body.sort(key=lambda r: (r["pid"], r["ts"]))
    trace_events.extend(body)
    payload: Dict[str, object] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "dropped_events": log.dropped,
        },
    }
    if isinstance(source, Telemetry):
        payload["otherData"]["metrics"] = source.metrics.to_dict()
    return payload


def write_chrome_trace(
    source: Union[Telemetry, EventLog], path: Union[str, Path]
) -> Path:
    """Serialise :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(source), handle, separators=(",", ":"))
    return path


def _compact_args(args: Dict[str, object], limit: int = 58) -> str:
    parts = []
    for key, value in args.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.3g}")
        else:
            parts.append(f"{key}={value}")
    text = " ".join(parts)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def timeline_markdown(
    source: Union[Telemetry, EventLog],
    max_rows: int = 40,
    include_spans: bool = False,
) -> str:
    """Markdown table of the decision timeline, in timestamp order.

    Per-invocation :data:`HOTSPOT_INVOKE` spans are elided by default —
    they dominate counts without adding decision information.
    """
    log = _log_of(source)
    rows = [
        event
        for event in log
        if include_spans or event.name != HOTSPOT_INVOKE
    ]
    rows.sort(key=lambda e: (e.wall_clock, e.ts))
    elided = max(0, len(rows) - max_rows)
    rows = rows[:max_rows]
    lines = [
        "| ts | track | event | detail |",
        "|---:|-------|-------|--------|",
    ]
    for event in rows:
        unit = "us" if event.wall_clock else ""
        lines.append(
            f"| {event.ts:.0f}{unit} | {event.track} | {event.name} "
            f"| {_compact_args(event.args)} |"
        )
    if elided:
        lines.append(f"| … | | | ({elided} more rows elided) |")
    return "\n".join(lines)


def summary_markdown(source: Union[Telemetry, EventLog]) -> str:
    """Event-count table plus (for a live session) the metrics table."""
    log = _log_of(source)
    counts = log.counts()
    lines = ["| event | count |", "|-------|------:|"]
    for name, count in counts.items():
        lines.append(f"| {name} | {count} |")
    if not counts:
        lines.append("| (no events recorded) | 0 |")
    if log.dropped:
        lines.append(f"| (dropped past buffer cap) | {log.dropped} |")
    text = "\n".join(lines)
    if isinstance(source, Telemetry) and len(source.metrics):
        text += "\n\n" + source.metrics.render_markdown()
    return text
