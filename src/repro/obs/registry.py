"""Metrics registry: named counters, gauges, and histograms.

The registry is the aggregate side of :mod:`repro.obs` — where the event
log answers *when* a tuning decision happened, the registry answers *how
often* and *how much*.  Instruments are created on first use
(``registry.counter("policy.config_tried").inc()``) so emit sites never
need set-up code, and every instrument renders into the plain-dict /
markdown forms the report layer consumes.

A :class:`NullMetricsRegistry` provides the disabled path: it hands out
shared no-op instruments, so instrumented code is branch-free —
``telemetry.metrics.counter(name).inc()`` works identically whether
telemetry is live or off.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """Last-written value (e.g. a current CU setting)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


#: Default histogram buckets, tuned for per-decision latencies expressed
#: in instructions (tuning-walk lengths, detect-to-pin distances).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)


class Histogram:
    """Bucketed distribution with streaming count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total",
                 "min", "max")

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ):
        bounds = tuple(buckets if buckets is not None else DEFAULT_BUCKETS)
        if list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r}: bucket bounds must be sorted"
            )
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +inf overflow
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": {
                (f"le_{bound:g}" if i < len(self.bounds) else "inf"): n
                for i, (bound, n) in enumerate(
                    zip(self.bounds + (float("inf"),), self.bucket_counts)
                )
            },
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"mean={self.mean:.1f})"
        )


class MetricsRegistry:
    """Name-addressed collection of instruments (created on first use)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, factory, expected_kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif instrument.kind != expected_kind:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {expected_kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda: Gauge(name), "gauge")

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(
            name, lambda: Histogram(name, buckets), "histogram"
        )

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-JSON form, sorted by metric name."""
        return {
            name: self._instruments[name].to_dict()
            for name in self.names()
        }

    def render_markdown(self) -> str:
        """Two-column markdown table of every instrument's headline value."""
        rows = []
        for name in self.names():
            instrument = self._instruments[name]
            if instrument.kind == "histogram":
                value = (
                    f"n={instrument.count} mean={instrument.mean:.1f} "
                    f"max={instrument.max if instrument.max is not None else '-'}"
                )
            else:
                value = str(instrument.value)
            rows.append((name, instrument.kind, value))
        name_w = max([len("metric")] + [len(r[0]) for r in rows])
        kind_w = max([len("kind")] + [len(r[1]) for r in rows])
        lines = [
            f"| {'metric'.ljust(name_w)} | {'kind'.ljust(kind_w)} | value |",
            f"|{'-' * (name_w + 2)}|{'-' * (kind_w + 2)}|-------|",
        ]
        for name, kind, value in rows:
            lines.append(
                f"| {name.ljust(name_w)} | {kind.ljust(kind_w)} | {value} |"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} instruments)"


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind."""

    __slots__ = ()

    kind = "null"
    name = "null"
    value = 0
    count = 0
    total = 0.0
    mean = 0.0
    min = None
    max = None

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Registry that records nothing (the disabled-telemetry path)."""

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def to_dict(self) -> Dict[str, Dict[str, object]]:
        return {}

    def render_markdown(self) -> str:
        return "(telemetry disabled)"

    def __repr__(self) -> str:
        return "NullMetricsRegistry()"
