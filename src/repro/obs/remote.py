"""Telemetry across the pool boundary: capture, snapshot, clock rebase.

Pool workers run in other processes — often other hosts — so the tuning
timeline a worker produces cannot simply share the parent's
:class:`~repro.obs.events.Telemetry` object.  This module implements the
distributed-telemetry contract of docs/INTERNALS.md §15:

* **worker side** — :class:`ChunkCapture` gives every cell of a chunk
  its own bounded :class:`~repro.obs.events.Telemetry`, then snapshots
  the events (compact tuples, not ``Event`` objects) and the metrics
  registry into one plain-data ``chunk_info`` dict that rides the
  existing chunk reply exactly like ``_WORKER_WARMUP`` stats do;
* **clock alignment** — the worker stamps the chunk start in *both*
  clock domains (``time.time()`` epoch seconds and ``perf_counter``
  elapsed).  The parent estimates where the chunk started on its own
  microsecond axis via :func:`rebase_start_us`: the epoch estimate,
  clamped into the feasible window ``[submitted_at, receipt - elapsed]``
  (the chunk cannot have started before it was submitted, nor so late
  that its measured duration overruns the receipt time);
* **parent side** — :func:`merge_chunk_info` rebases every snapshot
  into the parent session: per-cell simulation events land on their own
  ``{origin}|c{index}:{bench}/{scheme}|{track}`` tracks (simulated
  clock, one trace process per worker in the exporter), wall-clock
  events and one ``cell_exec`` span per cell land on the worker's
  ``host:{origin}`` track, and worker metrics are folded into the
  parent registry by :func:`merge_metrics`.  A per-track high-water
  mark keeps every rebased track monotone even when clamping or clock
  drift would otherwise step a timestamp backwards.

Everything here is opt-in: the engine only puts a capture spec on the
chunk payload when its telemetry session is live, so the
``NULL_TELEMETRY`` default never pays for any of it.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Dict, List, Optional, Tuple

from repro.obs.events import (
    CELL_EXEC,
    Event,
    EventLog,
    Telemetry,
)

#: Version stamp on every chunk snapshot; bump on wire-shape changes so
#: a mixed-version parent/worker fleet degrades to "no telemetry"
#: instead of mis-parsing.
SNAPSHOT_VERSION = 1

#: Default per-cell event budget for worker-side capture.  Deliberately
#: far below the parent log's bound: a chunk reply is one pickle, and an
#: over-chatty cell must truncate (counted) rather than balloon it.
DEFAULT_CELL_EVENT_CAP = 2048


def worker_origin() -> str:
    """``host#pid`` identity of this worker process (track prefix)."""
    return f"{socket.gethostname()}#{os.getpid()}"


def events_to_wire(log: EventLog) -> Tuple[tuple, ...]:
    """Compact ``(name, ts, track, dur, args-or-None)`` tuples."""
    return tuple(
        (e.name, e.ts, e.track, e.dur, e.args or None) for e in log
    )


def snapshot_metrics(registry) -> Dict[str, tuple]:
    """Plain-data form of a registry, mergeable via :func:`merge_metrics`.

    Counters/gauges snapshot to ``(kind, value)``; histograms keep their
    bucket layout so the parent can add distributions elementwise.
    """
    snap: Dict[str, tuple] = {}
    for name in registry.names():
        instrument = registry._instruments[name]
        kind = instrument.kind
        if kind == "histogram":
            snap[name] = (
                kind,
                {
                    "bounds": list(instrument.bounds),
                    "bucket_counts": list(instrument.bucket_counts),
                    "count": instrument.count,
                    "total": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                },
            )
        else:
            snap[name] = (kind, instrument.value)
    return snap


def merge_metrics(registry, snapshot: Dict[str, tuple]) -> None:
    """Fold a worker metrics snapshot into a live parent registry.

    Counters add, gauges keep the last written value, histograms merge
    bucket-by-bucket when the layouts match (streaming count/sum/min/max
    always merge).  A name already registered under a different kind is
    skipped — one confused worker must not poison the parent session.
    """
    for name in sorted(snapshot):
        kind, value = snapshot[name]
        try:
            if kind == "counter":
                registry.counter(name).inc(int(value or 0))
            elif kind == "gauge":
                if value is not None:
                    registry.gauge(name).set(value)
            elif kind == "histogram":
                hist = registry.histogram(name, value["bounds"])
                if list(hist.bounds) == list(value["bounds"]):
                    for i, n in enumerate(value["bucket_counts"]):
                        hist.bucket_counts[i] += n
                hist.count += value["count"]
                hist.total += value["total"]
                for attr in ("min", "max"):
                    theirs = value[attr]
                    if theirs is None:
                        continue
                    ours = getattr(hist, attr)
                    pick = min if attr == "min" else max
                    setattr(
                        hist,
                        attr,
                        theirs if ours is None else pick(ours, theirs),
                    )
        except TypeError:
            continue  # kind clash with an existing parent instrument


class ChunkCapture:
    """Worker-side telemetry for one chunk of cells.

    Created by :func:`repro.sim.pools.worker.run_chunk` when the payload
    carries a capture spec.  Each cell gets a fresh bounded
    :class:`Telemetry` (simulated clocks of different cells must never
    interleave on one track); :meth:`finish` packs everything into the
    plain-data ``chunk_info`` dict that rides the chunk reply.
    """

    def __init__(self, spec: Optional[Dict[str, object]] = None):
        spec = spec or {}
        self.max_events = max(
            1, int(spec.get("max_events", DEFAULT_CELL_EVENT_CAP))
        )
        self.wall_start = time.time()
        self._perf_start = time.perf_counter()
        self.cells: List[Dict[str, object]] = []
        self._cell: Optional[Telemetry] = None
        self._cell_started_us = 0.0

    def _elapsed_us(self) -> float:
        return (time.perf_counter() - self._perf_start) * 1e6

    def begin_cell(self) -> Telemetry:
        self._cell = Telemetry(max_events=self.max_events)
        self._cell_started_us = self._elapsed_us()
        return self._cell

    def end_cell(self, index: int, spec, status: str) -> None:
        telemetry, self._cell = self._cell, None
        if telemetry is None:
            return
        self.cells.append(
            {
                "index": index,
                "benchmark": spec.benchmark_name,
                "scheme": spec.scheme,
                "status": status,
                "start_us": self._cell_started_us,
                "dur_us": self._elapsed_us() - self._cell_started_us,
                "events": events_to_wire(telemetry.log),
                "dropped": telemetry.log.dropped,
                "metrics": snapshot_metrics(telemetry.metrics),
            }
        )

    def finish(self, unarmed_timeouts: int = 0) -> Dict[str, object]:
        return {
            "v": SNAPSHOT_VERSION,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "wall_start": self.wall_start,
            "wall_end": time.time(),
            "elapsed_us": self._elapsed_us(),
            "unarmed_timeouts": unarmed_timeouts,
            "cells": self.cells,
        }


def rebase_start_us(
    telemetry,
    chunk_info: Dict[str, object],
    submitted_at_us: float,
    receipt_us: float,
) -> float:
    """Estimate where a chunk started on the parent's microsecond axis.

    The worker's epoch stamp gives the estimate; clamping bounds it into
    the only feasible window — at or after submission, and early enough
    that the chunk's measured ``perf_counter`` duration fits before the
    reply was received.
    """
    elapsed_us = float(chunk_info.get("elapsed_us") or 0.0)
    estimate = telemetry.wall_to_us(
        float(chunk_info.get("wall_start") or 0.0)
    )
    upper = max(submitted_at_us, receipt_us - elapsed_us)
    return min(max(estimate, submitted_at_us), upper)


def _monotone(hwm: Dict[str, float], track: str, ts: float) -> float:
    """Clamp ``ts`` to the track's high-water mark and advance it."""
    floor = hwm.get(track)
    if floor is not None and ts < floor:
        ts = floor
    hwm[track] = ts
    return ts


def merge_chunk_info(
    telemetry,
    chunk_info: Dict[str, object],
    submitted_at_us: float,
    receipt_us: float,
    hwm: Dict[str, float],
) -> Dict[str, int]:
    """Rebase one worker chunk snapshot into a live parent session.

    Returns ``{"events": appended, "dropped": worker_truncations}``.
    ``hwm`` is the caller's per-track high-water-mark dict; it must
    outlive the batch so tracks stay monotone across chunks and pool
    rebuilds.
    """
    if chunk_info.get("v") != SNAPSHOT_VERSION:
        return {"events": 0, "dropped": 0}
    origin = f"{chunk_info.get('host', '?')}#{chunk_info.get('pid', 0)}"
    host_track = f"host:{origin}"
    chunk_start_us = rebase_start_us(
        telemetry, chunk_info, submitted_at_us, receipt_us
    )
    appended = 0
    dropped = 0
    for cell in chunk_info.get("cells") or ():
        dropped += int(cell.get("dropped") or 0)
        cell_start_us = _monotone(
            hwm, host_track, chunk_start_us + float(cell["start_us"])
        )
        telemetry.emit_wall(
            CELL_EXEC,
            track=host_track,
            ts=cell_start_us,
            dur=float(cell["dur_us"]),
            benchmark=cell["benchmark"],
            scheme=cell["scheme"],
            status=cell["status"],
            origin=origin,
        )
        appended += 1
        sim_prefix = (
            f"{origin}|c{cell['index']}:"
            f"{cell['benchmark']}/{cell['scheme']}|"
        )
        for name, ts, track, dur, args in cell["events"]:
            event = Event(name, ts, track, dur, dict(args or {}))
            if event.wall_clock:
                # Worker wall events (e.g. timeout_disabled) join the
                # host track, rebased from cell-relative microseconds.
                event.ts = _monotone(
                    hwm, host_track, cell_start_us + event.ts
                )
                event.track = host_track
                event.args.setdefault("origin", origin)
            else:
                # Simulated clock restarts at 0 for every cell, so each
                # cell's tuning timeline gets its own track namespace.
                event.track = sim_prefix + track
            telemetry.log.append(event)
            appended += 1
        merge_metrics(telemetry.metrics, cell.get("metrics") or {})
    return {"events": appended, "dropped": dropped}
