"""Per-phase tuning entries for the BBV baseline.

The tuning algorithm is Dhodapkar & Smith's: when a phase is (re)entered
and stable, successive sampling intervals test successive entries of the
full combinatorial configuration list — *all* of them, there is no
early-exit (paper Table 1 charges temporal approaches with "all
configurations are tested").  A phase's BBV information and tuning results
are stored, so "a recurring phase can use its chosen configuration if
available, or resume its tuning from the last tested configuration"
(paper §4.1).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from repro.core.tuning import (
    TuningOutcome,
    choose_best_robust,
    median_ipc,
    verification_says_demote,
)

Config = Tuple[int, ...]


def combinatorial_config_list(setting_counts: Sequence[int]) -> List[Config]:
    """The full cartesian product, all-maximum configuration first."""
    return list(itertools.product(*(range(n) for n in setting_counts)))


class PhaseTuningEntry:
    """Tuning record of one BBV phase."""

    __slots__ = (
        "pid",
        "cu_names",
        "config_list",
        "next_index",
        "outcomes",
        "best",
        "reference_ipc",
        "unimpaired_ipc",
        "recent_ipc",
        "intervals_tuned_under_best",
        "demotions",
        "verify_pending",
        "verify_stage",
        "verify_samples",
        "verify_passes",
    )

    def __init__(
        self, pid: int, cu_names: Tuple[str, ...], setting_counts: Sequence[int]
    ):
        self.pid = pid
        self.cu_names = cu_names
        self.config_list = combinatorial_config_list(setting_counts)
        self.next_index = 0
        self.outcomes: List[TuningOutcome] = []
        self.best: Optional[TuningOutcome] = None
        self.reference_ipc: Optional[float] = None
        self.unimpaired_ipc: Optional[float] = None
        self.recent_ipc: Optional[float] = None
        self.intervals_tuned_under_best = 0
        self.demotions = 0
        self.verify_pending = False
        self.verify_stage: Optional[str] = None
        self.verify_samples = {}
        self.verify_passes = 0

    @property
    def tuned(self) -> bool:
        return self.best is not None

    @property
    def current_trial(self) -> Optional[Config]:
        """Next configuration to test, or None when tuning is complete."""
        if self.tuned or self.next_index >= len(self.config_list):
            return None
        return self.config_list[self.next_index]

    def record(
        self,
        outcome: TuningOutcome,
        performance_threshold: float,
        objective: str = "energy",
    ) -> bool:
        """Record one interval measurement; returns True on completion."""
        if self.tuned:
            raise RuntimeError(f"phase {self.pid}: already tuned")
        self.outcomes.append(outcome)
        if self.reference_ipc is None:
            self.reference_ipc = outcome.ipc
        self.next_index += 1
        if self.next_index >= len(self.config_list):
            self.best = choose_best_robust(
                self.outcomes, performance_threshold, objective
            )
            self.unimpaired_ipc = median_ipc(self.outcomes)
            if self.best is not None:
                self.begin_verification()
            return True
        return False

    # -- steady-state feedback (sampling side) ---------------------------

    def observe_best_interval(self, ipc: float, alpha: float = 0.3) -> None:
        """EWMA of interval IPC while running under the chosen best."""
        if self.recent_ipc is None:
            self.recent_ipc = ipc
        else:
            self.recent_ipc += alpha * (ipc - self.recent_ipc)

    # -- post-selection A/B verification ----------------------------------
    # Same rationale as HotspotTuningState: a single noisy interval can
    # mis-rank configurations, so the chosen one is double-checked against
    # the all-maximum configuration contemporaneously and stepped back a
    # notch whenever it loses by more than the threshold.

    def begin_verification(self) -> None:
        self.verify_pending = True
        self.verify_stage = "chosen"
        self.verify_samples = {"chosen": [], "max": []}

    def verification_target(self) -> Config:
        assert self.best is not None
        if self.verify_stage == "max":
            return tuple(0 for _ in self.best.config)
        return self.best.config

    def record_verification(
        self,
        ipc: float,
        samples_per_stage: int,
        performance_threshold: float,
    ) -> str:
        """Feed one measured verification interval; see
        :meth:`repro.core.tuning.HotspotTuningState.record_verification`."""
        if not self.verify_pending:
            return "verified"
        if all(i == 0 for i in self.best.config):
            self.verify_passes = 99
            self.verify_pending = False
            self.verify_stage = None
            return "verified"
        self.verify_samples[self.verify_stage].append(ipc)
        if len(self.verify_samples[self.verify_stage]) < samples_per_stage:
            return "continue"
        if self.verify_stage == "chosen":
            self.verify_stage = "max"
            return "continue"
        if verification_says_demote(
            self.verify_samples["chosen"],
            self.verify_samples["max"],
            performance_threshold,
        ):
            self.demote()
            self.verify_passes = 0
            self.begin_verification()
            return "demoted"
        self.verify_passes += 1
        self.verify_pending = False
        self.verify_stage = None
        return "verified"

    def demote(self) -> bool:
        """Step the memoised best one notch toward larger settings."""
        if self.best is None:
            return False
        config = list(self.best.config)
        position = max(range(len(config)), key=lambda i: config[i])
        if config[position] == 0:
            return False
        config[position] -= 1
        self.best = TuningOutcome(
            tuple(config),
            self.best.ipc,
            self.best.energy_per_insn,
            self.best.instructions,
        )
        self.demotions += 1
        self.recent_ipc = None
        return True

    def __repr__(self) -> str:
        return (
            f"PhaseTuningEntry(pid={self.pid}, "
            f"trials={len(self.outcomes)}/{len(self.config_list)}, "
            f"best={self.best and self.best.config})"
        )
