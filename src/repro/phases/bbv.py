"""Basic Block Vector accumulation (paper §4.1).

The hardware accumulator is an array of saturating counters indexed by
branch-PC bits; each executed basic block bumps its bucket by the block's
instruction count (Sherwood et al.'s footprint weighting).  The paper
specifies 32 uncompressed 24-bit buckets indexed by the low PC bits (its
"6 bits for 32 buckets" phrasing is inconsistent; we use
``(pc >> 2) % n_buckets`` — DESIGN.md §6).  Harvesting at an interval
boundary returns the vector and clears the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

BBVector = Tuple[int, ...]


@dataclass(frozen=True)
class BBVConfig:
    """BBV baseline parameters (paper §4.1).

    The paper's accumulator has "32 24-bit uncompressed buckets" indexed by
    the low PC bits (see DESIGN.md §6 on the 6-bit/32-bucket inconsistency);
    signatures are unlimited and uncompressed, and each phase memoises its
    tuning progress and chosen configuration.  No next-phase predictor.
    """

    n_buckets: int = 32
    counter_bits: int = 24
    #: Manhattan distance threshold on unit-normalised vectors below which
    #: two vectors are the same phase.
    similarity_threshold: float = 0.35
    #: Consecutive same-phase intervals required before a phase is
    #: considered stable (and eligible for tuning) — Figure 1's criterion.
    stable_min_intervals: int = 2


def manhattan_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Manhattan (L1) distance between two vectors of equal length."""
    if len(a) != len(b):
        raise ValueError(
            f"vector lengths differ: {len(a)} vs {len(b)}"
        )
    return sum(abs(x - y) for x, y in zip(a, b))


def normalize(vector: Sequence[int]) -> Tuple[float, ...]:
    """Scale a vector to unit L1 mass (empty vectors stay zero)."""
    total = sum(vector)
    if total <= 0:
        return tuple(0.0 for _ in vector)
    return tuple(x / total for x in vector)


class BBVAccumulator:
    """Bucketed BBV accumulator with saturating counters."""

    def __init__(self, n_buckets: int = 32, counter_bits: int = 24):
        if n_buckets <= 0:
            raise ValueError(f"n_buckets must be positive: {n_buckets}")
        if counter_bits <= 0:
            raise ValueError(f"counter_bits must be positive: {counter_bits}")
        self.n_buckets = n_buckets
        self.counter_max = (1 << counter_bits) - 1
        self._buckets: List[int] = [0] * n_buckets
        self.saturations = 0

    def observe(self, block_pc: int, n_insns: int) -> None:
        """Credit a block execution to its bucket (saturating)."""
        index = (block_pc >> 2) % self.n_buckets
        value = self._buckets[index] + n_insns
        if value > self.counter_max:
            value = self.counter_max
            self.saturations += 1
        self._buckets[index] = value

    def harvest(self) -> BBVector:
        """Return the interval's vector and clear the table."""
        vector = tuple(self._buckets)
        for i in range(self.n_buckets):
            self._buckets[i] = 0
        return vector

    def peek(self) -> BBVector:
        return tuple(self._buckets)

    def __repr__(self) -> str:
        return (
            f"BBVAccumulator(buckets={self.n_buckets}, "
            f"mass={sum(self._buckets)})"
        )
