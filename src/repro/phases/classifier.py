"""Phase classification over harvested BBVs.

Each interval's normalized vector is compared (Manhattan distance) against
the stored signature of every known phase; within threshold → that phase
(signature updated by EWMA), otherwise a new phase is allocated — the paper
grants its BBV implementation "unlimited uncompressed signatures".

Stability follows Figure 1's criterion: a phase *occurrence* (a maximal run
of consecutive same-phase intervals) is stable iff it spans two or more
intervals; single-interval occurrences are transitional.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.phases.bbv import BBVector, manhattan_distance, normalize


@dataclass
class PhaseOccurrenceStats:
    """Stable/transitional interval accounting (Figure 1)."""

    stable_intervals: int = 0
    transitional_intervals: int = 0
    occurrences: int = 0
    stable_occurrences: int = 0

    @property
    def total_intervals(self) -> int:
        return self.stable_intervals + self.transitional_intervals

    @property
    def stable_fraction(self) -> float:
        total = self.total_intervals
        return self.stable_intervals / total if total else 0.0

    def to_dict(self) -> Dict[str, int]:
        """Plain-JSON form (result-store schema v1)."""
        import dataclasses

        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, int]) -> "PhaseOccurrenceStats":
        return cls(**payload)


class _Phase:
    __slots__ = ("pid", "signature", "intervals", "ipc_sum", "ipc_sumsq",
                 "ipc_n")

    def __init__(self, pid: int, signature: Tuple[float, ...]):
        self.pid = pid
        self.signature = signature
        self.intervals = 0
        self.ipc_sum = 0.0
        self.ipc_sumsq = 0.0
        self.ipc_n = 0

    def note_ipc(self, ipc: float) -> None:
        self.ipc_n += 1
        self.ipc_sum += ipc
        self.ipc_sumsq += ipc * ipc

    @property
    def mean_ipc(self) -> float:
        return self.ipc_sum / self.ipc_n if self.ipc_n else 0.0

    @property
    def ipc_cov(self) -> Optional[float]:
        if self.ipc_n < 2 or self.ipc_sum <= 0:
            return None
        mean = self.ipc_sum / self.ipc_n
        variance = max(0.0, self.ipc_sumsq / self.ipc_n - mean * mean)
        return (variance ** 0.5) / mean if mean > 0 else None


class PhaseClassifier:
    """Signature table + consecutive-run stability tracking."""

    #: EWMA weight for signature refresh on re-classification.
    SIGNATURE_ALPHA = 0.25

    def __init__(
        self,
        similarity_threshold: float = 0.35,
        stable_min_intervals: int = 2,
    ):
        if similarity_threshold <= 0:
            raise ValueError("similarity_threshold must be positive")
        if stable_min_intervals < 1:
            raise ValueError("stable_min_intervals must be >= 1")
        self.similarity_threshold = similarity_threshold
        self.stable_min_intervals = stable_min_intervals
        self.phases: Dict[int, _Phase] = {}
        self.occurrence_stats = PhaseOccurrenceStats()
        self._next_pid = 0
        self._current_pid: Optional[int] = None
        self._run_length = 0
        self.classifications = 0
        self.phase_history: List[int] = []

    # -- matching hooks (overridden by alternative detectors) -------------

    def _prepare(self, vector):
        """Convert a harvested raw vector into the stored representation."""
        return normalize(vector)

    def _distance(self, prepared, signature) -> float:
        return manhattan_distance(prepared, signature)

    def _merge(self, signature, prepared):
        """Refresh a matched phase's stored signature."""
        alpha = self.SIGNATURE_ALPHA
        return tuple(
            (1 - alpha) * s + alpha * v
            for s, v in zip(signature, prepared)
        )

    # -- classification -----------------------------------------------------

    def classify(self, vector: BBVector) -> Tuple[int, bool, int]:
        """Classify one harvested interval vector.

        Returns ``(phase_id, is_new_phase, run_length)`` where
        ``run_length`` counts consecutive intervals (including this one)
        classified as ``phase_id``.
        """
        prepared = self._prepare(vector)
        best_pid = None
        best_distance = None
        for phase in self.phases.values():
            distance = self._distance(prepared, phase.signature)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_pid = phase.pid
        is_new = (
            best_pid is None or best_distance > self.similarity_threshold
        )
        if is_new:
            pid = self._next_pid
            self._next_pid += 1
            self.phases[pid] = _Phase(pid, prepared)
        else:
            pid = best_pid
            phase = self.phases[pid]
            phase.signature = self._merge(phase.signature, prepared)
        self.phases[pid].intervals += 1
        self.classifications += 1
        self.phase_history.append(pid)

        if pid == self._current_pid:
            self._run_length += 1
        else:
            self._close_run()
            self._current_pid = pid
            self._run_length = 1
        return pid, is_new, self._run_length

    def _close_run(self) -> None:
        if self._current_pid is None or self._run_length == 0:
            return
        stats = self.occurrence_stats
        stats.occurrences += 1
        if self._run_length >= self.stable_min_intervals:
            stats.stable_occurrences += 1
            stats.stable_intervals += self._run_length
        else:
            stats.transitional_intervals += self._run_length

    def flush(self) -> None:
        """Close the final run at end of execution."""
        self._close_run()
        self._current_pid = None
        self._run_length = 0

    # -- queries ----------------------------------------------------------------

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def note_interval_ipc(self, pid: int, ipc: float) -> None:
        self.phases[pid].note_ipc(ipc)

    def per_phase_ipc_cov(self) -> float:
        """Mean of per-phase interval-IPC CoVs (Table 5)."""
        covs = [
            p.ipc_cov for p in self.phases.values() if p.ipc_cov is not None
        ]
        return sum(covs) / len(covs) if covs else 0.0

    def inter_phase_ipc_cov(self) -> float:
        """CoV of per-phase mean IPCs (Table 5)."""
        means = [p.mean_ipc for p in self.phases.values() if p.ipc_n > 0]
        if len(means) < 2:
            return 0.0
        mean = sum(means) / len(means)
        if mean <= 0:
            return 0.0
        variance = sum((m - mean) ** 2 for m in means) / len(means)
        return (variance ** 0.5) / mean
