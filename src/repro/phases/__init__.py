"""Temporal phase detection baseline: Basic Block Vectors.

Implements the comparison scheme of paper §4.1/§5.2 — BBV phase tracking
(Sherwood et al., ISCA'03) driving the exhaustive multi-configuration
tuning algorithm of Dhodapkar & Smith (ISCA'02):

* fixed sampling intervals (the L2 reconfiguration interval — the slowest
  CU sets the pace, §2.3/§3.2.1);
* a bucketed basic-block-vector accumulator with 24-bit saturating
  counters, harvested and classified each interval by Manhattan distance;
* stable-phase filtering (two or more consecutive same-phase intervals);
* per-phase memoisation of tuning progress and the chosen configuration
  (recurring phases resume tuning or reuse their configuration), but *no*
  next-phase predictor — exactly the implementation the paper compares
  against.
"""

from repro.phases.bbv import BBVAccumulator, BBVector, manhattan_distance
from repro.phases.classifier import PhaseClassifier, PhaseOccurrenceStats
from repro.phases.tuner import PhaseTuningEntry
from repro.phases.policy import BBVACEPolicy, BBVPolicyStats
from repro.phases.positional import (
    LargeProcedureClassifier,
    PositionalACEPolicy,
)
from repro.phases.prediction import NextPhasePredictor
from repro.phases.working_set import (
    WorkingSetAccumulator,
    WorkingSetClassifier,
    make_working_set_policy,
    relative_signature_distance,
)

__all__ = [
    "BBVACEPolicy",
    "BBVAccumulator",
    "BBVPolicyStats",
    "BBVector",
    "LargeProcedureClassifier",
    "NextPhasePredictor",
    "PhaseClassifier",
    "PhaseOccurrenceStats",
    "PhaseTuningEntry",
    "PositionalACEPolicy",
    "WorkingSetAccumulator",
    "WorkingSetClassifier",
    "make_working_set_policy",
    "manhattan_distance",
    "relative_signature_distance",
]
