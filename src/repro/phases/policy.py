"""The BBV-based ACE management policy (the paper's comparison scheme).

Per sampling interval (= the L2 reconfiguration interval, §5.2): harvest
the BBV, classify the ended interval, measure it, and choose the next
interval's configuration:

* the phase is *stable* (second or later consecutive interval) and already
  tuned → apply its memoised best configuration;
* stable but untuned → apply the next untested entry of the full
  combinatorial configuration list (resuming where the phase last left
  off);
* otherwise (new/transitional phase) → fall back to the all-maximum
  configuration, Dhodapkar-Smith style.

A trial measurement is only credited if the interval that ran under it was
classified as the same phase the trial was started for — temporal schemes
cannot avoid occasionally measuring the wrong phase, and discarding the
polluted sample is the standard mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.tuning import TuningConfig, TuningOutcome
from repro.obs.events import (
    CONFIG_DEMOTED,
    CONFIG_PINNED,
    CONFIG_TRIED,
    NULL_TELEMETRY,
    PHASE_TRANSITION,
)
from repro.phases.bbv import BBVAccumulator, BBVConfig
from repro.phases.classifier import PhaseClassifier, PhaseOccurrenceStats
from repro.phases.tuner import Config, PhaseTuningEntry
from repro.trace.events import BlockEvent
from repro.trace.stream import IntervalSplitter
from repro.vm.vm import AdaptationHooks, VirtualMachine


@dataclass
class BBVPolicyStats:
    """Final statistics of one BBV-policy run (Tables 5–6, Figure 1)."""

    n_phases: int = 0
    tuned_phases: int = 0
    intervals_total: int = 0
    intervals_in_tuned_phases: int = 0
    per_phase_ipc_cov: float = 0.0
    inter_phase_ipc_cov: float = 0.0
    tunings: Dict[str, int] = field(default_factory=dict)
    reconfigs: Dict[str, int] = field(default_factory=dict)
    safety_reconfigs: Dict[str, int] = field(default_factory=dict)
    coverage: Dict[str, float] = field(default_factory=dict)
    occurrence_stats: PhaseOccurrenceStats = field(
        default_factory=PhaseOccurrenceStats
    )
    discarded_trials: int = 0
    #: Next-phase-predictor extension (None when running paper-faithful).
    predicted_applications: int = 0
    prediction_accuracy: Optional[float] = None

    @property
    def tuned_interval_fraction(self) -> float:
        if self.intervals_total == 0:
            return 0.0
        return self.intervals_in_tuned_phases / self.intervals_total

    @property
    def tuned_phase_fraction(self) -> float:
        return self.tuned_phases / self.n_phases if self.n_phases else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (result-store schema v1)."""
        import dataclasses

        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "BBVPolicyStats":
        payload = dict(payload)
        payload["occurrence_stats"] = PhaseOccurrenceStats.from_dict(
            payload["occurrence_stats"]
        )
        return cls(**payload)


class BBVACEPolicy(AdaptationHooks):
    """Temporal-approach adaptation policy."""

    name = "bbv"

    #: ``on_block`` only consumes ``n_insns``/``block_pc`` — the fast
    #: kernel may keep its fused path and pass empty address lists.
    on_block_reads_addresses = False

    def __init__(
        self,
        bbv: Optional[BBVConfig] = None,
        tuning: Optional[TuningConfig] = None,
        sampling_interval: Optional[int] = None,
        next_phase_predictor=None,
    ):
        self.bbv = bbv or BBVConfig()
        self.tuning = tuning or TuningConfig()
        #: Measurement-driven deoptimisation: phase tuning compares
        #: per-interval (IPC, energy) measurements whose values depend
        #: on the exact cache state carried in from all earlier
        #: execution, and a new phase can open a trial at any point of
        #: the run.  As with the hotspot policy, the only sound rule is
        #: to keep the turbo kernel on its exact scalar path for the
        #: whole run (bit-identical to the fast kernel), so discrete
        #: phase→configuration choices can never be flipped by
        #: batching's address-stream relaxation.
        self.bulk_pause_depth = 1
        #: Optional [20]/[24]-style next-phase predictor (the paper's BBV
        #: deliberately runs without one; see phases.prediction).
        self.next_phase_predictor = next_phase_predictor
        self.predicted_applications = 0
        self._sampling_interval_override = sampling_interval
        self.accumulator = BBVAccumulator(
            self.bbv.n_buckets, self.bbv.counter_bits
        )
        self.classifier = PhaseClassifier(
            self.bbv.similarity_threshold, self.bbv.stable_min_intervals
        )
        self.entries: Dict[int, PhaseTuningEntry] = {}
        self.trial_count: Dict[str, int] = {}
        self.reconfig_count: Dict[str, int] = {}
        self.safety_count: Dict[str, int] = {}
        self.covered_insns: Dict[str, int] = {}
        self.total_insns = 0
        self.discarded_trials = 0
        self.demotions = 0
        self._in_flight: Optional[Tuple[int, Config]] = None
        self._verify: Optional[Tuple[int, str]] = None
        self._warm_intervals: Dict[int, int] = {}
        self._mode = "max"
        self._best_pid: Optional[int] = None
        self._last_snapshot = None
        self._splitter: Optional[IntervalSplitter] = None
        self.cu_names: Tuple[str, ...] = ()
        self.vm: Optional[VirtualMachine] = None
        self.machine = None
        self.telemetry = NULL_TELEMETRY
        self._last_pid: Optional[int] = None
        #: Optional :class:`repro.faults.FaultPlan` — perturbs the
        #: (IPC, energy) samples trial intervals are credited with.
        self.fault_plan = None

    # -- VM lifecycle -------------------------------------------------------

    def attach(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.machine = vm.machine
        self.telemetry = vm.telemetry
        # Order CUs by descending reconfiguration interval: the cartesian
        # configuration walk varies the *last* CU fastest, so the cheapest
        # CU steps every trial while the expensive one steps only once per
        # full sweep of the cheaper ones.
        self.cu_names = tuple(
            sorted(
                vm.machine.cus,
                key=lambda n: vm.machine.cus[n].reconfiguration_interval,
                reverse=True,
            )
        )
        self._slow_cus = frozenset(
            n
            for n in self.cu_names
            if vm.machine.cus[n].reconfiguration_interval
            == max(
                cu.reconfiguration_interval
                for cu in vm.machine.cus.values()
            )
        )
        for cu_name in self.cu_names:
            self.trial_count[cu_name] = 0
            self.reconfig_count[cu_name] = 0
            self.safety_count[cu_name] = 0
            self.covered_insns[cu_name] = 0
        interval = self._sampling_interval_override
        if interval is None:
            # The sampling interval must accommodate the slowest CU (§2.3).
            interval = max(
                cu.reconfiguration_interval
                for cu in vm.machine.cus.values()
            )
        self._splitter = IntervalSplitter(interval, self._on_boundary)
        self._last_snapshot = vm.machine.snapshot()

    @property
    def sampling_interval(self) -> int:
        assert self._splitter is not None, "policy not attached"
        return self._splitter.interval_insns

    def on_block(self, event: BlockEvent, machine) -> None:
        n = event.n_insns
        self.total_insns += n
        self.accumulator.observe(event.block_pc, n)
        if self._mode == "best":
            for cu_name in self.cu_names:
                self.covered_insns[cu_name] += n
        self._splitter.advance(n)

    def on_block_counts(self, n_insns, block_pc, thread_id, machine) -> None:
        # Must mirror on_block exactly (see AdaptationHooks.on_block_counts).
        self.total_insns += n_insns
        self.accumulator.observe(block_pc, n_insns)
        if self._mode == "best":
            for cu_name in self.cu_names:
                self.covered_insns[cu_name] += n_insns
        self._splitter.advance(n_insns)

    def on_blocks_bulk(self, slots, total_insns, thread_id, machine) -> None:
        # Bucket adds commute and saturate identically whether applied as
        # ``count`` increments of ``n`` or one increment of ``n * count``
        # (both clamp at counter_max), so each slot folds into one observe.
        # ``bulk_horizon`` guarantees the batch never reaches the next
        # interval boundary, so the mode/coverage tests are loop-invariant
        # and the final ``advance`` crosses no boundary.
        self.total_insns += total_insns
        observe = self.accumulator.observe
        for block_pc, n_insns, count in slots:
            observe(block_pc, n_insns * count)
        if self._mode == "best":
            for cu_name in self.cu_names:
                self.covered_insns[cu_name] += total_insns
        self._splitter.advance(total_insns)

    def bulk_horizon(self):
        splitter = self._splitter
        # Leave at least one instruction before the boundary so it fires
        # on a scalar block, at the same position as unbatched execution.
        return splitter.interval_insns - splitter._in_interval - 1

    # -- interval boundary ------------------------------------------------------

    def _setting_counts(self):
        return [self.machine.cus[name].n_settings for name in self.cu_names]

    def _apply(
        self, config: Config, counter: Optional[Dict[str, int]]
    ) -> Tuple[bool, frozenset]:
        """Set all CUs to ``config``.

        Returns ``(fully_applied, changed_cus)`` — the names whose setting
        actually moved.
        """
        machine = self.machine
        fully = True
        changed = set()
        for cu_name, index in zip(self.cu_names, config):
            if machine.cus[cu_name].current_index == index:
                continue
            if machine.request_reconfiguration(cu_name, index, self.name):
                changed.add(cu_name)
                if counter is not None:
                    counter[cu_name] += 1
            else:
                fully = False
        return fully, frozenset(changed)

    def _max_config(self) -> Config:
        return tuple(0 for _ in self.cu_names)

    def _needs_warm_interval(self, pid: int, changed: frozenset) -> bool:
        """Warm-up intervals after a reconfiguration (slow CUs need two —
        their refill spans more than one sampling interval)."""
        if changed & self._slow_cus:
            self._warm_intervals[pid] = 2
        elif changed:
            self._warm_intervals[pid] = max(
                self._warm_intervals.get(pid, 0), 0
            )
        remaining = self._warm_intervals.get(pid, 0)
        if remaining > 0:
            self._warm_intervals[pid] = remaining - 1
            return True
        return False

    def _on_boundary(self, index: int, insns_in_interval: int) -> None:
        machine = self.machine
        vector = self.accumulator.harvest()
        pid, _, run_length = self.classifier.classify(vector)
        telemetry = self.telemetry
        if telemetry.enabled and pid != self._last_pid:
            telemetry.emit(
                PHASE_TRANSITION,
                ts=machine.instructions,
                phase_from=self._last_pid,
                phase_to=pid,
                interval=index,
            )
            telemetry.metrics.counter("bbv.phase_transitions").inc()
        self._last_pid = pid
        snapshot = machine.snapshot()
        delta = snapshot.delta(self._last_snapshot)
        if delta.cycles > 0:
            self.classifier.note_interval_ipc(pid, delta.ipc)

        # Score the previous boundary's prediction (if any) against the
        # interval that actually ran, then learn the transition.
        if self.next_phase_predictor is not None:
            self.next_phase_predictor.observe(pid)

        # Steady-state telemetry for intervals run under a memoised best.
        if (
            self._mode == "best"
            and self._best_pid == pid
            and delta.cycles > 0
        ):
            entry = self.entries.get(pid)
            if entry is not None and entry.tuned:
                entry.observe_best_interval(delta.ipc)

        # Feed a pending verification measurement (sampling-side A/B
        # check of the chosen configuration against the maximum one).
        if self._verify is not None:
            vpid, stage = self._verify
            self._verify = None
            entry = self.entries.get(vpid)
            if (
                vpid == pid
                and entry is not None
                and entry.verify_pending
                and entry.verify_stage == stage
                and delta.cycles > 0
            ):
                result = entry.record_verification(
                    delta.ipc,
                    self.tuning.verify_invocations_per_stage,
                    self.tuning.performance_threshold,
                )
                if result == "demoted":
                    self.demotions += 1
                    if telemetry.enabled:
                        telemetry.emit(
                            CONFIG_DEMOTED,
                            ts=machine.instructions,
                            phase=vpid,
                            config=(
                                list(entry.best.config)
                                if entry.best
                                else []
                            ),
                        )
                        telemetry.metrics.counter("bbv.demotions").inc()

        # Credit or discard the in-flight trial.
        if self._in_flight is not None:
            trial_pid, config = self._in_flight
            self._in_flight = None
            entry = self.entries.get(trial_pid)
            if (
                trial_pid == pid
                and entry is not None
                and not entry.tuned
                and delta.cycles > 0
                and delta.instructions
                >= self.tuning.min_measurable_instructions
            ):
                energy = sum(
                    delta.tuning_energy_metric(cu_name, machine)
                    for cu_name in self.cu_names
                )
                ipc = delta.ipc
                plan = self.fault_plan
                if plan is not None and plan.perturbs_profiling:
                    ipc, energy = plan.perturb_measurement(
                        f"phase:{trial_pid}",
                        tuple(config),
                        ipc,
                        energy,
                        machine.instructions,
                        index,
                    )
                if telemetry.enabled:
                    telemetry.emit(
                        CONFIG_TRIED,
                        ts=machine.instructions,
                        phase=trial_pid,
                        config=list(config),
                        ipc=ipc,
                        energy_per_insn=energy / delta.instructions,
                    )
                    telemetry.metrics.counter("bbv.configs_tried").inc()
                completed = entry.record(
                    TuningOutcome(
                        config,
                        ipc,
                        energy / delta.instructions,
                        delta.instructions,
                    ),
                    self.tuning.performance_threshold,
                    self.tuning.objective,
                )
                if completed and telemetry.enabled:
                    telemetry.emit(
                        CONFIG_PINNED,
                        ts=machine.instructions,
                        phase=trial_pid,
                        config=(
                            list(entry.best.config) if entry.best else []
                        ),
                        trials=len(entry.outcomes),
                    )
                    telemetry.metrics.counter("bbv.configs_pinned").inc()
            else:
                self.discarded_trials += 1
                telemetry.metrics.counter("bbv.discarded_trials").inc()

        # Choose the next interval's configuration.
        stable = run_length >= self.bbv.stable_min_intervals
        if stable:
            entry = self.entries.get(pid)
            if entry is None:
                entry = PhaseTuningEntry(
                    pid, self.cu_names, self._setting_counts()
                )
                self.entries[pid] = entry
            if (
                entry.tuned
                and not entry.verify_pending
                and entry.verify_passes
                < self.tuning.verify_passes_required
                and entry.intervals_tuned_under_best > 0
                and entry.intervals_tuned_under_best % 16 == 0
            ):
                # Periodic re-verification until confirmed stable.
                entry.begin_verification()
            if entry.tuned and entry.verify_pending:
                target = entry.verification_target()
                fully, changed = self._apply(target, None)
                stage = entry.verify_stage
                self._mode = "best" if stage == "chosen" else "max"
                if fully and not self._needs_warm_interval(pid, changed):
                    self._verify = (pid, stage)
                # else: warm-up interval; verification measures later.
            elif entry.tuned:
                self._apply(entry.best.config, self.reconfig_count)
                entry.intervals_tuned_under_best += 1
                self._mode = "best"
                self._best_pid = pid
            else:
                trial = entry.current_trial
                if trial is None:
                    self._mode = "max"
                else:
                    fully, changed = self._apply(trial, self.trial_count)
                    if fully and not self._needs_warm_interval(
                        pid, changed
                    ):
                        # Configuration settled enough to measure: fast
                        # (small-refill) CU changes are noise within one
                        # interval; slow-CU resizes already consumed their
                        # warm-up intervals.
                        self._in_flight = (pid, trial)
                        self._mode = "trial"
                    elif fully:
                        self._mode = "trial"  # warm-up interval
                    else:
                        self._mode = "max"
        else:
            # Unstable/transitional: Dhodapkar-Smith falls back to the
            # maximum configuration — unless a next-phase predictor (the
            # [20]/[24] extension the paper's baseline omits) confidently
            # names a tuned phase, in which case its configuration is
            # applied speculatively.  Mispredictions adapt wrongly; that
            # is exactly the trade-off §3.5 describes.
            predicted_entry = None
            if self.next_phase_predictor is not None:
                predicted = self.next_phase_predictor.predict_next()
                if predicted is not None:
                    candidate = self.entries.get(predicted)
                    if candidate is not None and candidate.tuned:
                        predicted_entry = candidate
            if predicted_entry is not None:
                self._apply(
                    predicted_entry.best.config, self.reconfig_count
                )
                self.predicted_applications += 1
                self._mode = "best"
                self._best_pid = predicted_entry.pid
            else:
                self._apply(self._max_config(), self.safety_count)
                self._mode = "max"

        # Snapshot after reconfiguration so flush overhead is not charged
        # to the next interval's trial measurement.
        self._last_snapshot = machine.snapshot()

    # -- finalisation ---------------------------------------------------------------

    def finalize(self) -> BBVPolicyStats:
        self.classifier.flush()
        stats = BBVPolicyStats()
        stats.n_phases = self.classifier.n_phases
        stats.tuned_phases = sum(
            1 for e in self.entries.values() if e.tuned
        )
        stats.intervals_total = self.classifier.classifications
        tuned_pids = {e.pid for e in self.entries.values() if e.tuned}
        stats.intervals_in_tuned_phases = sum(
            self.classifier.phases[pid].intervals for pid in tuned_pids
        )
        stats.per_phase_ipc_cov = self.classifier.per_phase_ipc_cov()
        stats.inter_phase_ipc_cov = self.classifier.inter_phase_ipc_cov()
        stats.tunings = dict(self.trial_count)
        stats.reconfigs = dict(self.reconfig_count)
        stats.safety_reconfigs = dict(self.safety_count)
        total = max(1, self.total_insns)
        stats.coverage = {
            cu_name: covered / total
            for cu_name, covered in self.covered_insns.items()
        }
        stats.occurrence_stats = self.classifier.occurrence_stats
        stats.discarded_trials = self.discarded_trials
        if self.next_phase_predictor is not None:
            stats.predicted_applications = self.predicted_applications
            stats.prediction_accuracy = self.next_phase_predictor.accuracy
        return stats

    def on_run_end(self, vm: VirtualMachine) -> None:
        self.final_stats = self.finalize()
