"""Next-phase prediction for the temporal baseline ([20], [24]).

The paper deliberately runs its BBV baseline *without* a next-phase
predictor and notes the trade-off (§3.5): prediction can recover the
recurring-phase identification latency, but "incorrect predictions cause
unnecessary or wrong adaptations and subsequent rollbacks of hardware
configurations".  This module implements the standard first-order Markov
predictor over phase ids so the trade-off can be measured
(``benchmarks/bench_ablation_next_phase.py``).

The predictor learns transition counts phase->phase.  A prediction is
offered only when its empirical confidence clears a threshold, mirroring
the confidence-counter predictors of Sherwood et al.
"""

from __future__ import annotations

from typing import Dict, Optional


class NextPhasePredictor:
    """First-order Markov next-phase predictor with confidence gating."""

    def __init__(self, confidence: float = 0.6, min_samples: int = 3):
        if not 0.0 < confidence <= 1.0:
            raise ValueError(
                f"confidence must be in (0, 1], got {confidence}"
            )
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1: {min_samples}")
        self.confidence = confidence
        self.min_samples = min_samples
        self._transitions: Dict[int, Dict[int, int]] = {}
        self._last_pid: Optional[int] = None
        self.predictions = 0
        self.correct = 0
        self._pending_prediction: Optional[int] = None

    # -- learning ----------------------------------------------------------

    def observe(self, pid: int) -> None:
        """Record the phase of the interval that just ended."""
        if self._pending_prediction is not None:
            self.predictions += 1
            if self._pending_prediction == pid:
                self.correct += 1
            self._pending_prediction = None
        if self._last_pid is not None:
            row = self._transitions.setdefault(self._last_pid, {})
            row[pid] = row.get(pid, 0) + 1
        self._last_pid = pid

    # -- prediction ----------------------------------------------------------

    def predict_next(self) -> Optional[int]:
        """Predicted phase of the *coming* interval, or None if unsure.

        Calling this arms accuracy tracking: the next ``observe`` scores
        the prediction.
        """
        if self._last_pid is None:
            return None
        row = self._transitions.get(self._last_pid)
        if not row:
            return None
        total = sum(row.values())
        if total < self.min_samples:
            return None
        best_pid, best_count = max(row.items(), key=lambda kv: kv[1])
        if best_count / total < self.confidence:
            return None
        self._pending_prediction = best_pid
        return best_pid

    @property
    def accuracy(self) -> float:
        return self.correct / self.predictions if self.predictions else 0.0

    def __repr__(self) -> str:
        return (
            f"NextPhasePredictor(predictions={self.predictions}, "
            f"accuracy={self.accuracy:.2f})"
        )
