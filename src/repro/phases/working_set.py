"""Working-set-signature phase detection (Dhodapkar & Smith [9]).

The paper's §2.2 lists "instruction working sets" among the temporal
phase-detection signals, and its tuning algorithm *is* Dhodapkar &
Smith's.  This module supplies their detector as a drop-in alternative to
the BBV accumulator/classifier pair, so the two temporal detectors can be
compared under the same tuning machinery (the comparison performed by
[10], which found BBV the stronger signal — a finding the detector bench
can check at this scale).

A working-set signature is a bit vector: each executed code block sets
the bit its (granularity-truncated) address hashes to.  Two intervals
belong to the same phase when the *relative signature distance*
|A xor B| / |A or B| is below a threshold.
"""

from __future__ import annotations

from typing import Optional

from repro.phases.classifier import PhaseClassifier


def relative_signature_distance(a: int, b: int) -> float:
    """|A xor B| / |A or B| over bit-set signatures (0.0 for two empties)."""
    union = a | b
    if union == 0:
        return 0.0
    return bin(a ^ b).count("1") / bin(union).count("1")


class WorkingSetAccumulator:
    """Per-interval working-set signature builder.

    Duck-types :class:`repro.phases.bbv.BBVAccumulator`'s interface
    (``observe(block_pc, n_insns)`` / ``harvest()``) so the BBV policy can
    host either detector.  ``granularity_shift`` truncates addresses to
    working-set chunks (Dhodapkar & Smith use cache-line-to-page sized
    chunks); ``n_bits`` is the signature width.
    """

    def __init__(self, n_bits: int = 128, granularity_shift: int = 6):
        if n_bits <= 0:
            raise ValueError(f"n_bits must be positive: {n_bits}")
        if granularity_shift < 0:
            raise ValueError(
                f"granularity_shift must be >= 0: {granularity_shift}"
            )
        self.n_bits = n_bits
        self.granularity_shift = granularity_shift
        self._signature = 0

    def observe(self, block_pc: int, n_insns: int) -> None:
        chunk = block_pc >> self.granularity_shift
        # Knuth multiplicative hash; take *high* product bits — the low
        # bits of chunk*odd are just a permutation of chunk's low bits,
        # which collide for page-aligned chunks.
        bit = ((chunk * 2654435761) >> 13) % self.n_bits
        self._signature |= 1 << bit

    def harvest(self) -> int:
        signature = self._signature
        self._signature = 0
        return signature

    def peek(self) -> int:
        return self._signature

    def __repr__(self) -> str:
        return (
            f"WorkingSetAccumulator(bits={self.n_bits}, "
            f"set={bin(self._signature).count('1')})"
        )


class WorkingSetClassifier(PhaseClassifier):
    """Phase table keyed on working-set signatures.

    Matching replaces the stored signature with the latest one (working
    sets drift; Dhodapkar & Smith track the current set, not an average).
    """

    def __init__(
        self,
        similarity_threshold: float = 0.5,
        stable_min_intervals: int = 2,
    ):
        super().__init__(similarity_threshold, stable_min_intervals)

    def _prepare(self, vector: int) -> int:
        return vector

    def _distance(self, prepared: int, signature: int) -> float:
        return relative_signature_distance(prepared, signature)

    def _merge(self, signature: int, prepared: int) -> int:
        return prepared


def make_working_set_policy(
    tuning=None,
    n_bits: int = 128,
    granularity_shift: int = 6,
    similarity_threshold: float = 0.5,
    sampling_interval: Optional[int] = None,
):
    """A BBV-style temporal policy running on working-set signatures."""
    from repro.phases.policy import BBVACEPolicy

    policy = BBVACEPolicy(
        tuning=tuning, sampling_interval=sampling_interval
    )
    policy.name = "working-set"
    policy.accumulator = WorkingSetAccumulator(n_bits, granularity_shift)
    policy.classifier = WorkingSetClassifier(
        similarity_threshold=similarity_threshold,
        stable_min_intervals=policy.bbv.stable_min_intervals,
    )
    return policy
