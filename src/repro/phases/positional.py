"""The original positional approach (Huang et al. [14], paper §2.2/§3.5).

The positional approach adapts hardware at code positions rather than
sampling intervals — but, unlike the paper's framework, it only
instruments *large procedures* ("since it is hard to find procedure calls
that start new phases by hardware at runtime, the positional approach
simply adapts at boundaries of large procedures") and tunes the full
combinatorial configuration list per procedure (no CU decoupling — that
is the paper's contribution).

The paper's §3.5 critique, which this implementation lets the benches
quantify:

* large procedures are invoked far less often than hotspots, so their
  best configurations get applied fewer times per tuning investment;
* fine-grain phases *inside* a large procedure cannot be adapted to;
* hierarchical phase behaviour needs "significant effort" — here, simply,
  nothing nested inside a managed procedure is managed.

Implementation: the DO machinery (invocation counting, entry/exit stubs)
is reused — the positional approach is, after all, a positional scheme —
but the classifier assigns the *full CU set* to procedures above a single
size threshold and nothing to anything smaller.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.cu_assignment import SizeClassifier
from repro.core.policy import HotspotACEPolicy
from repro.core.tuning import TuningConfig


class LargeProcedureClassifier(SizeClassifier):
    """All CUs at procedures above ``min_size``; nothing below.

    ``min_size`` defaults to the largest CU's reconfiguration interval —
    the natural "large enough to amortise any reconfiguration" bound.
    """

    def __init__(
        self, intervals: Dict[str, int], min_size: Optional[int] = None
    ):
        super().__init__(intervals)
        self.min_size = (
            min_size if min_size is not None else max(intervals.values())
        )

    def cus_for_size(self, size: float) -> Tuple[str, ...]:
        if size >= self.min_size:
            return tuple(self.intervals)
        return ()

    def classify_kind(self, size: float) -> str:
        return "procedure" if size >= self.min_size else "unmanaged"

    @classmethod
    def from_machine(cls, machine, min_size: Optional[int] = None):
        return cls(
            {
                name: cu.reconfiguration_interval
                for name, cu in machine.cus.items()
            },
            min_size=min_size,
        )


class PositionalACEPolicy(HotspotACEPolicy):
    """Adaptation at large-procedure boundaries, combinatorial tuning."""

    name = "positional"

    def __init__(
        self,
        tuning: Optional[TuningConfig] = None,
        min_procedure_size: Optional[int] = None,
        enable_retuning: bool = True,
    ):
        super().__init__(
            tuning=tuning,
            classifier=None,  # built at attach, needs the machine
            decoupling=False,  # full combinatorial list per procedure
            enable_retuning=enable_retuning,
        )
        self._min_procedure_size = min_procedure_size

    def attach(self, vm) -> None:
        self._classifier = LargeProcedureClassifier.from_machine(
            vm.machine, min_size=self._min_procedure_size
        )
        super().attach(vm)
