"""The virtual machine: execution engine + DO services (paper Figure 2).

The VM interprets a program at block granularity, feeding every block event
through the machine model, while providing the dynamic-optimization
services the ACE framework builds on:

* compile-only execution — baseline compile on first invocation, hotspot
  recompilation at the top optimisation level (§4.2);
* invocation counting and hotspot detection (§3.1);
* instrumentation dispatch — if the JIT has an entry/exit stub patched on a
  hotspot, the VM invokes it at every hotspot entry/exit (the tuning /
  profiling / configuration / sampling code of §3.2–3.3);
* a timer-sampling profiler, round-robin threading (mtrt), and an optional
  GC service method.

Adaptation policies see execution through :class:`AdaptationHooks`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.program import (
    CondBranch,
    Goto,
    Method,
    Program,
    Return,
)
from repro.obs.events import (
    HOTSPOT_DETECTED,
    HOTSPOT_INVOKE,
    NULL_TELEMETRY,
)
from repro.trace.events import BlockEvent
from repro.uarch.machine import MachineModel
from repro.vm.activation import ThreadContext
from repro.vm.hotspot import DODatabase, HotspotDetector, HotspotInfo
from repro.vm.jit import JITCompiler
from repro.vm.sampler import SamplingProfiler

_EMPTY: List[int] = []


@dataclass
class VMConfig:
    """Knobs of the DO system."""

    #: Invocations before a method is promoted to hotspot (paper Table 1).
    hot_threshold: int = 4
    #: Blocks each thread runs before round-robin switching.  Jikes 2.0.2
    #: time-slices green threads every ~10 ms — ~10 M cycles at 1 GHz,
    #: which is ~100 K instructions at the 1/100 interval scale — so the
    #: quantum is coarse, not fine-grained interleaving.
    quantum_blocks: int = 15000
    #: Simulated cycles between profiler samples (Jikes: ~10 ms).
    sample_period_cycles: float = 10_000.0
    #: Name of a GC service method to invoke periodically ('' disables).
    gc_method: str = ""
    #: Instructions between GC service invocations.
    gc_period_instructions: int = 0
    #: Charge JIT compilation time to the simulated clock.
    charge_compile_cycles: bool = True
    #: Random seed base for thread execution streams.
    seed: int = 12345
    #: "shared" (historical): deciders and memory behaviours draw from
    #: one per-thread stream.  "split": deciders get their own stream, so
    #: control flow is independent of address draws (required by the
    #: turbo kernel's equivalence contract).
    decider_stream: str = "shared"


class AdaptationHooks:
    """Policy interface; the default implementation adapts nothing.

    ``on_hotspot_detected`` is where a policy installs tuning/profiling
    stubs through ``vm.jit`` — after that, the stubs themselves run at each
    hotspot boundary, exactly as in the paper's flowchart.
    """

    name = "static"

    #: Measurement-driven deoptimisation flag for the turbo kernel.
    #: While non-zero, turbo executes its exact scalar path (no
    #: batching), bit-identical to the fast kernel, so any metric the
    #: policy *measures* — and therefore every discrete decision derived
    #: from a measurement — is insulated from batching's address-stream
    #: relaxation.  Policies that tune by measuring (both shipped ACE
    #: schemes) assert it for the whole run, because a trial window can
    #: open at any time and its measured (IPC, energy) depends on cache
    #: state carried in from *all* earlier execution.  The kernel
    #: samples the value once per scheduling quantum, so it must be set
    #: before the run starts (``__init__``/``attach``), not toggled
    #: mid-run.  Scalar kernels ignore it; ``0`` (the default) means
    #: batching is unrestricted.
    bulk_pause_depth = 0

    #: Declares whether this policy's ``on_block`` reads the event's
    #: ``loads``/``stores`` address lists.  The conservative default is
    #: True; a policy that only consumes block *counts* (``n_insns``,
    #: ``block_pc``, ``thread_id``, …) may set it to False, which lets
    #: the fast kernel keep its fused draw+cache path (the hook then
    #: receives a BlockEvent whose address lists are empty).  Both
    #: shipped ACE schemes are count-only.  An ``on_block`` overridden
    #: on the *instance* ignores the declaration (conservative).
    on_block_reads_addresses = True

    def attach(self, vm: "VirtualMachine") -> None:
        """Called once before the run starts."""

    def on_block(self, event: BlockEvent, machine: MachineModel) -> None:
        """Called after every block event has been consumed."""

    def on_block_counts(
        self, n_insns: int, block_pc: int, thread_id: int,
        machine: MachineModel,
    ) -> None:
        """Narrow per-block hook for count-only policies (fast kernel).

        A policy that sets ``on_block_reads_addresses = False`` may also
        override this method with the same state updates as its
        ``on_block``; the fast kernel then calls it instead of
        allocating a :class:`BlockEvent` per block.  The reference
        kernel always calls ``on_block``, so the two implementations
        must be behaviourally identical — the differential equivalence
        grid compares full run results (including policy decisions)
        across kernels and catches any divergence.  The default is never
        invoked: without an override the fast kernel falls back to
        ``on_block`` with an empty-address event.
        """

    def on_blocks_bulk(
        self,
        slots: "Tuple[Tuple[int, int, int], ...]",
        total_insns: int,
        thread_id: int,
        machine: MachineModel,
    ) -> None:
        """Aggregated hook for a batch of block executions (turbo kernel).

        ``slots`` is a tuple of ``(block_pc, n_insns, count)`` triples;
        ``total_insns`` is the pre-summed instruction total across the
        batch.  The turbo kernel only takes its batched path for a
        count-only policy that *overrides* this method (the default
        fallback below replays ``on_block_counts`` per block, and exists
        for API completeness and direct tests — the kernel never relies
        on it).  An override must leave the policy in the same state as
        ``count`` sequential ``on_block_counts`` calls would, up to the
        deviations documented in docs/INTERNALS.md §17.
        """
        for block_pc, n_insns, count in slots:
            for _ in range(count):
                self.on_block_counts(n_insns, block_pc, thread_id, machine)

    def bulk_horizon(self) -> Optional[int]:
        """Max instructions the turbo kernel may batch past this point.

        Return ``None`` for "no limit".  A policy with instruction-count
        boundaries (e.g. BBV interval splitting) returns the distance to
        its next boundary so a batch never lumps block counts across it —
        the boundary then fires on a scalar block at the same position it
        would have in unbatched execution.
        """
        return None

    def on_hotspot_detected(
        self, hotspot: HotspotInfo, vm: "VirtualMachine"
    ) -> None:
        """Called once when a method turns hot (after JIT optimisation)."""

    def on_run_end(self, vm: "VirtualMachine") -> None:
        """Called when the run's instruction budget is exhausted."""


class VMStats:
    """Run-level statistics owned by the VM."""

    __slots__ = (
        "blocks_executed",
        "instructions_in_hotspots",
        "gc_invocations",
        "thread_instructions",
    )

    def __init__(self, n_threads: int):
        self.blocks_executed = 0
        self.instructions_in_hotspots = 0
        self.gc_invocations = 0
        self.thread_instructions = [0] * n_threads


class VirtualMachine:
    """Executes a program on a machine model under an adaptation policy."""

    def __init__(
        self,
        program: Program,
        machine: MachineModel,
        policy: Optional[AdaptationHooks] = None,
        config: Optional[VMConfig] = None,
        thread_entries: Optional[Sequence[str]] = None,
        preload_database: Optional[DODatabase] = None,
        telemetry=None,
    ):
        if not program.is_laid_out:
            raise ValueError(
                "program must be validated/laid out before execution "
                "(call Program.validated())"
            )
        self.program = program
        self.machine = machine
        self.policy = policy or AdaptationHooks()
        self.config = config or VMConfig()
        entries = list(thread_entries or [program.entry])
        for entry in entries:
            if entry not in program.methods:
                raise ValueError(f"unknown thread entry method {entry!r}")
        split = self.config.decider_stream == "split"
        self.threads = [
            ThreadContext(
                i,
                program,
                entry,
                self.config.seed + 7919 * i,
                decider_seed=(
                    (self.config.seed + 7919 * i) ^ 0x5DEC1DE5
                    if split
                    else None
                ),
            )
            for i, entry in enumerate(entries)
        ]
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        machine.telemetry = self.telemetry
        self.database = preload_database or DODatabase()
        self.detector = HotspotDetector(
            self.database, self.config.hot_threshold
        )
        self.jit = JITCompiler()
        self.sampler = SamplingProfiler(self.config.sample_period_cycles)
        self.stats = VMStats(len(self.threads))
        self._gc_last = 0
        self._gc_active = 0
        self.policy.attach(self)
        # Preloaded hotspots (a persisted DO database from a previous run
        # of the same workload) are announced to the policy up front: they
        # are recognised from their first invocation, with zero
        # identification latency.
        for name, info in self.database.hotspots.items():
            if name in program.methods:
                self.policy.on_hotspot_detected(info, self)

    # -- DO service plumbing ------------------------------------------------

    def _charge_cycles(self, cycles: float) -> None:
        """Charge VM-service time (JIT compiles) to the simulated clock."""
        if cycles and self.config.charge_compile_cycles:
            self.machine.cycles += cycles
            self.machine.energy.add_cycles(cycles)

    def _invoke(self, thread: ThreadContext, method: Method) -> None:
        machine = self.machine
        self._charge_cycles(
            self.jit.ensure_baseline(method, machine.instructions)
        )
        newly_hot = self.detector.on_invocation(
            method.name, machine.instructions
        )
        if newly_hot is not None:
            self._charge_cycles(
                self.jit.optimize_hotspot(method, machine.instructions)
            )
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    HOTSPOT_DETECTED,
                    ts=machine.instructions,
                    track="vm",
                    method=method.name,
                    invocations=newly_hot.profile.invocations,
                    mean_size=newly_hot.mean_size,
                )
                telemetry.metrics.counter("vm.hotspots_detected").inc()
            self.policy.on_hotspot_detected(newly_hot, self)
        activation = thread.push(method)
        activation.entry_instructions = machine.instructions
        activation.entry_cycles = machine.cycles
        machine.on_method_entry(method.name, method.code_footprint)
        info = self.database.hotspots.get(method.name)
        if info is not None:
            activation.is_hotspot = True
            thread.hotspot_depth += 1
            stub = self.jit.entry_stub(method.name)
            if stub is not None:
                stub.fn(info, activation, self)

    def _return(self, thread: ThreadContext) -> None:
        activation = thread.pop()
        name = activation.method.name
        inclusive = (
            self.machine.instructions - activation.entry_instructions
        )
        self.database.profile(name).record_completion(inclusive)
        if activation.is_hotspot:
            thread.hotspot_depth -= 1
            info = self.database.hotspots[name]
            info.instructions_inside += inclusive
            stub = self.jit.exit_stub(name)
            if stub is not None:
                stub.fn(info, activation, self)
            telemetry = self.telemetry
            if telemetry.enabled and inclusive > 0:
                telemetry.emit(
                    HOTSPOT_INVOKE,
                    ts=activation.entry_instructions,
                    track=f"hotspot:{name}",
                    dur=inclusive,
                )
        if self._gc_active and name == self.config.gc_method:
            self._gc_active -= 1

    def _maybe_gc(self, thread: ThreadContext) -> None:
        config = self.config
        if (
            not config.gc_method
            or config.gc_period_instructions <= 0
            or self._gc_active
        ):
            return
        if (
            self.machine.instructions - self._gc_last
            >= config.gc_period_instructions
        ):
            self._gc_last = self.machine.instructions
            self._gc_active += 1
            self.stats.gc_invocations += 1
            self._invoke(thread, self.program.methods[config.gc_method])

    # -- execution ------------------------------------------------------------

    def _step(self, thread: ThreadContext) -> None:
        """Advance one thread by one micro-step (block body, call, or
        control transfer)."""
        activation = thread.stack[-1]
        method = activation.method
        block = method.blocks[activation.bid]
        phase = activation.phase

        if phase == 0:
            self._execute_body(thread, activation, block)
            activation.phase = 1
            return

        calls = block.calls
        if phase <= len(calls):
            activation.phase = phase + 1
            callee = self.program.methods[calls[phase - 1].callee]
            self._invoke(thread, callee)
            return

        term = block.terminator
        if isinstance(term, Return):
            self._return(thread)
            if not thread.stack:
                thread.finished = True
            return
        if isinstance(term, Goto):
            activation.bid = term.target
        else:  # CondBranch — outcome decided at body time
            taken = activation.loop_states.pop("__pending__")
            activation.bid = term.taken if taken else term.fallthrough
        activation.phase = 0

    def _execute_body(self, thread, activation, block) -> None:
        machine = self.machine
        mix = block.mix
        memory = block.memory
        method_name = activation.method.name
        if memory is not None and (mix.loads or mix.stores):
            # Iteration counters persist across invocations (per thread):
            # streaming behaviours progress through their spans the way a
            # real workload progresses through its input.
            key = (method_name, block.bid)
            iterations = thread.block_iterations
            iteration = iterations.get(key, 0)
            iterations[key] = iteration + 1
            region = activation.method.region
            loads, stores = memory.generate(
                thread.rng,
                activation.frame_base,
                region.base if region is not None else 0,
                iteration,
                mix.loads,
                mix.stores,
            )
        else:
            loads, stores = _EMPTY, _EMPTY

        term = block.terminator
        if isinstance(term, CondBranch):
            decider = term.decider
            if decider.persistent:
                states = thread.persistent_decider_states
                state_key = (method_name, block.bid)
            else:
                states = activation.loop_states
                state_key = block.bid
            state = states.get(state_key, _SENTINEL)
            if state is _SENTINEL:
                state = decider.initial_state(thread.decider_rng)
            taken, new_state = decider.decide(state, thread.decider_rng)
            states[state_key] = new_state
            activation.loop_states["__pending__"] = taken
            branch_pc = block.branch_pc
        else:
            taken = True
            branch_pc = None

        event = BlockEvent(
            activation.method.name,
            block.bid,
            mix.total,
            loads,
            stores,
            branch_pc,
            taken,
            serialized=getattr(memory, "serialized", False),
            thread_id=thread.thread_id,
            block_pc=block.branch_pc or 0,
        )
        cycles = machine.consume(event)
        stats = self.stats
        stats.blocks_executed += 1
        stats.thread_instructions[thread.thread_id] += mix.total
        if thread.hotspot_depth:
            stats.instructions_in_hotspots += mix.total
        self.policy.on_block(event, machine)
        self.sampler.advance(machine.cycles, activation.method.name)
        del cycles

    def run(self, max_instructions: int) -> None:
        """Run until ``max_instructions`` retire or all threads finish."""
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        machine = self.machine
        quantum = self.config.quantum_blocks
        threads = self.threads
        for thread in threads:
            self._invoke(thread, self.program.methods[thread.entry_method])
        gc_enabled = bool(
            self.config.gc_method
            and self.config.gc_period_instructions > 0
        )
        while machine.instructions < max_instructions:
            alive = False
            for thread in threads:
                if thread.finished:
                    continue
                alive = True
                for _ in range(quantum):
                    if (
                        thread.finished
                        or machine.instructions >= max_instructions
                    ):
                        break
                    if gc_enabled:
                        self._maybe_gc(thread)
                    self._step(thread)
                if machine.instructions >= max_instructions:
                    break
            if not alive:
                break
        self.policy.on_run_end(self)

    # -- convenience ------------------------------------------------------------

    @property
    def hotspots(self) -> Dict[str, HotspotInfo]:
        return self.database.hotspots

    def __repr__(self) -> str:
        return (
            f"VirtualMachine(program={self.program.entry!r}, "
            f"threads={len(self.threads)}, "
            f"insns={self.machine.instructions})"
        )


_SENTINEL = object()
