"""JIT compiler model (paper §4.2).

Jikes RVM is compile-only: every method is baseline-compiled on first
invocation, and hotspots are recompiled at the highest optimisation level
(the paper restricts itself to one level to avoid multiple hotspot
versions).  The reproduction charges compile time (cycles) proportional to
method size, and models the *instrumentation patching* the framework relies
on: the compiler can attach/replace entry and exit stubs on a compiled
method — the tuning/profiling/configuration/sampling code of Figure 2 —
which the VM invokes on every subsequent entry/exit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.program import CondBranch, Goto, Method, Program
from repro.vm.blockjit import compile_fused_block


class OptimizationLevel(enum.IntEnum):
    """Compilation levels, mirroring Jikes' baseline + O0..O2."""

    BASELINE = 0
    O0 = 1
    O1 = 2
    O2 = 3


@dataclass(frozen=True)
class CompileEvent:
    """One compilation, for logs and overhead accounting."""

    method: str
    level: OptimizationLevel
    at_instructions: int
    cost_cycles: float


#: Relative compile cost per static instruction at each level; the optimizing
#: levels are much slower than the baseline compiler, as in Jikes.
_COST_PER_INSN = {
    OptimizationLevel.BASELINE: 2.0,
    OptimizationLevel.O0: 10.0,
    OptimizationLevel.O1: 25.0,
    OptimizationLevel.O2: 60.0,
}

#: Speedup of code compiled at each level relative to baseline code.
#: Applied as a divisor on block cycles for optimised methods.
_CODE_QUALITY = {
    OptimizationLevel.BASELINE: 1.0,
    OptimizationLevel.O0: 1.15,
    OptimizationLevel.O1: 1.25,
    OptimizationLevel.O2: 1.30,
}


class EntryStub:
    """An instrumentation stub the JIT installs at a hotspot boundary.

    ``kind`` is free-form (the framework uses "tuning", "config",
    "sampling"); ``fn`` is invoked by the VM with ``(hotspot, vm)`` at entry
    stubs and ``(hotspot, invocation_delta, vm)`` at exit stubs.
    """

    __slots__ = ("kind", "fn")

    def __init__(self, kind: str, fn: Callable):
        self.kind = kind
        self.fn = fn

    def __repr__(self) -> str:
        return f"EntryStub({self.kind!r})"


class JITCompiler:
    """Compile-state tracker + instrumentation patch points."""

    def __init__(self, top_level: OptimizationLevel = OptimizationLevel.O2):
        self.top_level = top_level
        self.levels: Dict[str, OptimizationLevel] = {}
        self.entry_stubs: Dict[str, EntryStub] = {}
        self.exit_stubs: Dict[str, EntryStub] = {}
        self.compile_log: List[CompileEvent] = []
        self.total_compile_cycles = 0.0

    # -- compilation -------------------------------------------------------

    def compile(
        self,
        method: Method,
        level: OptimizationLevel,
        now_instructions: int,
    ) -> float:
        """(Re)compile ``method`` at ``level``; returns the cycle cost."""
        current = self.levels.get(method.name)
        if current is not None and current >= level:
            return 0.0
        cost = method.static_instruction_count * _COST_PER_INSN[level]
        self.levels[method.name] = level
        self.compile_log.append(
            CompileEvent(method.name, level, now_instructions, cost)
        )
        self.total_compile_cycles += cost
        return cost

    def ensure_baseline(self, method: Method, now_instructions: int) -> float:
        """First-touch baseline compilation (compile-only VM)."""
        if method.name in self.levels:
            return 0.0
        return self.compile(
            method, OptimizationLevel.BASELINE, now_instructions
        )

    def optimize_hotspot(self, method: Method, now_instructions: int) -> float:
        """Recompile a detected hotspot at the top level (paper §4.2)."""
        return self.compile(method, self.top_level, now_instructions)

    def level_of(self, method_name: str) -> OptimizationLevel:
        return self.levels.get(method_name, OptimizationLevel.BASELINE)

    def code_quality(self, method_name: str) -> float:
        """Cycle divisor reflecting the method's code quality."""
        return _CODE_QUALITY[self.level_of(method_name)]

    # -- instrumentation patching ------------------------------------------

    def patch_entry(self, method_name: str, stub: Optional[EntryStub]) -> None:
        """Install (or, with None, remove) the entry stub of a method."""
        if stub is None:
            self.entry_stubs.pop(method_name, None)
        else:
            self.entry_stubs[method_name] = stub

    def patch_exit(self, method_name: str, stub: Optional[EntryStub]) -> None:
        if stub is None:
            self.exit_stubs.pop(method_name, None)
        else:
            self.exit_stubs[method_name] = stub

    def entry_stub(self, method_name: str) -> Optional[EntryStub]:
        return self.entry_stubs.get(method_name)

    def exit_stub(self, method_name: str) -> Optional[EntryStub]:
        return self.exit_stubs.get(method_name)


# ---------------------------------------------------------------------------
# Block decode tables (fast-kernel support)
# ---------------------------------------------------------------------------

#: Terminator kinds in a :class:`DecodedBlock`.
TERM_RETURN = 0
TERM_GOTO = 1
TERM_COND = 2

#: Initial value of :attr:`DecodedBlock.pstate` — distinct from any real
#: decider state (``None`` could be one).
PSTATE_UNSET = object()


class DecodedBlock:
    """Pre-decoded execution plan of one basic block.

    Everything the interpreter's hot loop needs from a block —
    instruction counts, terminator shape, resolved callee ``Method``
    objects, state-dictionary keys — is immutable once the program is
    laid out, so the fast kernel decodes each block once and then runs
    from these flat slots instead of re-deriving them (isinstance checks,
    dict lookups, ``getattr``) millions of times.
    """

    __slots__ = (
        "bid",
        "method_name",
        "n_insns",
        "n_loads",
        "n_stores",
        "memory",
        "gen",
        "fast_gen",
        "fused_gen",
        "serialized",
        "region_base",
        "key",
        "callees",
        "n_calls",
        "term_kind",
        "goto_target",
        "taken_target",
        "fallthrough_target",
        "goto_dec",
        "taken_dec",
        "fallthrough_dec",
        "decider",
        "persistent",
        "branch_pc",
        "block_pc",
        "needs_iter",
        "iter_count",
        "pstate",
    )

    def __init__(self, method: Method, block, program: Program):
        mix = block.mix
        memory = block.memory
        self.bid = block.bid
        self.method_name = method.name
        self.n_insns = mix.total
        self.n_loads = mix.loads
        self.n_stores = mix.stores
        self.memory = memory
        #: ``memory`` when the body actually generates addresses
        #: (mirrors the reference kernel's ``memory is not None and
        #: (mix.loads or mix.stores)`` guard), else ``None``.
        self.gen = (
            memory
            if memory is not None and (mix.loads or mix.stores)
            else None
        )
        #: Specialised address generator (see
        #: ``MemoryBehavior.compile_fast``); falls back to a
        #: ``generate``-wrapping closure for behaviours without one.
        #: Codegen'd draw+L1-access closure (see
        #: :mod:`repro.vm.blockjit`); only usable when no ``on_block``
        #: hook needs the address lists.  ``None`` for behaviours
        #: without a fused form.
        if self.gen is None:
            self.fast_gen = None
            self.fused_gen = None
        else:
            self.fused_gen = compile_fused_block(
                self.gen, mix.loads, mix.stores
            )
            fast = self.gen.compile_fast(mix.loads, mix.stores)
            if fast is None:
                gen, nl, ns = self.gen, mix.loads, mix.stores

                def fast(rng, frame_base, region_base, iteration):
                    return gen.generate(
                        rng, frame_base, region_base, iteration, nl, ns
                    )

            self.fast_gen = fast
        #: Whether the generators consume the iteration counter at all;
        #: when False the runners skip its per-execution maintenance
        #: (the skipped value is unobservable).
        self.needs_iter = (
            self.gen is not None and self.gen.uses_iteration
        )
        self.serialized = getattr(memory, "serialized", False)
        region = method.region
        self.region_base = region.base if region is not None else 0
        #: Key into the thread's persistent per-block dictionaries
        #: (iteration counters, persistent decider state).
        self.key = (method.name, block.bid)
        self.callees: Tuple[Method, ...] = tuple(
            program.methods[site.callee] for site in block.calls
        )
        self.n_calls = len(self.callees)
        term = block.terminator
        self.goto_target = None
        self.taken_target = None
        self.fallthrough_target = None
        self.decider = None
        self.persistent = False
        if isinstance(term, Goto):
            self.term_kind = TERM_GOTO
            self.goto_target = term.target
        elif isinstance(term, CondBranch):
            self.term_kind = TERM_COND
            self.taken_target = term.taken
            self.fallthrough_target = term.fallthrough
            self.decider = term.decider
            self.persistent = term.decider.persistent
        else:
            self.term_kind = TERM_RETURN
        self.branch_pc = block.branch_pc
        self.block_pc = block.branch_pc or 0
        #: Direct links to successor DecodedBlocks (resolved by
        #: :meth:`BlockDecoder.table` once the whole method is decoded) so
        #: the fused single-thread runner chains blocks without per-step
        #: table lookups.
        self.goto_dec = None
        self.taken_dec = None
        self.fallthrough_dec = None
        #: Per-run mutable state used only by the fused single-thread
        #: runner (one thread, decoder owned by one VM): the block's
        #: iteration counter and its persistent decider state.  The
        #: general runner keeps these in the per-thread dictionaries,
        #: exactly like the reference kernel.
        self.iter_count = 0
        self.pstate = PSTATE_UNSET

    def __repr__(self) -> str:
        return (
            f"DecodedBlock({self.method_name}:{self.bid}, "
            f"insns={self.n_insns}, term={self.term_kind})"
        )


class BlockDecoder:
    """Per-program cache of :class:`DecodedBlock` tables.

    ``tables`` maps method name to a ``{bid: DecodedBlock}`` dict;
    methods are decoded lazily on first execution so cold methods cost
    nothing.  Decoding requires the program to be laid out (branch PCs
    assigned), which the VM already guarantees.
    """

    __slots__ = ("program", "tables")

    def __init__(self, program: Program):
        self.program = program
        self.tables: Dict[str, Dict[str, DecodedBlock]] = {}

    def table(self, method: Method) -> Dict[str, DecodedBlock]:
        table = self.tables.get(method.name)
        if table is None:
            program = self.program
            table = {
                bid: DecodedBlock(method, block, program)
                for bid, block in method.blocks.items()
            }
            for dec in table.values():
                if dec.term_kind == TERM_GOTO:
                    dec.goto_dec = table[dec.goto_target]
                elif dec.term_kind == TERM_COND:
                    dec.taken_dec = table[dec.taken_target]
                    dec.fallthrough_dec = table[dec.fallthrough_target]
            self.tables[method.name] = table
        return table
