"""JIT compiler model (paper §4.2).

Jikes RVM is compile-only: every method is baseline-compiled on first
invocation, and hotspots are recompiled at the highest optimisation level
(the paper restricts itself to one level to avoid multiple hotspot
versions).  The reproduction charges compile time (cycles) proportional to
method size, and models the *instrumentation patching* the framework relies
on: the compiler can attach/replace entry and exit stubs on a compiled
method — the tuning/profiling/configuration/sampling code of Figure 2 —
which the VM invokes on every subsequent entry/exit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.isa.program import Method


class OptimizationLevel(enum.IntEnum):
    """Compilation levels, mirroring Jikes' baseline + O0..O2."""

    BASELINE = 0
    O0 = 1
    O1 = 2
    O2 = 3


@dataclass(frozen=True)
class CompileEvent:
    """One compilation, for logs and overhead accounting."""

    method: str
    level: OptimizationLevel
    at_instructions: int
    cost_cycles: float


#: Relative compile cost per static instruction at each level; the optimizing
#: levels are much slower than the baseline compiler, as in Jikes.
_COST_PER_INSN = {
    OptimizationLevel.BASELINE: 2.0,
    OptimizationLevel.O0: 10.0,
    OptimizationLevel.O1: 25.0,
    OptimizationLevel.O2: 60.0,
}

#: Speedup of code compiled at each level relative to baseline code.
#: Applied as a divisor on block cycles for optimised methods.
_CODE_QUALITY = {
    OptimizationLevel.BASELINE: 1.0,
    OptimizationLevel.O0: 1.15,
    OptimizationLevel.O1: 1.25,
    OptimizationLevel.O2: 1.30,
}


class EntryStub:
    """An instrumentation stub the JIT installs at a hotspot boundary.

    ``kind`` is free-form (the framework uses "tuning", "config",
    "sampling"); ``fn`` is invoked by the VM with ``(hotspot, vm)`` at entry
    stubs and ``(hotspot, invocation_delta, vm)`` at exit stubs.
    """

    __slots__ = ("kind", "fn")

    def __init__(self, kind: str, fn: Callable):
        self.kind = kind
        self.fn = fn

    def __repr__(self) -> str:
        return f"EntryStub({self.kind!r})"


class JITCompiler:
    """Compile-state tracker + instrumentation patch points."""

    def __init__(self, top_level: OptimizationLevel = OptimizationLevel.O2):
        self.top_level = top_level
        self.levels: Dict[str, OptimizationLevel] = {}
        self.entry_stubs: Dict[str, EntryStub] = {}
        self.exit_stubs: Dict[str, EntryStub] = {}
        self.compile_log: List[CompileEvent] = []
        self.total_compile_cycles = 0.0

    # -- compilation -------------------------------------------------------

    def compile(
        self,
        method: Method,
        level: OptimizationLevel,
        now_instructions: int,
    ) -> float:
        """(Re)compile ``method`` at ``level``; returns the cycle cost."""
        current = self.levels.get(method.name)
        if current is not None and current >= level:
            return 0.0
        cost = method.static_instruction_count * _COST_PER_INSN[level]
        self.levels[method.name] = level
        self.compile_log.append(
            CompileEvent(method.name, level, now_instructions, cost)
        )
        self.total_compile_cycles += cost
        return cost

    def ensure_baseline(self, method: Method, now_instructions: int) -> float:
        """First-touch baseline compilation (compile-only VM)."""
        if method.name in self.levels:
            return 0.0
        return self.compile(
            method, OptimizationLevel.BASELINE, now_instructions
        )

    def optimize_hotspot(self, method: Method, now_instructions: int) -> float:
        """Recompile a detected hotspot at the top level (paper §4.2)."""
        return self.compile(method, self.top_level, now_instructions)

    def level_of(self, method_name: str) -> OptimizationLevel:
        return self.levels.get(method_name, OptimizationLevel.BASELINE)

    def code_quality(self, method_name: str) -> float:
        """Cycle divisor reflecting the method's code quality."""
        return _CODE_QUALITY[self.level_of(method_name)]

    # -- instrumentation patching ------------------------------------------

    def patch_entry(self, method_name: str, stub: Optional[EntryStub]) -> None:
        """Install (or, with None, remove) the entry stub of a method."""
        if stub is None:
            self.entry_stubs.pop(method_name, None)
        else:
            self.entry_stubs[method_name] = stub

    def patch_exit(self, method_name: str, stub: Optional[EntryStub]) -> None:
        if stub is None:
            self.exit_stubs.pop(method_name, None)
        else:
            self.exit_stubs[method_name] = stub

    def entry_stub(self, method_name: str) -> Optional[EntryStub]:
        return self.entry_stubs.get(method_name)

    def exit_stub(self, method_name: str) -> Optional[EntryStub]:
        return self.exit_stubs.get(method_name)
