"""Activation records and per-thread execution state.

An :class:`Activation` is one live method invocation: its current block,
per-block loop/decider state, per-block iteration counters (which drive
strided memory behaviour), and the bookkeeping the VM needs to measure the
invocation's inclusive size.  A :class:`ThreadContext` is an activation
stack plus the thread's deterministic random stream.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.isa.program import Method, Program

#: Bytes reserved per stack frame; frame addresses descend from the stack base.
FRAME_BYTES = 512

#: Base address of thread 0's stack; threads are spaced well apart.
STACK_BASE = 0x7F00_0000
STACK_SPACING = 0x0010_0000


class Activation:
    """One invocation of a method."""

    __slots__ = (
        "method",
        "bid",
        "phase",
        "frame_base",
        "loop_states",
        "entry_instructions",
        "entry_cycles",
        "is_hotspot",
        "policy_token",
    )

    #: ``phase`` values: 0 = execute block body next; 1..len(calls) = next
    #: call site to launch (1-based); len(calls)+1 = evaluate terminator.
    def __init__(self, method: Method, frame_base: int):
        self.method = method
        self.bid = method.entry
        self.phase = 0
        self.frame_base = frame_base
        self.loop_states: Dict[str, object] = {}
        self.entry_instructions = 0
        self.entry_cycles = 0.0
        self.is_hotspot = False
        #: Opaque slot for the adaptation policy (e.g. per-invocation
        #: measurement snapshot installed by tuning code).
        self.policy_token = None

    def __repr__(self) -> str:
        return f"Activation({self.method.name}:{self.bid}, phase={self.phase})"


class ThreadContext:
    """A thread: activation stack + deterministic random stream."""

    def __init__(
        self,
        thread_id: int,
        program: Program,
        entry_method: str,
        seed: int,
        decider_seed: Optional[int] = None,
    ):
        self.thread_id = thread_id
        self.program = program
        self.rng = random.Random(seed)
        #: Stream feeding loop/branch deciders.  By default it *is* the
        #: main stream (byte-identical to the historical behaviour); with
        #: ``decider_stream="split"`` it is an independent stream so trip
        #: counts do not depend on how address draws are performed.
        self.decider_rng = (
            self.rng if decider_seed is None else random.Random(decider_seed)
        )
        self.stack: List[Activation] = []
        self.stack_base = STACK_BASE - thread_id * STACK_SPACING
        self.finished = False
        #: Count of hotspot activations currently on the stack — while > 0,
        #: executed instructions are "inside hotspots" (Table 4 coverage).
        self.hotspot_depth = 0
        self.entry_method = entry_method
        #: Block-execution counters keyed (method, bid), persisting across
        #: invocations: streaming memory behaviours advance through their
        #: spans as a real workload would process its input progressively.
        self.block_iterations: Dict[tuple, int] = {}
        #: Persistent decider state keyed (method, bid) for deciders with
        #: ``persistent = True``.
        self.persistent_decider_states: Dict[tuple, object] = {}

    def frame_base_for_depth(self, depth: int) -> int:
        return self.stack_base - depth * FRAME_BYTES

    def push(self, method: Method) -> Activation:
        activation = Activation(
            method, self.frame_base_for_depth(len(self.stack))
        )
        self.stack.append(activation)
        return activation

    def pop(self) -> Activation:
        return self.stack.pop()

    @property
    def current(self) -> Optional[Activation]:
        return self.stack[-1] if self.stack else None

    @property
    def depth(self) -> int:
        return len(self.stack)

    def __repr__(self) -> str:
        top = self.current.method.name if self.stack else "<empty>"
        return (
            f"ThreadContext(t{self.thread_id}, depth={self.depth}, top={top})"
        )
