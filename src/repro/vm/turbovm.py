"""Turbo simulation kernel: opt-in, tolerance-equivalent, vectorized.

:class:`TurboVirtualMachine` extends the fast kernel with a *batched* path
for the dominant execution shape in the synthetic workloads: a self-loop
"mid" block (``CondBranch`` back to itself under a non-persistent
:class:`~repro.isa.program.LoopDecider`) whose callees are straight-line
leaf methods.  When the loop has ``B`` guaranteed-taken iterations left,
the kernel simulates all of them in one step:

* cache-line addresses come from per-plan *draw tables*: whole blocks of
  column values (:meth:`MemoryBehavior.turbo_columns`) are pre-drawn from
  a per-thread ``numpy.random.Generator`` and consumed slice-by-slice —
  same marginal distributions as the scalar generators, different draw
  sequence;
* the L1D is simulated set-wise (:func:`turbo_cache_batch`): sets whose
  batch lines are all resident can only hit and are finalized wholesale;
  accesses to any other set are replayed scalar in stream order through
  the real dict machinery, so miss counts, evictions and writebacks are
  exact given the addresses;
* branch predictor, cycles, energy, method profiles, hotspot bookkeeping
  and policy hooks are applied in closed form
  (:meth:`AdaptationHooks.on_blocks_bulk`).

This drops the fast kernel's bit-identity contract.  What may deviate and
what must not is specified in docs/INTERNALS.md §17 and enforced by
``tests/stat_equivalence.py``: continuous metrics (energy, EDP, miss
rates, cycles) within the committed tolerance spec, discrete tuning
outcomes (chosen configurations, pin decisions, phase transitions,
hotspot sets) exactly equal to the fast kernel's.  Multi-threaded or
GC-enabled runs take the inherited ``_run_quantum`` path and remain
bit-identical to fast.

The kernel is strictly opt-in (``sim_kernel="turbo"``): it is never a
default, is refused by golden-trace tests, and fingerprints under its own
version so store entries never collide with fast/reference results.
"""

from __future__ import annotations

import numpy as np  # this module is imported lazily; the driver gates it

from repro.isa.program import LoopDecider
from repro.obs.events import HOTSPOT_INVOKE
from repro.vm.activation import FRAME_BYTES
from repro.vm.fastvm import FastVirtualMachine, _counts_hook
from repro.vm.hotspot import MethodProfile
from repro.vm.jit import (
    PSTATE_UNSET,
    TERM_COND,
    TERM_GOTO,
    TERM_RETURN,
)
from repro.trace.events import BlockEvent
from repro.vm.vm import AdaptationHooks, _EMPTY, _SENTINEL
from repro.workloads.patterns import WORD

#: Smallest batch worth the fixed batching costs; shorter loops run scalar.
MIN_BATCH = 6

#: Rows per draw table (= max loop iterations per batch).  Tables are
#: rebuilt when exhausted, so the value only trades memory for rebuild
#: frequency.
TABLE_ROWS = 2048

_EMPTY_SET = frozenset()


class TurboPlan:
    """Static description of one batchable self-loop unit.

    Compiled once per decoded mid block; ``False`` is cached for blocks
    that fail the structural checks (wrong terminator shape, persistent
    or non-Loop decider, callees with branches/calls/iteration counters,
    or a memory behaviour without :meth:`turbo_columns`).  The mutable
    tail of the slots caches the current draw table.
    """

    __slots__ = (
        # static shape
        "cols",
        "col_groups",
        "width",
        "store_row",
        "serial_row",
        "store_cols",
        "has_store",
        "nl_per_iter",
        "ns_per_iter",
        "unit_insns",
        "unit_blocks",
        "mid_insns",
        "mid_needs_iter",
        "branch_pc",
        "method_name",
        "hook_slots",
        "leaves",
        # draw-table cache
        "tbl",
        "store_tbl",
        "tbl_key",
        "tbl_it",
        "cursor",
        # per-row distinct-line bitmasks over the table's value universe
        "mask_vals",
        "row_masks",
        "store_row_masks",
    )


def turbo_cache_batch(cache, flat_lines, store_lines, store_row, serial_row,
                      batch):
    """Simulate a batched access stream against a dict-LRU cache.

    ``flat_lines`` is the stream-ordered list of cache-line numbers for
    ``batch`` loop iterations of ``len(store_row)`` references each;
    ``store_lines`` is the set of lines touched by at least one store;
    ``store_row`` / ``serial_row`` are the per-column store and
    dependence-serialised flags of one iteration.

    Sets whose distinct batch lines are all resident at entry can only
    hit: their accesses are counted wholesale and each touched line is
    refreshed to the young end of its set with its dirty bit OR-ed with
    the batch's stores.  Accesses to any other set are replayed scalar in
    stream order through the real set dicts, so misses, evictions and
    writebacks are exact given the addresses.  Relative to a scalar
    replay of the same stream the only deviation is the *recency order*
    among hit-only lines within a set (contents, dirty bits, miss and
    writeback sequences are identical) — the deviation the statistical
    equivalence harness tolerates.

    Returns ``(read_misses, write_misses, miss_normal, wb_normal,
    miss_serial, wb_serial)`` where the line lists are byte addresses in
    true stream order, split by the serialised flag of the slot that
    missed (the timing model charges different overlap factors per
    class).
    """
    sets = cache._sets
    set_mask = cache._set_mask
    uniq = set(flat_lines)
    bad = None
    for line in uniq:
        if line not in sets[line & set_mask]:
            if bad is None:
                bad = set()
            bad.add(line & set_mask)
    if bad is None:
        # Steady state: every touched set can only hit.  Refresh first
        # (keeping dirty bits), then OR the store lines in — assigning
        # to an existing key does not move it, so recency is identical
        # to folding the store probe into the refresh loop.
        for line in uniq:
            s = sets[line & set_mask]
            s[line] = s.pop(line)
        for line in store_lines:
            sets[line & set_mask][line] = True
        return 0, 0, _EMPTY, _EMPTY, _EMPTY, _EMPTY
    assoc = cache.associativity
    shift = cache._line_shift
    flat_store = store_row * batch
    flat_serial = serial_row * batch
    missing = _SENTINEL
    r_m = 0
    w_m = 0
    miss_normal = []
    wb_normal = []
    miss_serial = []
    wb_serial = []
    for i, line in enumerate(flat_lines):
        si = line & set_mask
        if si not in bad:
            continue
        is_store = flat_store[i]
        s = sets[si]
        prev = s.pop(line, missing)
        if prev is not missing:
            s[line] = True if is_store else prev
        else:
            if is_store:
                w_m += 1
            else:
                r_m += 1
            if flat_serial[i]:
                miss_serial.append(line << shift)
                wb_target = wb_serial
            else:
                miss_normal.append(line << shift)
                wb_target = wb_normal
            if len(s) >= assoc:
                victim = next(iter(s))
                if s.pop(victim):
                    wb_target.append(victim << shift)
            s[line] = is_store
    for line in uniq:
        si = line & set_mask
        if si in bad:
            continue
        s = sets[si]
        s[line] = s.pop(line) or (line in store_lines)
    return r_m, w_m, miss_normal, wb_normal, miss_serial, wb_serial


class TurboVirtualMachine(FastVirtualMachine):
    """Opt-in vectorized kernel; see the module docstring for contract."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: id(DecodedBlock) -> TurboPlan | False (False = not batchable).
        self._turbo_plans = {}
        #: Per-thread numpy generators for batched address draws; seeded
        #: from the run seed so turbo runs replay deterministically.
        self._np_rngs = {}

    def _np_rng(self, thread_id):
        rng = self._np_rngs.get(thread_id)
        if rng is None:
            rng = np.random.default_rng(
                (0x7472626F, self.config.seed, thread_id)
            )
            self._np_rngs[thread_id] = rng
        return rng

    # -- plan compilation ---------------------------------------------------

    def _compile_turbo_plan(self, dec):
        """Build a TurboPlan for a self-loop mid block, or None."""
        if dec.term_kind != TERM_COND or dec.taken_target != dec.bid:
            return None
        decider = dec.decider
        if (
            decider is None
            or dec.persistent
            or type(decider) is not LoopDecider
            or dec.branch_pc is None
        ):
            return None
        cols = []
        store_row = []
        serial_row = []

        def add_block(block, is_mid):
            if block.memory is None or not (block.n_loads or block.n_stores):
                return True
            specs = block.memory.turbo_columns(block.n_loads, block.n_stores)
            if specs is None:
                return False
            if len(specs) != block.n_loads + block.n_stores:
                return False
            for k, spec in enumerate(specs):
                kind = spec[0]
                base_kind = spec[1]
                off = spec[2]
                if kind not in ("unif", "mix", "wind", "det"):
                    return False
                if kind in ("wind", "det") and not dec.needs_iter:
                    # Iteration-indexed columns need the mid's counter.
                    return False
                if base_kind == "frame":
                    fsel = 1 if is_mid else 2
                    base = off
                else:
                    fsel = 0
                    base = block.region_base + off
                cols.append((kind, fsel, base) + spec[3:])
                store_row.append(k >= block.n_loads)
                serial_row.append(bool(block.serialized))
            return True

        hook_slots = [(dec.block_pc, dec.n_insns)]
        if not add_block(dec, True):
            return None
        nl_per_iter = dec.n_loads
        ns_per_iter = dec.n_stores
        unit_insns = dec.n_insns
        unit_blocks = 1
        leaves = []
        tables = self._decoder.tables
        get_table = self._decoder.table
        for method in dec.callees:
            table = tables.get(method.name)
            if table is None:
                table = get_table(method)
            chain = []
            bid = method.entry
            seen = set()
            insns = 0
            while True:
                if bid in seen:
                    return None
                seen.add(bid)
                block = table[bid]
                if (
                    block.n_calls
                    or block.decider is not None
                    or block.needs_iter
                ):
                    return None
                chain.append(block)
                insns += block.n_insns
                kind = block.term_kind
                if kind == TERM_RETURN:
                    break
                if kind != TERM_GOTO:
                    return None
                bid = block.goto_target
            for block in chain:
                hook_slots.append((block.block_pc, block.n_insns))
                if not add_block(block, False):
                    return None
                nl_per_iter += block.n_loads
                ns_per_iter += block.n_stores
            unit_insns += insns
            unit_blocks += len(chain)
            leaves.append(
                (method, method.name, insns, "hotspot:" + method.name)
            )
        plan = TurboPlan()
        plan.cols = tuple(cols)
        # Identical column specs (common: a behaviour's N references per
        # iteration) share one wide generator draw per table rebuild.
        groups = {}
        for j, col in enumerate(cols):
            groups.setdefault(col, []).append(j)
        plan.col_groups = tuple(
            (spec, np.array(idx, dtype=np.intp))
            for spec, idx in groups.items()
        )
        plan.width = len(cols)
        plan.store_row = tuple(store_row)
        plan.serial_row = tuple(serial_row)
        store_cols = [j for j, st in enumerate(store_row) if st]
        plan.store_cols = np.array(store_cols, dtype=np.intp)
        plan.has_store = bool(store_cols)
        plan.nl_per_iter = nl_per_iter
        plan.ns_per_iter = ns_per_iter
        plan.unit_insns = unit_insns
        plan.unit_blocks = unit_blocks
        plan.mid_insns = dec.n_insns
        plan.mid_needs_iter = dec.needs_iter
        plan.branch_pc = dec.branch_pc
        plan.method_name = dec.method_name
        plan.hook_slots = tuple(hook_slots)
        plan.leaves = tuple(leaves)
        plan.tbl = None
        plan.store_tbl = None
        plan.tbl_key = None
        plan.tbl_it = 0
        plan.cursor = 0
        plan.mask_vals = None
        plan.row_masks = None
        plan.store_row_masks = None
        return plan

    def _turbo_leaves_ready(self, plan):
        """Runtime gate: every callee must be in steady state.

        Compiled, hot, L1I-resident, and unmanaged (no entry/exit stubs)
        — then a leaf invocation reduces to the closed-form bookkeeping
        the batch applies.  Anything else (still warming up, or a policy
        managing the leaf) falls back to scalar execution.
        """
        levels = self._levels
        profiles = self._profiles
        resident = self.machine.hierarchy.l1i._resident
        entry_stubs = self._entry_stubs
        exit_stubs = self._exit_stubs
        for _method, name, _insns, _track in plan.leaves:
            profile = profiles.get(name)
            if profile is None or not profile.is_hot:
                return False
            if name not in levels or name not in resident:
                return False
            if (
                entry_stubs.get(name) is not None
                or exit_stubs.get(name) is not None
            ):
                return False
        return True

    # -- draw tables --------------------------------------------------------

    def _build_table(self, plan, nprng, mid_fb, leaf_fb, line_shift, it_base):
        """(Re)draw a plan's table of cache-line numbers.

        One column per memory reference of the loop unit, one row per
        iteration; iteration-indexed columns ("wind"/"det") are aligned
        so row ``i`` corresponds to mid iteration ``it_base + i``.  The
        table is keyed on the frame bases and the L1D line shift, so a
        cache reconfiguration or a different activation depth forces a
        redraw.
        """
        tbl = np.empty((TABLE_ROWS, plan.width), dtype=np.int64)
        it_vec = None
        for spec, idx in plan.col_groups:
            kind = spec[0]
            fsel = spec[1]
            base = spec[2]
            if fsel == 1:
                base += mid_fb
            elif fsel == 2:
                base += leaf_fb
            k = len(idx)
            if kind == "unif":
                tbl[:, idx] = base + nprng.integers(
                    0, spec[3], size=(TABLE_ROWS, k), dtype=np.int64
                ) * WORD
            elif kind == "mix":
                hot = nprng.integers(
                    0, spec[4], size=(TABLE_ROWS, k), dtype=np.int64
                )
                full = nprng.integers(
                    0, spec[5], size=(TABLE_ROWS, k), dtype=np.int64
                )
                choice = nprng.random((TABLE_ROWS, k)) < spec[3]
                tbl[:, idx] = base + np.where(choice, hot, full) * WORD
            else:
                if it_vec is None:
                    it_vec = np.arange(
                        it_base, it_base + TABLE_ROWS, dtype=np.int64
                    )
                if kind == "wind":
                    r = nprng.integers(
                        0, spec[3], size=(TABLE_ROWS, k), dtype=np.int64
                    ) * WORD
                    span = spec[5]
                    pos = (it_vec * spec[4]) % span
                    tbl[:, idx] = base + (pos[:, None] + r) % span
                else:  # det
                    vals = base + (it_vec * spec[3] + spec[4]) % spec[5]
                    tbl[:, idx] = vals[:, None]
        tbl >>= line_shift
        plan.tbl = tbl
        plan.store_tbl = tbl[:, plan.store_cols] if plan.has_store else None
        plan.tbl_key = (mid_fb, leaf_fb, line_shift)
        plan.tbl_it = it_base
        plan.cursor = 0
        # Per-row bitmasks over the table's distinct lines.  The loops
        # draw from small line spaces, so a whole table typically holds
        # only a few dozen distinct lines; with <= 64 a single uint64
        # lane per row lets a batch recover its *distinct* line set by
        # OR-ing its rows — without materialising the (much longer)
        # flat stream — which is all the steady-state all-hit cache
        # path needs.  Wider universes just fall back to that stream.
        # Find the table's distinct lines group-by-group with vectorized
        # range/bincount passes (bases differ wildly *across* groups, so
        # one global bincount range is unusable, but lines *within* a
        # group span a small window).
        mask_ok = True
        uniq_lines = set()
        group_info = []
        for _spec, idx in plan.col_groups:
            sub = tbl[:, idx]
            lo = int(sub.min())
            rng = int(sub.max()) - lo + 1
            if rng > 65536:
                mask_ok = False
                break
            offs = np.nonzero(np.bincount((sub - lo).reshape(-1)))[0]
            uniq_lines.update((offs + lo).tolist())
            if len(uniq_lines) > 64:
                mask_ok = False
                break
            group_info.append((idx, lo, rng, offs))
        if mask_ok:
            vals = sorted(uniq_lines)
            vals_arr = np.array(vals, dtype=np.int64)
            one = np.uint64(1)
            row_masks = np.zeros(TABLE_ROWS, dtype=np.uint64)
            store_row_masks = (
                np.zeros(TABLE_ROWS, dtype=np.uint64)
                if plan.has_store
                else None
            )
            store_col_set = frozenset(plan.store_cols)
            for idx, lo, rng, offs in group_info:
                lut = np.zeros(rng, dtype=np.uint64)
                lut[offs] = one << np.searchsorted(
                    vals_arr, offs + lo
                ).astype(np.uint64)
                gbits = lut[tbl[:, idx] - lo]
                row_masks |= np.bitwise_or.reduce(gbits, axis=1)
                if store_row_masks is not None:
                    sidx = [
                        p for p, col in enumerate(idx)
                        if col in store_col_set
                    ]
                    if sidx:
                        store_row_masks |= np.bitwise_or.reduce(
                            gbits[:, sidx], axis=1
                        )
            plan.mask_vals = vals
            plan.row_masks = row_masks
            plan.store_row_masks = store_row_masks
        else:
            plan.mask_vals = None
            plan.row_masks = None
            plan.store_row_masks = None

    # -- batched execution --------------------------------------------------

    def _execute_batch(
        self, thread, activation, dec, plan, batch, full, bulk_hook,
        in_hotspot
    ):
        """Run ``batch`` loop iterations in closed form.

        With ``full`` false the iterations are guaranteed-taken and the
        loop continues scalar afterwards; with ``full`` true the batch
        is the *entire* remaining activation of the loop — the last
        iteration's branch falls through, and the caller re-arms the
        decider and continues at the fallthrough block.  Caller has
        flushed ``machine.instructions``/``cycles`` and owns the
        loop-decider state update; everything else — cache, predictor,
        timing, energy, profiles, hotspot info, L1I, stats, hooks,
        sampler, telemetry — happens here.
        """
        machine = self.machine
        hierarchy = machine.hierarchy
        l1 = hierarchy.l1d
        l1_stats = l1.stats
        timing = machine.timing
        (
            cycles_per_insn,
            l2_hit_latency,
            memory_latency,
            mispredict_penalty,
            mlp,
        ) = timing.hot_constants()
        energy = machine.energy
        l1e = energy.l1d
        l2e = energy.l2
        start_insns = machine.instructions
        thread_id = thread.thread_id

        if plan.mid_needs_iter:
            mid_iter0 = dec.iter_count
            dec.iter_count = mid_iter0 + batch
        else:
            mid_iter0 = 0

        # ---- addresses from the draw table; L1D set-wise ----
        if plan.width:
            line_shift = l1._line_shift
            mid_fb = activation.frame_base
            leaf_fb = thread.stack_base - len(thread.stack) * FRAME_BYTES
            off = (
                mid_iter0 - plan.tbl_it
                if plan.mid_needs_iter
                else plan.cursor
            )
            if (
                plan.tbl is None
                or plan.tbl_key != (mid_fb, leaf_fb, line_shift)
                or off < 0
                or off + batch > TABLE_ROWS
            ):
                self._build_table(
                    plan,
                    self._np_rng(thread_id),
                    mid_fb,
                    leaf_fb,
                    line_shift,
                    mid_iter0,
                )
                off = 0
            end = off + batch
            if not plan.mid_needs_iter:
                plan.cursor = end
            # Steady-state fast path: recover the batch's distinct lines
            # from the per-row masks; if every one is resident the batch
            # can only hit and is finalized wholesale (same contents and
            # dirty bits as :func:`turbo_cache_batch`'s all-hit path,
            # recency order within the hit-only sets relaxed as per the
            # equivalence contract) without ever materialising the flat
            # stream.  Any non-resident line falls through to the exact
            # batched/scalar simulation.
            all_hit = False
            row_masks = plan.row_masks
            if row_masks is not None:
                sets = l1._sets
                l1_set_mask = l1._set_mask
                vals = plan.mask_vals
                mm = int(np.bitwise_or.reduce(row_masks[off:end]))
                lines = []
                all_hit = True
                while mm:
                    bit = mm & -mm
                    line = vals[bit.bit_length() - 1]
                    if line not in sets[line & l1_set_mask]:
                        all_hit = False
                        break
                    lines.append(line)
                    mm ^= bit
                if all_hit:
                    for line in lines:
                        s = sets[line & l1_set_mask]
                        s[line] = s.pop(line)
                    if plan.has_store:
                        sm = int(
                            np.bitwise_or.reduce(
                                plan.store_row_masks[off:end]
                            )
                        )
                        while sm:
                            bit = sm & -sm
                            line = vals[bit.bit_length() - 1]
                            sets[line & l1_set_mask][line] = True
                            sm ^= bit
                    r_m = w_m = 0
                    miss_normal = wb_normal = _EMPTY
                    miss_serial = wb_serial = _EMPTY
            if not all_hit:
                flat_lines = plan.tbl[off:end].reshape(-1).tolist()
                if plan.has_store:
                    store_lines = set(
                        plan.store_tbl[off:end].reshape(-1).tolist()
                    )
                else:
                    store_lines = _EMPTY_SET
                (
                    r_m, w_m, miss_normal, wb_normal, miss_serial, wb_serial
                ) = turbo_cache_batch(
                    l1,
                    flat_lines,
                    store_lines,
                    plan.store_row,
                    plan.serial_row,
                    batch,
                )
        else:
            r_m = w_m = 0
            miss_normal = wb_normal = miss_serial = wb_serial = _EMPTY

        nl_total = batch * plan.nl_per_iter
        ns_total = batch * plan.ns_per_iter
        l1_misses = r_m + w_m
        l1_stats.read_accesses += nl_total
        l1_stats.write_accesses += ns_total
        if l1_misses:
            l1_stats.read_misses += r_m
            l1_stats.write_misses += w_m
            l1_stats.fills += l1_misses
            n_wb = len(wb_normal) + len(wb_serial)
            if n_wb:
                l1_stats.writebacks += n_wb

        total_insns = batch * plan.unit_insns
        cycles = total_insns * cycles_per_insn / timing._ilp_factor
        if l1_misses:
            l2_access = hierarchy.l2.access_block
            memory_access_nj = energy.memory_access_nj
            for miss_lines, wb_lines, overlap in (
                (miss_normal, wb_normal, mlp),
                (miss_serial, wb_serial, 1.0),
            ):
                if not miss_lines:
                    continue
                (l2_rh, l2_rm, l2_wh, l2_wm, _l2_miss, l2_wb) = l2_access(
                    miss_lines, wb_lines or _EMPTY
                )
                l2_misses = l2_rm + l2_wm
                hierarchy.memory_reads += l2_misses
                hierarchy.memory_writes += len(l2_wb)
                l2e.dynamic_nj += (
                    (l2_rh + l2_rm) * l2e._read_nj
                    + (l2_wh + l2_wm + l2_misses) * l2e._write_nj
                )
                energy.memory_nj += (
                    (l2_misses + len(l2_wb)) * memory_access_nj
                )
                cycles += len(miss_lines) * (l2_hit_latency / overlap)
                cycles += l2_misses * (memory_latency / overlap)

        # ---- branch predictor, closed form ----
        # ``batch - 1`` taken iterations then one not-taken when full;
        # all taken when partial (the 2-bit counter saturates upward,
        # mispredicting only while below the taken threshold).
        predictor = machine.predictor
        pred_table = predictor._table
        index = (plan.branch_pc >> 2) & predictor._mask
        counter = pred_table[index]
        takens = batch - 1 if full else batch
        mispredicts = 2 - counter
        if mispredicts < 0:
            mispredicts = 0
        elif mispredicts > takens:
            mispredicts = takens
        counter += takens
        if counter > 3:
            counter = 3
        if full:
            if counter >= 2:
                mispredicts += 1
            if counter > 0:
                counter -= 1
        pred_table[index] = counter
        predictor.lookups += batch
        if mispredicts:
            predictor.mispredictions += mispredicts
            cycles += mispredicts * mispredict_penalty

        # ---- energy + machine counters ----
        l1e.dynamic_nj += (
            nl_total * l1e._read_nj + (ns_total + l1_misses) * l1e._write_nj
        )
        l1e.leakage_nj += cycles * l1e._leak_nj
        l2e.leakage_nj += cycles * l2e._leak_nj
        for component in energy.pipeline.values():
            component.energy_nj += cycles * component._nj
        machine.instructions = start_insns + total_insns
        machine.cycles += cycles

        # ---- VM bookkeeping ----
        stats = self.stats
        stats.blocks_executed += batch * plan.unit_blocks
        stats.thread_instructions[thread_id] += total_insns
        if in_hotspot:
            stats.instructions_in_hotspots += total_insns
        else:
            # Leaf blocks always execute at hotspot depth >= 1 (the gate
            # requires hot leaves); only the mid body depends on the
            # surrounding depth.
            stats.instructions_in_hotspots += batch * (
                plan.unit_insns - plan.mid_insns
            )

        # ---- leaf invocations/returns, closed form ----
        leaves = plan.leaves
        if leaves:
            profiles = self._profiles
            hotspots = self._hotspots
            decay = (1.0 - MethodProfile.ALPHA) ** batch
            for _method, name, insns, _track in leaves:
                profile = profiles[name]
                profile.invocations += batch
                profile.completed_invocations += batch
                x = float(insns)
                mean = profile.mean_size
                if mean != x:
                    profile.mean_size = x + (mean - x) * decay
                info = hotspots[name]
                info.invocations_since_hot += batch
                info.instructions_inside += batch * insns
            l1i = hierarchy.l1i
            l1i.method_switches += batch * len(leaves)
            resident = l1i._resident
            for _method, name, _insns, _track in leaves:
                resident[name] = resident.pop(name)
            telemetry = self.telemetry
            if telemetry.enabled:
                emit = telemetry.emit
                unit = plan.unit_insns
                mid_insns = plan.mid_insns
                for i in range(batch):
                    ts = start_insns + i * unit + mid_insns
                    for _method, name, insns, track in leaves:
                        if insns > 0:
                            emit(
                                HOTSPOT_INVOKE,
                                ts=ts,
                                track=track,
                                dur=insns,
                            )
                        ts += insns

        # ---- policy hook + sampler ----
        if bulk_hook is not None:
            bulk_hook(
                tuple(
                    (pc, n_insns, batch)
                    for pc, n_insns in plan.hook_slots
                ),
                total_insns,
                thread_id,
                machine,
            )
        sampler = self.sampler
        now_cycles = machine.cycles
        if now_cycles >= sampler._next_sample_at:
            sampler.advance(now_cycles, plan.method_name)

    # -- fused runner with the batch fast path ------------------------------

    def _run_fused(self, thread, max_instructions) -> None:
        """Fast kernel's fused runner plus the turbo batch trigger.

        Identical to :meth:`FastVirtualMachine._run_fused` except that the
        top of the tight loop checks whether the current block is a
        batchable self-loop with enough guaranteed-taken iterations left
        (and the policy supports bulk delivery), in which case the batch
        executes in closed form and the loop falls through to a scalar
        iteration.  Scalar execution — including every RNG draw from the
        thread's Mersenne stream — is byte-for-byte the fast kernel's.
        """
        machine = self.machine
        hierarchy = machine.hierarchy
        l1 = hierarchy.l1d
        l1_stats = l1.stats
        l2_access = hierarchy.l2.access_block
        predictor = machine.predictor
        pred_table = predictor._table
        pred_mask = predictor._mask
        timing = machine.timing
        (
            cycles_per_insn,
            l2_hit_latency,
            memory_latency,
            mispredict_penalty,
            mlp,
        ) = timing.hot_constants()
        energy = machine.energy
        l1e = energy.l1d
        l2e = energy.l2
        memory_access_nj = energy.memory_access_nj
        pipeline = tuple(energy.pipeline.values())
        policy = self.policy
        if (
            type(policy).on_block is AdaptationHooks.on_block
            and "on_block" not in policy.__dict__
        ):
            on_block = None
            counts_only = True
        else:
            on_block = policy.on_block
            counts_only = (
                not policy.on_block_reads_addresses
                and "on_block" not in policy.__dict__
            )
        counts_hook = _counts_hook(policy, on_block, counts_only)
        # Batch gating: with no hook at all, batch freely; with a narrow
        # counts hook, batch only if the policy opts into bulk delivery;
        # an on_block (event) hook observes per-block seams, so no
        # batching at all.
        bulk_hook = None
        horizon_fn = None
        if counts_hook is not None:
            if (
                type(policy).on_blocks_bulk
                is not AdaptationHooks.on_blocks_bulk
                or "on_blocks_bulk" in policy.__dict__
            ):
                bulk_hook = policy.on_blocks_bulk
                batching = True
            else:
                batching = False
        elif on_block is not None:
            batching = False
        else:
            batching = True
        if batching and (
            type(policy).bulk_horizon is not AdaptationHooks.bulk_horizon
            or "bulk_horizon" in policy.__dict__
        ):
            horizon_fn = policy.bulk_horizon
        # Measurement-driven deoptimisation: a policy that decides
        # discrete outcomes from measured windows asserts
        # bulk_pause_depth for the whole run (see AdaptationHooks).  It
        # is sampled here, once per scheduling quantum, so the tight
        # loop below pays nothing for it; both shipped policies set it
        # in __init__ and never change it mid-run.
        if batching and policy.bulk_pause_depth != 0:
            batching = False
        sampler = self.sampler
        sampler_advance = sampler.advance
        next_sample_at = sampler._next_sample_at
        stats = self.stats
        thread_insns = stats.thread_instructions
        thread_id = thread.thread_id
        rng = thread.rng
        drng = thread.decider_rng
        stack = thread.stack
        tables = self._decoder.tables
        get_table = self._decoder.table
        turbo_plans = self._turbo_plans
        plans_get = turbo_plans.get
        min_batch = MIN_BATCH
        table_rows = TABLE_ROWS
        missing = _SENTINEL
        unset = PSTATE_UNSET
        cur_name = None
        cur_table = None

        while True:
            if machine.instructions >= max_instructions:
                return
            activation = stack[-1]
            method = activation.method
            name = method.name
            if name is not cur_name:
                cur_table = tables.get(name)
                if cur_table is None:
                    cur_table = get_table(method)
                cur_name = name
            dec = cur_table[activation.bid]
            phase = activation.phase

            if phase:
                if phase <= dec.n_calls:
                    activation.phase = phase + 1
                    self._invoke(thread, dec.callees[phase - 1])
                    continue
                kind = dec.term_kind
                if kind == TERM_RETURN:
                    self._return(thread)
                    if not stack:
                        thread.finished = True
                        return
                    continue
                if kind == TERM_GOTO:
                    activation.bid = dec.goto_target
                else:
                    taken = activation.loop_states.pop("__pending__")
                    activation.bid = (
                        dec.taken_target if taken else dec.fallthrough_target
                    )
                activation.phase = 0
                continue

            frame_base = activation.frame_base
            loop_states = activation.loop_states
            in_hotspot = thread.hotspot_depth
            now_insns = machine.instructions
            now_cycles = machine.cycles

            while True:
                # ---- turbo batch trigger (self-loop blocks only) ----
                if batching and dec.taken_target == dec.bid:
                    dec_id = id(dec)
                    plan = plans_get(dec_id)
                    if plan is None:
                        plan = self._compile_turbo_plan(dec) or False
                        turbo_plans[dec_id] = plan
                    if plan is not False:
                        state = loop_states.get(dec.bid, missing)
                        if state is missing:
                            # Pre-arm: draw the trip count now instead
                            # of at the end of the first body.  Within
                            # the turbo run this is behaviour-preserving
                            # (the scalar decider path finds the armed
                            # state); only the Mersenne draw *position*
                            # moves, which turbo's contract allows.
                            state = dec.decider.initial_state(drng)
                            loop_states[dec.bid] = state
                        if type(state) is int and state >= min_batch:
                            unit = plan.unit_insns
                            cap = (
                                max_instructions - now_insns - 1
                            ) // unit
                            nbatch = state if state < cap else cap
                            if nbatch > table_rows:
                                nbatch = table_rows
                            if (
                                horizon_fn is not None
                                and nbatch >= min_batch
                            ):
                                hcap = horizon_fn() // unit
                                if hcap < nbatch:
                                    nbatch = hcap
                            if (
                                nbatch >= min_batch
                                and self._turbo_leaves_ready(plan)
                            ):
                                full = nbatch == state
                                machine.instructions = now_insns
                                machine.cycles = now_cycles
                                self._execute_batch(
                                    thread,
                                    activation,
                                    dec,
                                    plan,
                                    nbatch,
                                    full,
                                    bulk_hook,
                                    in_hotspot,
                                )
                                now_insns = machine.instructions
                                now_cycles = machine.cycles
                                next_sample_at = sampler._next_sample_at
                                if full:
                                    # The whole activation ran: re-arm
                                    # the decider (the not-taken decide
                                    # consumes its Mersenne draw here)
                                    # and continue at the fallthrough
                                    # block.  The batch cap guarantees
                                    # the budget is not yet exhausted.
                                    _t, new_state = dec.decider.decide(
                                        1, drng
                                    )
                                    loop_states[dec.bid] = new_state
                                    dec = dec.fallthrough_dec
                                    continue
                                loop_states[dec.bid] = state - nbatch
                                # Partial batch: the next iteration runs
                                # scalar off the Mersenne stream (and
                                # re-checks the trigger when it loops
                                # back).

                # ---- block body (identical to FastVirtualMachine) ----
                fused = dec.fused_gen if counts_only else None
                if fused is not None:
                    if dec.needs_iter:
                        iteration = dec.iter_count
                        dec.iter_count = iteration + 1
                    else:
                        iteration = 0
                    r_m, w_m, miss_lines, wb_lines = fused(
                        rng, frame_base, dec.region_base, iteration,
                        l1, missing,
                    )
                    nl = dec.n_loads
                    ns = dec.n_stores
                    loads = stores = _EMPTY
                else:
                    fgen = dec.fast_gen
                    if fgen is not None:
                        if dec.needs_iter:
                            iteration = dec.iter_count
                            dec.iter_count = iteration + 1
                        else:
                            iteration = 0
                        loads, stores = fgen(
                            rng, frame_base, dec.region_base, iteration
                        )
                    else:
                        loads = stores = _EMPTY

                    line_shift = l1._line_shift
                    set_mask = l1._set_mask
                    sets = l1._sets
                    assoc = l1.associativity
                    miss_lines = []
                    wb_lines = []
                    r_h = 0
                    r_m = 0
                    for addr in loads:
                        line = addr >> line_shift
                        s = sets[line & set_mask]
                        prev = s.pop(line, missing)
                        if prev is not missing:
                            s[line] = prev
                            r_h += 1
                        else:
                            r_m += 1
                            miss_lines.append(line << line_shift)
                            if len(s) >= assoc:
                                victim = next(iter(s))
                                if s.pop(victim):
                                    wb_lines.append(victim << line_shift)
                            s[line] = False
                    w_h = 0
                    w_m = 0
                    for addr in stores:
                        line = addr >> line_shift
                        s = sets[line & set_mask]
                        if s.pop(line, missing) is not missing:
                            s[line] = True
                            w_h += 1
                        else:
                            w_m += 1
                            miss_lines.append(line << line_shift)
                            if len(s) >= assoc:
                                victim = next(iter(s))
                                if s.pop(victim):
                                    wb_lines.append(victim << line_shift)
                            s[line] = True
                    nl = r_h + r_m
                    ns = w_h + w_m

                decider = dec.decider
                if decider is not None:
                    if dec.persistent:
                        state = dec.pstate
                        if state is unset:
                            state = decider.initial_state(drng)
                        taken, dec.pstate = decider.decide(state, drng)
                    else:
                        state = loop_states.get(dec.bid, missing)
                        if state is missing:
                            state = decider.initial_state(drng)
                        taken, new_state = decider.decide(state, drng)
                        loop_states[dec.bid] = new_state
                    branch_pc = dec.branch_pc
                else:
                    taken = True
                    branch_pc = None

                l1_misses = r_m + w_m
                l1_stats.read_accesses += nl
                l1_stats.write_accesses += ns
                if l1_misses:
                    l1_stats.read_misses += r_m
                    l1_stats.write_misses += w_m
                    l1_stats.fills += l1_misses
                    if wb_lines:
                        l1_stats.writebacks += len(wb_lines)
                    (l2_rh, l2_rm, l2_wh, l2_wm, _l2_miss, l2_wb) = (
                        l2_access(miss_lines, wb_lines or _EMPTY)
                    )
                    l2_misses = l2_rm + l2_wm
                    hierarchy.memory_reads += l2_misses
                    hierarchy.memory_writes += len(l2_wb)
                    have_l2 = True
                else:
                    l2_misses = 0
                    have_l2 = False

                mispredicts = 0
                if branch_pc is not None:
                    index = (branch_pc >> 2) & pred_mask
                    counter = pred_table[index]
                    if taken:
                        if counter < 3:
                            pred_table[index] = counter + 1
                    elif counter > 0:
                        pred_table[index] = counter - 1
                    predictor.lookups += 1
                    if (counter >= 2) != taken:
                        predictor.mispredictions += 1
                        mispredicts = 1

                n_insns = dec.n_insns
                cycles = n_insns * cycles_per_insn / timing._ilp_factor
                if l1_misses or l2_misses:
                    overlap = 1.0 if dec.serialized else mlp
                    cycles += l1_misses * (l2_hit_latency / overlap)
                    cycles += l2_misses * (memory_latency / overlap)
                if mispredicts:
                    cycles += mispredicts * mispredict_penalty

                l1e.dynamic_nj += (
                    nl * l1e._read_nj + (ns + l1_misses) * l1e._write_nj
                )
                if have_l2:
                    l2e.dynamic_nj += (
                        (l2_rh + l2_rm) * l2e._read_nj
                        + (l2_wh + l2_wm + l2_misses) * l2e._write_nj
                    )
                    energy.memory_nj += (
                        (l2_misses + len(l2_wb)) * memory_access_nj
                    )
                l1e.leakage_nj += cycles * l1e._leak_nj
                l2e.leakage_nj += cycles * l2e._leak_nj
                for component in pipeline:
                    component.energy_nj += cycles * component._nj
                now_insns += n_insns
                now_cycles += cycles

                stats.blocks_executed += 1
                thread_insns[thread_id] += n_insns
                if in_hotspot:
                    stats.instructions_in_hotspots += n_insns
                if counts_hook is not None:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    counts_hook(n_insns, dec.block_pc, thread_id, machine)
                    now_insns = machine.instructions
                    now_cycles = machine.cycles
                elif on_block is not None:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    on_block(
                        BlockEvent(
                            dec.method_name,
                            dec.bid,
                            n_insns,
                            loads,
                            stores,
                            branch_pc,
                            taken,
                            dec.serialized,
                            thread_id,
                            dec.block_pc,
                        ),
                        machine,
                    )
                    now_insns = machine.instructions
                    now_cycles = machine.cycles
                if now_cycles >= next_sample_at:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    sampler_advance(now_cycles, dec.method_name)
                    next_sample_at = sampler._next_sample_at
                    now_cycles = machine.cycles

                if dec.n_calls:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    activation.bid = dec.bid
                    if decider is not None:
                        loop_states["__pending__"] = taken
                    if now_insns >= max_instructions:
                        activation.phase = 1
                        return
                    activation.phase = 2
                    self._invoke(thread, dec.callees[0])
                    break
                if now_insns >= max_instructions:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    activation.bid = dec.bid
                    activation.phase = 1
                    if decider is not None:
                        loop_states["__pending__"] = taken
                    return
                kind = dec.term_kind
                if kind == TERM_COND:
                    dec = dec.taken_dec if taken else dec.fallthrough_dec
                elif kind == TERM_GOTO:
                    dec = dec.goto_dec
                else:  # TERM_RETURN
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    self._return(thread)
                    if not stack:
                        thread.finished = True
                        return
                    break
