"""Fast-path simulation kernel.

:class:`FastVirtualMachine` executes exactly the semantics of
:class:`repro.vm.vm.VirtualMachine` — same micro-step structure, same
event/callback order, same float operation order — but restructured for
speed:

* blocks are pre-decoded once into flat :class:`~repro.vm.jit.DecodedBlock`
  tables (no isinstance checks or ``getattr`` in the hot loop);
* the machine model's ``consume`` is inlined: cache levels are accessed
  through :meth:`~repro.uarch.cache.Cache.access_block` (flat tuples, no
  ``AccessResult``/``HierarchyTraffic`` allocation), the bimodal predictor
  and the timing/energy arithmetic are inlined with the reference
  expressions verbatim;
* ``BlockEvent`` objects are allocated only when the adaptation policy
  actually overrides ``on_block`` (the baseline scheme skips them);
* for single-threaded, GC-free runs the body and terminator micro-steps of
  call-less blocks are fused into one loop iteration (observably identical:
  with one thread the quantum only schedules, and the terminator step has
  no side effects besides activation bookkeeping).

Bit-identity with the reference kernel is not an aspiration but a tested
contract — ``tests/test_kernel_equivalence.py`` diffs the two kernels'
``RunResult`` bundles, telemetry timelines, and pinned configurations over
the benchmark × scheme × config grid.  When editing either kernel, keep
the float *operation order* identical: energy prices (``_read_nj`` …) and
``_ilp_factor`` are re-read every block because reconfigurations change
them mid-run; only true constants are hoisted out of the loop.
"""

from __future__ import annotations

from repro.obs.events import HOTSPOT_DETECTED, HOTSPOT_INVOKE
from repro.trace.events import BlockEvent
from repro.vm.activation import FRAME_BYTES, Activation
from repro.vm.hotspot import HotspotInfo, MethodProfile
from repro.vm.jit import (
    PSTATE_UNSET,
    TERM_COND,
    TERM_GOTO,
    TERM_RETURN,
    BlockDecoder,
)
from repro.vm.vm import AdaptationHooks, VirtualMachine, _EMPTY, _SENTINEL


def _counts_hook(policy, on_block, counts_only):
    """The bound narrow hook, or None when ``on_block`` must be used.

    A count-only policy that overrides ``on_block_counts`` gets its
    per-block callback without a BlockEvent allocation; anything else
    (no hook at all, address-reading hook, or no narrow override)
    returns None and the runner falls back to ``on_block``.
    """
    if on_block is None or not counts_only:
        return None
    if (
        type(policy).on_block_counts is AdaptationHooks.on_block_counts
        and "on_block_counts" not in policy.__dict__
    ):
        return None
    return policy.on_block_counts


class FastVirtualMachine(VirtualMachine):
    """Drop-in replacement for :class:`VirtualMachine`, ~3-5x faster."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._decoder = BlockDecoder(self.program)
        # Stable per-run containers, pre-bound to shave attribute chains
        # off the _invoke/_return hot paths.  All are mutated in place
        # and never reassigned by the reference implementation.
        self._levels = self.jit.levels
        self._entry_stubs = self.jit.entry_stubs
        self._exit_stubs = self.jit.exit_stubs
        self._profiles = self.database._profiles
        self._hotspots = self.database.hotspots

    def _invoke(self, thread, method) -> None:
        """Reference ``_invoke`` with its service chain inlined.

        The common case — method already baseline-compiled, not newly
        hot, code resident in the L1I, not a hotspot — runs without any
        sub-calls.  Rare branches replicate the reference verbatim
        (promotion mirrors ``HotspotDetector.on_invocation``; an L1I miss
        falls back to ``machine.on_method_entry``, whose hit path is only
        the LRU refresh performed inline here).
        """
        machine = self.machine
        name = method.name
        if name not in self._levels:
            self._charge_cycles(
                self.jit.ensure_baseline(method, machine.instructions)
            )
        profiles = self._profiles
        profile = profiles.get(name)
        if profile is None:
            profile = MethodProfile(name)
            profiles[name] = profile
        profile.invocations += 1
        hotspots = self._hotspots
        if profile.is_hot:
            hotspots[name].invocations_since_hot += 1
        elif (
            profile.invocations >= self.detector.hot_threshold
            and profile.completed_invocations > 0
        ):
            profile.is_hot = True
            profile.detected_at = machine.instructions
            profile.detected_at_invocation = profile.invocations
            newly_hot = HotspotInfo(profile, machine.instructions)
            newly_hot.invocations_since_hot = 1
            hotspots[name] = newly_hot
            self._charge_cycles(
                self.jit.optimize_hotspot(method, machine.instructions)
            )
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    HOTSPOT_DETECTED,
                    ts=machine.instructions,
                    track="vm",
                    method=name,
                    invocations=newly_hot.profile.invocations,
                    mean_size=newly_hot.mean_size,
                )
                telemetry.metrics.counter("vm.hotspots_detected").inc()
            self.policy.on_hotspot_detected(newly_hot, self)
        stack = thread.stack
        # Activation.__init__ unrolled (slot stores only; one call saved
        # per invocation adds up at this frequency).
        activation = Activation.__new__(Activation)
        activation.method = method
        activation.bid = method.entry
        activation.phase = 0
        activation.frame_base = (
            thread.stack_base - len(stack) * FRAME_BYTES
        )
        activation.loop_states = {}
        activation.entry_instructions = machine.instructions
        activation.entry_cycles = machine.cycles
        activation.is_hotspot = False
        activation.policy_token = None
        stack.append(activation)
        l1i = machine.hierarchy.l1i
        resident = l1i._resident
        if name in resident:
            l1i.method_switches += 1
            resident[name] = resident.pop(name)
        else:
            machine.on_method_entry(name, method.code_footprint)
        info = hotspots.get(name)
        if info is not None:
            activation.is_hotspot = True
            thread.hotspot_depth += 1
            stub = self._entry_stubs.get(name)
            if stub is not None:
                stub.fn(info, activation, self)

    def _return(self, thread) -> None:
        """Reference ``_return`` with the DO-database update inlined."""
        activation = thread.stack.pop()
        name = activation.method.name
        inclusive = (
            self.machine.instructions - activation.entry_instructions
        )
        profiles = self._profiles
        profile = profiles.get(name)
        if profile is None:
            profile = MethodProfile(name)
            profiles[name] = profile
        profile.completed_invocations += 1
        if profile.completed_invocations == 1:
            profile.mean_size = float(inclusive)
        else:
            profile.mean_size += profile.ALPHA * (
                inclusive - profile.mean_size
            )
        if not profile.is_hot:
            profile.pre_hot_instructions += inclusive
        if activation.is_hotspot:
            thread.hotspot_depth -= 1
            info = self._hotspots[name]
            info.instructions_inside += inclusive
            stub = self._exit_stubs.get(name)
            if stub is not None:
                stub.fn(info, activation, self)
            telemetry = self.telemetry
            if telemetry.enabled and inclusive > 0:
                telemetry.emit(
                    HOTSPOT_INVOKE,
                    ts=activation.entry_instructions,
                    track=f"hotspot:{name}",
                    dur=inclusive,
                )
        if self._gc_active and name == self.config.gc_method:
            self._gc_active -= 1

    def run(self, max_instructions: int) -> None:
        """Run until ``max_instructions`` retire or all threads finish."""
        if max_instructions <= 0:
            raise ValueError("max_instructions must be positive")
        machine = self.machine
        quantum = self.config.quantum_blocks
        threads = self.threads
        for thread in threads:
            self._invoke(thread, self.program.methods[thread.entry_method])
        gc_enabled = bool(
            self.config.gc_method
            and self.config.gc_period_instructions > 0
        )
        # The fused runner drops quantum slicing and micro-step phases for
        # straight-line code; that is only transparent when nothing can
        # observe the seams — a second thread's quantum or a GC check
        # could otherwise fall between two micro-steps.
        if len(threads) == 1 and not gc_enabled:
            thread = threads[0]
            if not thread.finished:
                self._run_fused(thread, max_instructions)
            self.policy.on_run_end(self)
            return
        while machine.instructions < max_instructions:
            alive = False
            for thread in threads:
                if thread.finished:
                    continue
                alive = True
                self._run_quantum(
                    thread, quantum, max_instructions, gc_enabled
                )
                if machine.instructions >= max_instructions:
                    break
            if not alive:
                break
        self.policy.on_run_end(self)

    def _run_quantum(
        self, thread, quantum, max_instructions, gc_enabled
    ) -> None:
        """Run one thread for up to ``quantum`` micro-steps."""
        machine = self.machine
        hierarchy = machine.hierarchy
        l1 = hierarchy.l1d
        l2 = hierarchy.l2
        l1_access = l1.access_block
        l1_stats = l1.stats
        l2_access = l2.access_block
        predictor = machine.predictor
        pred_table = predictor._table
        pred_mask = predictor._mask
        timing = machine.timing
        (
            cycles_per_insn,
            l2_hit_latency,
            memory_latency,
            mispredict_penalty,
            mlp,
        ) = timing.hot_constants()
        energy = machine.energy
        l1e = energy.l1d
        l2e = energy.l2
        memory_access_nj = energy.memory_access_nj
        pipeline = tuple(energy.pipeline.values())
        policy = self.policy
        # Skip BlockEvent allocation entirely for the do-nothing baseline
        # hook; an instance-attribute override still counts as a hook.
        if (
            type(policy).on_block is AdaptationHooks.on_block
            and "on_block" not in policy.__dict__
        ):
            on_block = None
            counts_only = True
        else:
            on_block = policy.on_block
            # A class-level hook declaring it never reads the event's
            # address lists keeps the fused path; it then sees a
            # BlockEvent with empty loads/stores.  Instance overrides
            # are conservative (addresses assumed read).
            counts_only = (
                not policy.on_block_reads_addresses
                and "on_block" not in policy.__dict__
            )
        counts_hook = _counts_hook(policy, on_block, counts_only)
        sampler = self.sampler
        sampler_advance = sampler.advance
        stats = self.stats
        thread_insns = stats.thread_instructions
        thread_id = thread.thread_id
        rng = thread.rng
        drng = thread.decider_rng
        block_iterations = thread.block_iterations
        persistent_states = thread.persistent_decider_states
        stack = thread.stack
        tables = self._decoder.tables
        get_table = self._decoder.table
        # Method names are interned attribute reads of the same str object,
        # so identity comparison caches the per-method decode table across
        # consecutive micro-steps inside one method.
        cur_name = None
        cur_table = None

        # Each loop turn consumes one micro-step; ``steps`` is the
        # quantum countdown.  With GC off nothing can be scheduled
        # between two consecutive micro-steps of the same thread, so
        # after a body the successor micro-steps of the *same*
        # activation (call launch, terminator, and the next body after
        # a goto/branch) are chained inline without re-deriving
        # ``stack[-1]``/method/decode-table — the budget and quantum
        # gates stay at every micro-step boundary, so the thread
        # interleave and all architectural state are unchanged.
        steps = quantum
        while steps > 0:
            if thread.finished or machine.instructions >= max_instructions:
                return
            if gc_enabled:
                self._maybe_gc(thread)
            activation = stack[-1]
            method = activation.method
            name = method.name
            if name is not cur_name:
                cur_table = tables.get(name)
                if cur_table is None:
                    cur_table = get_table(method)
                cur_name = name
            dec = cur_table[activation.bid]
            phase = activation.phase

            if phase == 0:
                while True:
                    # ---- block body (reference: _execute_body) ----
                    # Same fused fast path as _run_fused (see there for the
                    # ordering argument); iteration counters stay in the
                    # per-thread dict because the decode table is shared.
                    fused = dec.fused_gen if counts_only else None
                    if fused is not None:
                        if dec.needs_iter:
                            key = dec.key
                            iteration = block_iterations.get(key, 0)
                            block_iterations[key] = iteration + 1
                        else:
                            iteration = 0
                        r_m, w_m, miss_lines, wb_lines = fused(
                            rng,
                            activation.frame_base,
                            dec.region_base,
                            iteration,
                            l1,
                            _SENTINEL,
                        )
                        nl = dec.n_loads
                        ns = dec.n_stores
                        # Count-only hooks never read the address lists.
                        loads = stores = _EMPTY
                        # Stats epilogue access_block would have applied
                        # (fills == miss count; lists may be None when empty).
                        l1_stats.read_accesses += nl
                        l1_stats.read_misses += r_m
                        l1_stats.write_accesses += ns
                        l1_stats.write_misses += w_m
                        l1_stats.fills += r_m + w_m
                        if wb_lines:
                            l1_stats.writebacks += len(wb_lines)
                    else:
                        fgen = dec.fast_gen
                        if fgen is not None:
                            if dec.needs_iter:
                                key = dec.key
                                iteration = block_iterations.get(key, 0)
                                block_iterations[key] = iteration + 1
                            else:
                                iteration = 0
                            loads, stores = fgen(
                                rng,
                                activation.frame_base,
                                dec.region_base,
                                iteration,
                            )
                        else:
                            loads = stores = _EMPTY
                        # (reference: MachineModel.consume)
                        (r_h, r_m, w_h, w_m, miss_lines, wb_lines) = l1_access(
                            loads, stores
                        )
                        nl = r_h + r_m
                        ns = w_h + w_m

                    decider = dec.decider
                    if decider is not None:
                        if dec.persistent:
                            states = persistent_states
                            skey = dec.key
                        else:
                            states = activation.loop_states
                            skey = dec.bid
                        state = states.get(skey, _SENTINEL)
                        if state is _SENTINEL:
                            state = decider.initial_state(drng)
                        taken, new_state = decider.decide(state, drng)
                        states[skey] = new_state
                        branch_pc = dec.branch_pc
                    else:
                        taken = True
                        branch_pc = None
                    l1_misses = r_m + w_m
                    if miss_lines or wb_lines:
                        (l2_rh, l2_rm, l2_wh, l2_wm, _l2_miss, l2_wb) = (
                            l2_access(miss_lines or _EMPTY, wb_lines or _EMPTY)
                        )
                        l2_misses = l2_rm + l2_wm
                        hierarchy.memory_reads += l2_misses
                        hierarchy.memory_writes += len(l2_wb)
                        have_l2 = True
                    else:
                        l2_misses = 0
                        have_l2 = False

                    mispredicts = 0
                    if branch_pc is not None:
                        index = (branch_pc >> 2) & pred_mask
                        counter = pred_table[index]
                        if taken:
                            if counter < 3:
                                pred_table[index] = counter + 1
                        elif counter > 0:
                            pred_table[index] = counter - 1
                        predictor.lookups += 1
                        if (counter >= 2) != taken:
                            predictor.mispredictions += 1
                            mispredicts = 1

                    n_insns = dec.n_insns
                    cycles = n_insns * cycles_per_insn / timing._ilp_factor
                    if l1_misses or l2_misses:
                        overlap = 1.0 if dec.serialized else mlp
                        cycles += l1_misses * (l2_hit_latency / overlap)
                        cycles += l2_misses * (memory_latency / overlap)
                    if mispredicts:
                        cycles += mispredicts * mispredict_penalty

                    # Energy prices are re-read per block: resizes re-bind them.
                    l1e.dynamic_nj += (
                        nl * l1e._read_nj + (ns + l1_misses) * l1e._write_nj
                    )
                    if have_l2:
                        l2e.dynamic_nj += (
                            (l2_rh + l2_rm) * l2e._read_nj
                            + (l2_wh + l2_wm + l2_misses) * l2e._write_nj
                        )
                        energy.memory_nj += (
                            (l2_misses + len(l2_wb)) * memory_access_nj
                        )
                    l1e.leakage_nj += cycles * l1e._leak_nj
                    l2e.leakage_nj += cycles * l2e._leak_nj
                    for component in pipeline:
                        component.energy_nj += cycles * component._nj
                    machine.instructions += n_insns
                    machine.cycles += cycles

                    # ---- VM bookkeeping + hooks ----
                    stats.blocks_executed += 1
                    thread_insns[thread_id] += n_insns
                    if thread.hotspot_depth:
                        stats.instructions_in_hotspots += n_insns
                    if counts_hook is not None:
                        counts_hook(n_insns, dec.block_pc, thread_id, machine)
                    elif on_block is not None:
                        on_block(
                            BlockEvent(
                                dec.method_name,
                                dec.bid,
                                n_insns,
                                loads,
                                stores,
                                branch_pc,
                                taken,
                                dec.serialized,
                                thread_id,
                                dec.block_pc,
                            ),
                            machine,
                        )
                    # Cycles re-read after the hook: a reconfiguration inside
                    # on_block charges stall cycles the sampler must see.
                    now_cycles = machine.cycles
                    if now_cycles >= sampler._next_sample_at:
                        sampler_advance(now_cycles, dec.method_name)

                    activation.phase = 1
                    if decider is not None:
                        activation.loop_states["__pending__"] = taken
                    steps -= 1
                    if gc_enabled or steps == 0:
                        break
                    if machine.instructions >= max_instructions:
                        return
                    # ---- chained call launch / terminator ----
                    if dec.n_calls:
                        activation.phase = 2
                        self._invoke(thread, dec.callees[0])
                        steps -= 1
                        break
                    kind = dec.term_kind
                    if kind == TERM_RETURN:
                        self._return(thread)
                        steps -= 1
                        if not stack:
                            thread.finished = True
                            return
                        break
                    if kind == TERM_GOTO:
                        activation.bid = dec.goto_target
                    else:
                        taken = activation.loop_states.pop("__pending__")
                        activation.bid = (
                            dec.taken_target
                            if taken
                            else dec.fallthrough_target
                        )
                    activation.phase = 0
                    steps -= 1
                    if steps == 0:
                        return
                    if machine.instructions >= max_instructions:
                        return
                    dec = cur_table[activation.bid]
                    # back to the chained block's body
                continue

            # ---- call launches ----
            if phase <= dec.n_calls:
                activation.phase = phase + 1
                self._invoke(thread, dec.callees[phase - 1])
                steps -= 1
                continue

            # ---- terminator ----
            kind = dec.term_kind
            if kind == TERM_RETURN:
                self._return(thread)
                if not stack:
                    thread.finished = True
                steps -= 1
                continue
            if kind == TERM_GOTO:
                activation.bid = dec.goto_target
            else:
                taken = activation.loop_states.pop("__pending__")
                activation.bid = (
                    dec.taken_target if taken else dec.fallthrough_target
                )
            activation.phase = 0
            steps -= 1

    def _run_fused(self, thread, max_instructions) -> None:
        """Single-thread, GC-free runner: the whole budget in one call.

        With one thread and no GC, quantum boundaries and the body /
        call / terminator micro-step seams are unobservable — no other
        thread can be scheduled between them and ``_maybe_gc`` never
        fires — so straight-line code runs in a tight loop that chains
        pre-linked :class:`DecodedBlock` successors directly, keeps the
        per-block iteration counter and persistent decider state in
        decode-table slots, and inlines the L1D access loop.  The
        instruction-budget gate is preserved at every point the
        reference checks it: before each body, before each terminator
        (a body that exhausts the budget leaves its terminator
        unevaluated), and before each call launch.  On every exit the
        activation's ``bid``/``phase``/``__pending__`` state is written
        back exactly as the reference would have left it.
        """
        machine = self.machine
        hierarchy = machine.hierarchy
        l1 = hierarchy.l1d
        l1_stats = l1.stats
        l2_access = hierarchy.l2.access_block
        predictor = machine.predictor
        pred_table = predictor._table
        pred_mask = predictor._mask
        timing = machine.timing
        (
            cycles_per_insn,
            l2_hit_latency,
            memory_latency,
            mispredict_penalty,
            mlp,
        ) = timing.hot_constants()
        energy = machine.energy
        l1e = energy.l1d
        l2e = energy.l2
        memory_access_nj = energy.memory_access_nj
        pipeline = tuple(energy.pipeline.values())
        policy = self.policy
        if (
            type(policy).on_block is AdaptationHooks.on_block
            and "on_block" not in policy.__dict__
        ):
            on_block = None
            counts_only = True
        else:
            on_block = policy.on_block
            # See _run_quantum: count-only class hooks keep the fused
            # path and receive BlockEvents with empty address lists.
            counts_only = (
                not policy.on_block_reads_addresses
                and "on_block" not in policy.__dict__
            )
        counts_hook = _counts_hook(policy, on_block, counts_only)
        sampler = self.sampler
        sampler_advance = sampler.advance
        # Only sampler_advance itself moves the threshold, so it is kept
        # in a local and re-read after each advance.
        next_sample_at = sampler._next_sample_at
        stats = self.stats
        thread_insns = stats.thread_instructions
        thread_id = thread.thread_id
        rng = thread.rng
        drng = thread.decider_rng
        stack = thread.stack
        tables = self._decoder.tables
        get_table = self._decoder.table
        missing = _SENTINEL
        unset = PSTATE_UNSET
        cur_name = None
        cur_table = None

        while True:
            if machine.instructions >= max_instructions:
                return
            activation = stack[-1]
            method = activation.method
            name = method.name
            if name is not cur_name:
                cur_table = tables.get(name)
                if cur_table is None:
                    cur_table = get_table(method)
                cur_name = name
            dec = cur_table[activation.bid]
            phase = activation.phase

            if phase:
                # Resume a call block mid-sequence (after a callee
                # returned): launch the next call or run the terminator.
                if phase <= dec.n_calls:
                    activation.phase = phase + 1
                    self._invoke(thread, dec.callees[phase - 1])
                    continue
                kind = dec.term_kind
                if kind == TERM_RETURN:
                    self._return(thread)
                    if not stack:
                        thread.finished = True
                        return
                    continue
                if kind == TERM_GOTO:
                    activation.bid = dec.goto_target
                else:
                    taken = activation.loop_states.pop("__pending__")
                    activation.bid = (
                        dec.taken_target if taken else dec.fallthrough_target
                    )
                activation.phase = 0
                continue

            # Straight-line segment: same activation until a call or
            # return, so its locals are hoisted out of the tight loop.
            frame_base = activation.frame_base
            loop_states = activation.loop_states
            in_hotspot = thread.hotspot_depth
            # The instruction/cycle counters live in locals for the
            # segment and are written back ("flushed") at every exit
            # from the tight loop — before hook calls, sampler advances,
            # invokes/returns, and budget exits — so external readers
            # always observe exact values.  The accumulation *order* is
            # unchanged (same adds, same operands); only the attribute
            # stores are deferred.
            now_insns = machine.instructions
            now_cycles = machine.cycles

            while True:
                # ---- block body (reference: _execute_body) ----
                # When nothing reads the address lists (no on_block hook,
                # or a hook declaring itself count-only), the codegen'd
                # fused closure (blockjit) draws each address and updates
                # the L1D in one pass.  The decider runs *after* the
                # cache update in both branches: it only draws from the
                # RNG (after the body's draws) and never touches the
                # cache, so stream and state order match the reference
                # exactly.
                fused = dec.fused_gen if counts_only else None
                if fused is not None:
                    if dec.needs_iter:
                        iteration = dec.iter_count
                        dec.iter_count = iteration + 1
                    else:
                        iteration = 0
                    r_m, w_m, miss_lines, wb_lines = fused(
                        rng, frame_base, dec.region_base, iteration,
                        l1, missing,
                    )
                    # Hits are implied: every reference either hits or
                    # misses, so the per-block totals are static.
                    nl = dec.n_loads
                    ns = dec.n_stores
                    loads = stores = _EMPTY
                else:
                    fgen = dec.fast_gen
                    if fgen is not None:
                        if dec.needs_iter:
                            iteration = dec.iter_count
                            dec.iter_count = iteration + 1
                        else:
                            iteration = 0
                        loads, stores = fgen(
                            rng, frame_base, dec.region_base, iteration
                        )
                    else:
                        loads = stores = _EMPTY

                    # ---- L1D (reference: Cache.access_many) ----
                    line_shift = l1._line_shift
                    set_mask = l1._set_mask
                    sets = l1._sets
                    assoc = l1.associativity
                    miss_lines = []
                    wb_lines = []
                    r_h = 0
                    r_m = 0
                    for addr in loads:
                        line = addr >> line_shift
                        s = sets[line & set_mask]
                        prev = s.pop(line, missing)
                        if prev is not missing:
                            s[line] = prev
                            r_h += 1
                        else:
                            r_m += 1
                            miss_lines.append(line << line_shift)
                            if len(s) >= assoc:
                                victim = next(iter(s))
                                if s.pop(victim):
                                    wb_lines.append(victim << line_shift)
                            s[line] = False
                    w_h = 0
                    w_m = 0
                    for addr in stores:
                        line = addr >> line_shift
                        s = sets[line & set_mask]
                        if s.pop(line, missing) is not missing:
                            s[line] = True
                            w_h += 1
                        else:
                            w_m += 1
                            miss_lines.append(line << line_shift)
                            if len(s) >= assoc:
                                victim = next(iter(s))
                                if s.pop(victim):
                                    wb_lines.append(victim << line_shift)
                            s[line] = True
                    nl = r_h + r_m
                    ns = w_h + w_m

                decider = dec.decider
                if decider is not None:
                    if dec.persistent:
                        state = dec.pstate
                        if state is unset:
                            state = decider.initial_state(drng)
                        taken, dec.pstate = decider.decide(state, drng)
                    else:
                        state = loop_states.get(dec.bid, missing)
                        if state is missing:
                            state = decider.initial_state(drng)
                        taken, new_state = decider.decide(state, drng)
                        loop_states[dec.bid] = new_state
                    branch_pc = dec.branch_pc
                else:
                    taken = True
                    branch_pc = None

                # Fused closures hand back None for empty line lists
                # (lazy allocation); fills always equals the miss count.
                # A writeback implies the miss that evicted it, so
                # ``l1_misses`` alone decides the whole miss path — the
                # skipped ``+= 0`` stat updates are unobservable.
                l1_misses = r_m + w_m
                l1_stats.read_accesses += nl
                l1_stats.write_accesses += ns
                if l1_misses:
                    l1_stats.read_misses += r_m
                    l1_stats.write_misses += w_m
                    l1_stats.fills += l1_misses
                    if wb_lines:
                        l1_stats.writebacks += len(wb_lines)
                    (l2_rh, l2_rm, l2_wh, l2_wm, _l2_miss, l2_wb) = (
                        l2_access(miss_lines, wb_lines or _EMPTY)
                    )
                    l2_misses = l2_rm + l2_wm
                    hierarchy.memory_reads += l2_misses
                    hierarchy.memory_writes += len(l2_wb)
                    have_l2 = True
                else:
                    l2_misses = 0
                    have_l2 = False

                mispredicts = 0
                if branch_pc is not None:
                    index = (branch_pc >> 2) & pred_mask
                    counter = pred_table[index]
                    if taken:
                        if counter < 3:
                            pred_table[index] = counter + 1
                    elif counter > 0:
                        pred_table[index] = counter - 1
                    predictor.lookups += 1
                    if (counter >= 2) != taken:
                        predictor.mispredictions += 1
                        mispredicts = 1

                n_insns = dec.n_insns
                cycles = n_insns * cycles_per_insn / timing._ilp_factor
                if l1_misses or l2_misses:
                    overlap = 1.0 if dec.serialized else mlp
                    cycles += l1_misses * (l2_hit_latency / overlap)
                    cycles += l2_misses * (memory_latency / overlap)
                if mispredicts:
                    cycles += mispredicts * mispredict_penalty

                # Energy prices re-read per block: resizes re-bind them.
                l1e.dynamic_nj += (
                    nl * l1e._read_nj + (ns + l1_misses) * l1e._write_nj
                )
                if have_l2:
                    l2e.dynamic_nj += (
                        (l2_rh + l2_rm) * l2e._read_nj
                        + (l2_wh + l2_wm + l2_misses) * l2e._write_nj
                    )
                    energy.memory_nj += (
                        (l2_misses + len(l2_wb)) * memory_access_nj
                    )
                l1e.leakage_nj += cycles * l1e._leak_nj
                l2e.leakage_nj += cycles * l2e._leak_nj
                for component in pipeline:
                    component.energy_nj += cycles * component._nj
                now_insns += n_insns
                now_cycles += cycles

                # ---- VM bookkeeping + hooks ----
                stats.blocks_executed += 1
                thread_insns[thread_id] += n_insns
                if in_hotspot:
                    stats.instructions_in_hotspots += n_insns
                if counts_hook is not None:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    counts_hook(n_insns, dec.block_pc, thread_id, machine)
                    # Re-read after the hook: a reconfiguration inside
                    # the hook charges stall cycles the sampler must see.
                    now_insns = machine.instructions
                    now_cycles = machine.cycles
                elif on_block is not None:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    on_block(
                        BlockEvent(
                            dec.method_name,
                            dec.bid,
                            n_insns,
                            loads,
                            stores,
                            branch_pc,
                            taken,
                            dec.serialized,
                            thread_id,
                            dec.block_pc,
                        ),
                        machine,
                    )
                    now_insns = machine.instructions
                    now_cycles = machine.cycles
                if now_cycles >= next_sample_at:
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    sampler_advance(now_cycles, dec.method_name)
                    next_sample_at = sampler._next_sample_at
                    # Hotspot detection inside the advance may charge
                    # JIT compile cycles.
                    now_cycles = machine.cycles

                if dec.n_calls:
                    # Launch the first call right here (saves one outer
                    # iteration per call); the launch micro-step is
                    # budget-gated exactly as the outer loop would.
                    # The callee's blocks run via the outer loop, which
                    # re-hoists the new activation's context.
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    activation.bid = dec.bid
                    if decider is not None:
                        loop_states["__pending__"] = taken
                    if now_insns >= max_instructions:
                        activation.phase = 1
                        return
                    activation.phase = 2
                    self._invoke(thread, dec.callees[0])
                    break
                if now_insns >= max_instructions:
                    # The terminator micro-step is budget-gated in the
                    # reference; leave it unevaluated.
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    activation.bid = dec.bid
                    activation.phase = 1
                    if decider is not None:
                        loop_states["__pending__"] = taken
                    return
                # The budget cannot have moved between the check above and
                # the next body (transfers retire no instructions), so the
                # tight loop continues without a second gate.
                kind = dec.term_kind
                if kind == TERM_COND:
                    dec = dec.taken_dec if taken else dec.fallthrough_dec
                elif kind == TERM_GOTO:
                    dec = dec.goto_dec
                else:  # TERM_RETURN
                    machine.instructions = now_insns
                    machine.cycles = now_cycles
                    self._return(thread)
                    if not stack:
                        thread.finished = True
                        return
                    break
