"""Hotspot detection and the DO database (paper §3.1, Figure 2).

Every method has an entry in the :class:`DODatabase` holding its runtime
profile: invocation count, inclusive dynamic size (EWMA over completed
invocations), and the instructions it executed before turning hot (the
identification-latency numerator of Table 4).  The
:class:`HotspotDetector` promotes a method to hotspot when its invocation
counter reaches ``hot_threshold`` — the criterion Table 1 attributes to the
DO-based approach ("hotspot invoked hot_threshold times").  Detection fires
at *entry* to the threshold-crossing invocation, so exactly
``hot_threshold - 1`` full invocations execute unoptimised.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class MethodProfile:
    """DO-database entry for one method."""

    __slots__ = (
        "name",
        "invocations",
        "completed_invocations",
        "mean_size",
        "pre_hot_instructions",
        "is_hot",
        "detected_at",
        "detected_at_invocation",
    )

    #: EWMA smoothing for the inclusive-size estimate.
    ALPHA = 0.25

    def __init__(self, name: str):
        self.name = name
        self.invocations = 0
        self.completed_invocations = 0
        self.mean_size = 0.0
        self.pre_hot_instructions = 0
        self.is_hot = False
        self.detected_at: Optional[int] = None
        self.detected_at_invocation: Optional[int] = None

    def record_completion(self, inclusive_insns: int) -> None:
        self.completed_invocations += 1
        if self.completed_invocations == 1:
            self.mean_size = float(inclusive_insns)
        else:
            self.mean_size += self.ALPHA * (inclusive_insns - self.mean_size)
        if not self.is_hot:
            self.pre_hot_instructions += inclusive_insns

    def __repr__(self) -> str:
        return (
            f"MethodProfile({self.name!r}, inv={self.invocations}, "
            f"size={self.mean_size:.0f}, hot={self.is_hot})"
        )


class HotspotInfo:
    """A detected hotspot, as handed to the adaptation policy."""

    __slots__ = (
        "name",
        "profile",
        "detected_at_instructions",
        "size_at_detection",
        "invocations_since_hot",
        "instructions_inside",
    )

    def __init__(self, profile: MethodProfile, now_instructions: int):
        self.name = profile.name
        self.profile = profile
        self.detected_at_instructions = now_instructions
        self.size_at_detection = profile.mean_size
        self.invocations_since_hot = 0
        #: Inclusive instructions executed inside this hotspot's invocations
        #: after detection (outermost attribution; see VMStats).
        self.instructions_inside = 0

    @property
    def mean_size(self) -> float:
        """Current inclusive-size estimate (tracks drift after detection)."""
        return self.profile.mean_size

    def __repr__(self) -> str:
        return (
            f"HotspotInfo({self.name!r}, size={self.mean_size:.0f}, "
            f"inv_since_hot={self.invocations_since_hot})"
        )


class DODatabase:
    """Runtime profiling store of the DO system (Figure 2, bottom).

    The database can be serialized and fed into a later run
    (:meth:`to_dict` / :meth:`from_dict`, or :meth:`save` / :meth:`load`):
    preloaded hotspots are recognised from their very first invocation, so
    a rerun of the same workload pays no identification latency at all —
    the persistent-translation-cache idea of production DO systems applied
    to the paper's framework.
    """

    def __init__(self) -> None:
        self._profiles: Dict[str, MethodProfile] = {}
        self.hotspots: Dict[str, HotspotInfo] = {}

    def profile(self, name: str) -> MethodProfile:
        entry = self._profiles.get(name)
        if entry is None:
            entry = MethodProfile(name)
            self._profiles[name] = entry
        return entry

    def profiles(self) -> List[MethodProfile]:
        return list(self._profiles.values())

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "profiles": [
                {
                    "name": p.name,
                    "invocations": p.invocations,
                    "completed": p.completed_invocations,
                    "mean_size": p.mean_size,
                    "is_hot": p.is_hot,
                }
                for p in self._profiles.values()
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DODatabase":
        """Rebuild a database for preloading into a fresh run.

        Per-run metrics (pre-hot instruction counts, detection timestamps,
        invocation counters) restart from zero; what carries over is the
        knowledge of *which* methods are hot and how big they are — enough
        for instant recognition and size classification.
        """
        db = cls()
        for record in data.get("profiles", []):
            profile = MethodProfile(record["name"])
            profile.mean_size = float(record["mean_size"])
            profile.completed_invocations = int(record["completed"])
            if record.get("is_hot"):
                profile.is_hot = True
                profile.detected_at = 0
                profile.detected_at_invocation = 0
                info = HotspotInfo(profile, 0)
                db.hotspots[record["name"]] = info
            db._profiles[record["name"]] = profile
        return db

    def save(self, path: str) -> None:
        import json

        with open(path, "w") as fp:
            json.dump(self.to_dict(), fp, indent=1)

    @classmethod
    def load(cls, path: str) -> "DODatabase":
        import json

        with open(path) as fp:
            return cls.from_dict(json.load(fp))


class HotspotDetector:
    """Invocation-threshold hotspot detection.

    ``min_size``/``None`` optionally filters out methods whose inclusive
    size estimate is still zero (never completed an invocation) — such
    methods are promoted on their next completed invocation instead, so a
    size estimate always exists when the policy classifies the hotspot.
    """

    def __init__(self, database: DODatabase, hot_threshold: int):
        if hot_threshold < 1:
            raise ValueError(
                f"hot_threshold must be >= 1, got {hot_threshold}"
            )
        self.database = database
        self.hot_threshold = hot_threshold

    def on_invocation(
        self, method_name: str, now_instructions: int
    ) -> Optional[HotspotInfo]:
        """Count an invocation; returns a new HotspotInfo on promotion."""
        profile = self.database.profile(method_name)
        profile.invocations += 1
        if profile.is_hot:
            info = self.database.hotspots[method_name]
            info.invocations_since_hot += 1
            return None
        if (
            profile.invocations >= self.hot_threshold
            and profile.completed_invocations > 0
        ):
            profile.is_hot = True
            profile.detected_at = now_instructions
            profile.detected_at_invocation = profile.invocations
            info = HotspotInfo(profile, now_instructions)
            info.invocations_since_hot = 1
            self.database.hotspots[method_name] = info
            return info
        return None
