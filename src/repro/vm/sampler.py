"""Timer-based sampling profiler (paper §4.2).

Jikes RVM increments a counter for the currently active method roughly
every 10 ms; the counts feed its recompilation cost/benefit model.  The
reproduction fires a sample every ``sample_period_cycles`` simulated cycles
and attributes it to the method on top of the sampled thread's stack.  The
sample counts are exposed for the JIT's level decisions and for workload
characterisation; hotspot *detection* is invocation-threshold based (see
:mod:`repro.vm.hotspot`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class SamplingProfiler:
    """Cycle-driven method sampler."""

    def __init__(self, sample_period_cycles: float = 10_000.0):
        if sample_period_cycles <= 0:
            raise ValueError(
                "sample_period_cycles must be positive, got "
                f"{sample_period_cycles}"
            )
        self.sample_period_cycles = sample_period_cycles
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self._next_sample_at = sample_period_cycles

    def advance(self, now_cycles: float, active_method: Optional[str]) -> int:
        """Advance simulated time; take any due samples.

        Returns the number of samples taken (several, if a long block
        crossed multiple periods — matching a timer interrupt that fires
        repeatedly while one method runs).
        """
        taken = 0
        while now_cycles >= self._next_sample_at:
            self._next_sample_at += self.sample_period_cycles
            taken += 1
        if taken and active_method is not None:
            self.samples[active_method] = (
                self.samples.get(active_method, 0) + taken
            )
            self.total_samples += taken
        return taken

    def hottest(self, n: int = 10) -> List[Tuple[str, int]]:
        """Methods with the most samples, descending."""
        ranked = sorted(
            self.samples.items(), key=lambda kv: kv[1], reverse=True
        )
        return ranked[:n]

    def sample_share(self, method: str) -> float:
        if self.total_samples == 0:
            return 0.0
        return self.samples.get(method, 0) / self.total_samples
