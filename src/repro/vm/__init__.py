"""The dynamic optimization (DO) system substrate.

Stands in for Jikes RVM 2.0.2 on Dynamic SimpleScalar (paper §4.2): a
compile-only virtual machine that interprets mini-ISA programs at block
granularity, counts method invocations, detects hotspots when a method's
invocation counter crosses ``hot_threshold`` (paper Table 1), JIT-optimises
them, and dispatches hotspot entry/exit hooks to an attached adaptation
policy — the protocol the paper's ACE management framework (Figure 2) is
built on.
"""

from repro.vm.activation import Activation, ThreadContext
from repro.vm.hotspot import DODatabase, HotspotDetector, HotspotInfo
from repro.vm.jit import CompileEvent, JITCompiler, OptimizationLevel
from repro.vm.sampler import SamplingProfiler
from repro.vm.vm import AdaptationHooks, VMConfig, VMStats, VirtualMachine

__all__ = [
    "Activation",
    "AdaptationHooks",
    "CompileEvent",
    "DODatabase",
    "HotspotDetector",
    "HotspotInfo",
    "JITCompiler",
    "OptimizationLevel",
    "SamplingProfiler",
    "ThreadContext",
    "VMConfig",
    "VMStats",
    "VirtualMachine",
]
