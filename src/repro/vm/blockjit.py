"""Source-level codegen for fused block bodies (fast kernel).

When the adaptation policy installs no ``on_block`` hook, nothing ever
reads a block's load/store address lists: the addresses are generated,
pushed through the L1D, and discarded.  For that case this module
compiles — once per distinct ``(behaviour parameters, n_loads,
n_stores)`` signature, cached for the process lifetime — a *fused*
closure that draws each address and applies the L1D state transition in
the same loop iteration, skipping the intermediate lists entirely.
Small reference counts are fully unrolled.

Correctness contract (enforced by ``tests/test_kernel_equivalence.py``
and the property tests): a fused closure must consume the RNG stream and
mutate cache state *exactly* like the readable pair
(:meth:`MemoryBehavior.generate` followed by
:meth:`~repro.uarch.cache.Cache.access_many`):

* address draws replicate CPython's ``randrange`` rejection loop
  (see ``_u4`` in :mod:`repro.workloads.patterns`), all loads drawn
  before all stores — which for every flat behaviour equals the order
  ``generate`` draws them in (``MixedBehavior`` interleaves per
  component, so it is *not* fused and returns ``None``);
* the cache-update snippet mirrors ``Cache.access_block`` line for line:
  pop-with-default LRU touch, write-allocate, dirty-victim writeback;
* cache geometry (``_sets``/``_set_mask``/…) is re-read on every call,
  so mid-run resizes behave identically.

The emitted function returns ``(read_misses, write_misses, miss_lines,
writeback_lines)``.  Hits are never counted — per block they are just
``n_loads - read_misses`` / ``n_stores - write_misses``, both known to
the caller — so the (dominant) hit path is a single LRU re-insert.  The
two line lists are lazily allocated and come back as ``None`` when empty
(most blocks on a warm cache miss nothing; skipping two list allocations
per block is measurable).  Statistics updates are left to the caller
(the fast kernel inlines them).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.workloads.patterns import (
    WORD,
    PointerChaseBehavior,
    StackBehavior,
    StridedBehavior,
    WanderingWindowBehavior,
    WorkingSetBehavior,
    _u4,
)

#: Reference counts up to this many are unrolled; above it, a loop is
#: emitted (keeps generated code — and compile time — bounded).
UNROLL_LIMIT = 16

#: Process-wide cache of compiled closures, keyed by the behaviour's
#: parameter signature plus the reference counts.  Benchmarks build
#: methods from a handful of behaviour templates, so runs and test cases
#: share almost all entries.
_CACHE: Dict[Tuple, Callable] = {}


def _rejection_draw(n: int, k: int, indent: str) -> str:
    """The ``randrange(0, span, WORD)`` draw: CPython's rejection loop."""
    return (
        f"{indent}r = getrandbits({k})\n"
        f"{indent}while r >= {n}:\n"
        f"{indent}    r = getrandbits({k})\n"
    )


def _signature(behavior) -> Optional[Tuple]:
    """Hashable parameter signature, or None if the behaviour can't fuse."""
    if type(behavior) is StackBehavior:
        return ("stack", behavior.span)
    if type(behavior) is WorkingSetBehavior:
        return ("ws", behavior.span, behavior.locality, behavior.offset)
    if type(behavior) is PointerChaseBehavior:
        return ("pc", behavior.span, behavior.offset)
    if type(behavior) is WanderingWindowBehavior:
        return (
            "ww",
            behavior.window,
            behavior.region_span,
            behavior.drift,
        )
    if type(behavior) is StridedBehavior:
        return ("st", behavior.span, behavior.stride, behavior.offset)
    return None


def _draw_parts(behavior, n_loads: int, n_stores: int):
    """Returns (prologue, load_snippet, store_snippet) source fragments.

    Each snippet draws one address and leaves its cache-line index in
    ``line`` (the address itself is never materialised — only the line
    matters to the L1D) and is emitted once per reference (unrolled) or
    inside a ``for`` loop.  The prologue runs once per call and may bind
    draw-time locals.
    """
    if type(behavior) is StackBehavior:
        n, k = _u4(behavior.span)
        snippet = _rejection_draw(n, k, "    ") + (
            f"    line = (frame_base + r * {WORD}) >> line_shift\n"
        )
        return "", snippet, snippet
    if type(behavior) is WorkingSetBehavior:
        n_hot, k_hot = _u4(behavior._hot_span)
        n_span, k_span = _u4(behavior.span)
        prologue = (
            f"    base = region_base + {behavior.offset}\n"
            "    random = rng.random\n"
        )
        snippet = (
            f"    if random() < {behavior.locality!r}:\n"
            + _rejection_draw(n_hot, k_hot, "        ")
            + "    else:\n"
            + _rejection_draw(n_span, k_span, "        ")
            + f"    line = (base + r * {WORD}) >> line_shift\n"
        )
        return prologue, snippet, snippet
    if type(behavior) is PointerChaseBehavior:
        n, k = _u4(behavior.span)
        prologue = f"    base = region_base + {behavior.offset}\n"
        snippet = _rejection_draw(n, k, "    ") + (
            f"    line = (base + r * {WORD}) >> line_shift\n"
        )
        return prologue, snippet, snippet
    if type(behavior) is WanderingWindowBehavior:
        n, k = _u4(behavior.window)
        span = behavior.region_span
        prologue = (
            f"    position = (iteration * {behavior.drift}) % {span}\n"
        )
        snippet = _rejection_draw(n, k, "    ") + (
            "    line = (region_base"
            f" + (position + r * {WORD}) % {span}) >> line_shift\n"
        )
        return prologue, snippet, snippet
    if type(behavior) is StridedBehavior:
        span = behavior.span
        stride = behavior.stride
        refs = n_loads + n_stores
        # generate(): addr_i = base + (start + i*stride) % span with
        # start = iteration*refs*stride; stepping off by stride modulo
        # span yields the same sequence without the per-ref multiply.
        prologue = (
            f"    base = region_base + {behavior.offset}\n"
            f"    off = (iteration * {refs * stride}) % {span}\n"
        )
        snippet = (
            "    line = (base + off) >> line_shift\n"
            f"    off = (off + {stride}) % {span}\n"
        )
        return prologue, snippet, snippet
    raise AssertionError(f"unfusable behaviour {behavior!r}")


#: L1D state transition per address — textually mirrors
#: ``Cache.access_block`` (kept in lockstep by the equivalence and
#: property suites).  ``{hit}``/``{miss}``/``{fill}`` are filled per
#: access type.
_CACHE_SNIPPET = """\
    s = sets[line & set_mask]
    prev = s.pop(line, missing)
    if prev is not missing:
        {hit}
    else:
        {miss} += 1
        if miss_lines is None:
            miss_lines = []
        miss_lines.append(line << line_shift)
        if len(s) >= assoc:
            victim = next(iter(s))
            if s.pop(victim):
                if wb_lines is None:
                    wb_lines = []
                wb_lines.append(victim << line_shift)
        s[line] = {fill}
"""

_LOAD_ACCESS = _CACHE_SNIPPET.format(
    hit="s[line] = prev",
    miss="r_m",
    fill="False",
)
_STORE_ACCESS = _CACHE_SNIPPET.format(
    hit="s[line] = True",
    miss="w_m",
    fill="True",
)


def _emit_refs(draw: str, access: str, count: int) -> str:
    """Unrolled (or looped) source for ``count`` references."""
    if count == 0:
        return ""
    body = draw + access
    if count <= UNROLL_LIMIT:
        return body * count
    indented = "".join(
        "    " + line if line.strip() else line
        for line in body.splitlines(keepends=True)
    )
    return f"    for _ in range({count}):\n{indented}"


def compile_fused_block(behavior, n_loads: int, n_stores: int):
    """Compile (or fetch from cache) a fused body for ``behavior``.

    Returns ``fused(rng, frame_base, region_base, iteration, l1,
    missing)`` or ``None`` when the behaviour has no fused form
    (``MixedBehavior``, custom behaviours).
    """
    sig = _signature(behavior)
    if sig is None:
        return None
    key = sig + (n_loads, n_stores)
    fn = _CACHE.get(key)
    if fn is not None:
        return fn
    prologue, load_snip, store_snip = _draw_parts(
        behavior, n_loads, n_stores
    )
    source = (
        "def fused(rng, frame_base, region_base, iteration, l1, missing):\n"
        "    getrandbits = rng.getrandbits\n"
        "    line_shift = l1._line_shift\n"
        "    set_mask = l1._set_mask\n"
        "    sets = l1._sets\n"
        "    assoc = l1.associativity\n"
        "    miss_lines = None\n"
        "    wb_lines = None\n"
        "    r_m = 0\n"
        "    w_m = 0\n"
        + prologue
        + _emit_refs(load_snip, _LOAD_ACCESS, n_loads)
        + _emit_refs(store_snip, _STORE_ACCESS, n_stores)
        + "    return r_m, w_m, miss_lines, wb_lines\n"
    )
    namespace: Dict[str, object] = {}
    exec(  # noqa: S102 - source is assembled from validated literals
        compile(source, f"<blockjit:{key}>", "exec"), namespace
    )
    fn = namespace["fused"]
    _CACHE[key] = fn
    return fn
