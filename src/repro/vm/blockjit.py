"""Source-level codegen for fused block bodies (fast kernel).

When nothing reads a block's load/store address lists — either no
``on_block`` hook is installed, or the installed policy declares
``on_block_reads_addresses = False`` (see
:class:`repro.vm.vm.AdaptationHooks`) — the addresses are generated,
pushed through the L1D, and discarded.  For that case this module
compiles — once per distinct ``(behaviour parameters, n_loads,
n_stores)`` signature, cached process-wide — a *fused* closure that
draws each address and applies the L1D state transition in the same
loop iteration, skipping the intermediate lists entirely.  Small
reference counts are fully unrolled.

Correctness contract (enforced by ``tests/test_kernel_equivalence.py``
and the property tests): a fused closure must consume the RNG stream and
mutate cache state *exactly* like the readable pair
(:meth:`MemoryBehavior.generate` followed by
:meth:`~repro.uarch.cache.Cache.access_many`):

* address draws replicate CPython's ``randrange`` rejection loop
  (see ``_u4`` in :mod:`repro.workloads.patterns`) with the draws
  inlined as straight-line code — one ``getrandbits`` C call per word
  the reference consumes, in the reference's order.  (Batching the
  words into one wide ``getrandbits`` call and splitting the bigint
  was measured ~2x *slower* than the per-draw C calls — pure-Python
  word extraction costs more than it saves; see INTERNALS.md §12.)
* the draw's address arithmetic is replaced by a **draw table**: for
  the affine behaviours (stack / working-set / pointer-chase) the line
  index and the set index are pure functions of the draw ``r``, whose
  range is small (``span // WORD`` values), so the closure precomputes
  ``r -> (line, set index)`` tuples once per ``(base, geometry)`` pair
  and each access costs two tuple reads instead of four big-int
  operations.  The tables hold exactly the values the reference
  arithmetic produces — bit-identity is preserved by construction, and
  geometry is part of the table key, so mid-run resizes switch tables.
* ``MixedBehavior`` fuses in two phases: phase one draws every
  component's addresses in ``generate``'s order (per component, loads
  then stores) into unrolled locals; phase two applies the cache
  transitions in ``access_many``'s order (all loads, then all stores).
  Draw order and access order differ for mixes, which is why the
  single-pass form used for flat behaviours cannot apply.
* the cache-update snippet mirrors ``Cache.access_block`` line for line:
  pop-with-default LRU touch, write-allocate, dirty-victim writeback;
* cache geometry (``_sets``/``_set_mask``/…) is re-read on every call,
  so mid-run resizes behave identically.

The emitted function returns ``(read_misses, write_misses, miss_lines,
writeback_lines)``.  Hits are never counted — per block they are just
``n_loads - read_misses`` / ``n_stores - write_misses``, both known to
the caller — so the (dominant) hit path is a single LRU re-insert.  The
two line lists are lazily allocated and come back as ``None`` when empty
(most blocks on a warm cache miss nothing; skipping two list allocations
per block is measurable).  Statistics updates are left to the caller
(the fast kernel inlines them).

The compiled-closure cache is bounded (:data:`CACHE_LIMIT`, FIFO
eviction) so pathological workloads — property tests sweeping thousands
of behaviour parameters, long-lived engine workers serving many
benchmarks — cannot grow it without limit.  Eviction is safe: a
re-fused signature compiles to identical source.  ``cache_info()``
exposes the counters and ``publish_metrics()`` mirrors them into a
:class:`repro.obs.MetricsRegistry` (``blockjit.*`` gauges).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.workloads.patterns import (
    WORD,
    MixedBehavior,
    PointerChaseBehavior,
    StackBehavior,
    StridedBehavior,
    WanderingWindowBehavior,
    WorkingSetBehavior,
    _u4,
)

#: Reference counts up to this many are unrolled; above it, a loop is
#: emitted (keeps generated code — and compile time — bounded).
UNROLL_LIMIT = 16

#: Compiled closures kept process-wide before FIFO eviction kicks in.
#: Real suites compile a few dozen signatures; the bound only matters
#: for adversarial parameter sweeps.
CACHE_LIMIT = 256

#: Draw-table variants kept per closure (one per distinct ``(base,
#: geometry)`` pair seen at run time) before the table cache is reset.
LUT_KEY_LIMIT = 512

#: Process-wide cache of compiled closures, keyed by the behaviour's
#: parameter signature plus the reference counts.  Benchmarks build
#: methods from a handful of behaviour templates, so runs and test cases
#: share almost all entries.
_CACHE: Dict[Tuple, Callable] = {}

#: Monotonic codegen-cache telemetry (process lifetime).
CACHE_STATS = {"compiles": 0, "hits": 0, "evictions": 0}


def cache_info() -> Dict[str, int]:
    """Snapshot of the compiled-closure cache counters."""
    return dict(CACHE_STATS, size=len(_CACHE), limit=CACHE_LIMIT)


def publish_metrics(metrics) -> None:
    """Mirror :func:`cache_info` into a ``MetricsRegistry`` as gauges."""
    for name, value in cache_info().items():
        metrics.gauge(f"blockjit.cache_{name}").set(value)


def clear_cache() -> int:
    """Drop every compiled closure (tests); returns the count dropped."""
    count = len(_CACHE)
    _CACHE.clear()
    return count


def _rejection_draw(n: int, k: int, indent: str) -> str:
    """The ``randrange(0, span, WORD)`` draw: CPython's rejection loop."""
    return (
        f"{indent}r = getrandbits({k})\n"
        f"{indent}while r >= {n}:\n"
        f"{indent}    r = getrandbits({k})\n"
    )


def _flat_signature(behavior) -> Optional[Tuple]:
    """Parameter signature of one non-mixed behaviour, or ``None``."""
    if type(behavior) is StackBehavior:
        return ("stack", behavior.span)
    if type(behavior) is WorkingSetBehavior:
        return ("ws", behavior.span, behavior.locality, behavior.offset)
    if type(behavior) is PointerChaseBehavior:
        return ("pc", behavior.span, behavior.offset)
    if type(behavior) is WanderingWindowBehavior:
        return (
            "ww",
            behavior.window,
            behavior.region_span,
            behavior.drift,
        )
    if type(behavior) is StridedBehavior:
        return ("st", behavior.span, behavior.stride, behavior.offset)
    return None


def _signature(behavior) -> Optional[Tuple]:
    """Hashable parameter signature, or None if the behaviour can't fuse."""
    if type(behavior) is MixedBehavior:
        parts = []
        for component, weight in behavior.components:
            sub = _flat_signature(component)
            if sub is None:
                return None
            parts.append((sub, weight))
        return ("mixed", tuple(parts))
    return _flat_signature(behavior)


#: L1D state transition per address — textually mirrors
#: ``Cache.access_block`` (kept in lockstep by the equivalence and
#: property suites).  ``{line}``/``{s}`` name the locals holding the
#: line index and its set dict; ``{hit}``/``{miss}``/``{fill}`` are
#: filled per access type.
_ACCESS_TAIL = """\
    {probe}
        {hit}
    else:
        {miss} += 1
        if miss_lines is None:
            miss_lines = []
        miss_lines.append({line} << line_shift)
        if len({s}) >= assoc:
            victim = next(iter({s}))
            if {s}.pop(victim):
                if wb_lines is None:
                    wb_lines = []
                wb_lines.append(victim << line_shift)
        {s}[{line}] = {fill}
"""


def _access(line: str, s: str, is_store: bool) -> str:
    if is_store:
        # A store hit overwrites the dirty bit unconditionally, so the
        # popped value itself is dead — skip the temporary.
        return _ACCESS_TAIL.format(
            probe=f"if {s}.pop({line}, missing) is not missing:",
            line=line, s=s, hit=f"{s}[{line}] = True", miss="w_m",
            fill="True",
        )
    return _ACCESS_TAIL.format(
        probe=(
            f"prev = {s}.pop({line}, missing)\n"
            f"    if prev is not missing:"
        ),
        line=line, s=s, hit=f"{s}[{line}] = prev", miss="r_m",
        fill="False",
    )


def _lut_prologue(tag: str, base_expr: str, n_values: int) -> str:
    """Draw-table setup: ``r -> line`` / ``r -> set index`` tuples.

    The table is keyed by everything its values depend on — the base
    address and the live cache geometry — so a mid-run resize (new
    ``set_mask``) or a different frame/region base selects a different
    table.  Entries are exactly the reference arithmetic's results,
    computed once instead of per access.
    """
    return (
        f"    base{tag} = {base_expr}\n"
        f"    _k = (base{tag}, line_shift, set_mask)\n"
        f"    _pair = _luts{tag}.get(_k)\n"
        f"    if _pair is None:\n"
        f"        if len(_luts{tag}) >= {LUT_KEY_LIMIT}:\n"
        f"            _luts{tag}.clear()\n"
        f"        _ls = []\n"
        f"        _xs = []\n"
        f"        for _r in range({n_values}):\n"
        f"            _ln = (base{tag} + _r * {WORD}) >> line_shift\n"
        f"            _ls.append(_ln)\n"
        f"            _xs.append(_ln & set_mask)\n"
        f"        _pair = (tuple(_ls), tuple(_xs))\n"
        f"        _luts{tag}[_k] = _pair\n"
        f"    lines{tag}, idxs{tag} = _pair\n"
    )


def _draw_parts(behavior, n_loads: int, n_stores: int, tag: str = ""):
    """Returns ``(prologue, load_snippet, store_snippet, uses_lut)``.

    Each snippet draws one address and leaves its cache-line index in
    ``line`` and the target set dict in ``s`` (the address itself is
    never materialised — only the line matters to the L1D).  ``tag``
    suffixes every behaviour-local name so mixed-behaviour components
    can coexist in one closure.  The prologue runs once per call.
    """
    if type(behavior) is StackBehavior:
        n, k = _u4(behavior.span)
        prologue = _lut_prologue(tag, "frame_base", n)
        snippet = _rejection_draw(n, k, "    ") + (
            f"    line = lines{tag}[r]\n"
            f"    s = sets[idxs{tag}[r]]\n"
        )
        return prologue, snippet, snippet, True
    if type(behavior) is WorkingSetBehavior:
        n_hot, k_hot = _u4(behavior._hot_span)
        n_span, k_span = _u4(behavior.span)
        prologue = (
            _lut_prologue(
                tag, f"region_base + {behavior.offset}", n_span
            )
            + "    random = rng.random\n"
        )
        snippet = (
            f"    if random() < {behavior.locality!r}:\n"
            + _rejection_draw(n_hot, k_hot, "        ")
            + "    else:\n"
            + _rejection_draw(n_span, k_span, "        ")
            + f"    line = lines{tag}[r]\n"
            + f"    s = sets[idxs{tag}[r]]\n"
        )
        return prologue, snippet, snippet, True
    if type(behavior) is PointerChaseBehavior:
        n, k = _u4(behavior.span)
        prologue = _lut_prologue(
            tag, f"region_base + {behavior.offset}", n
        )
        snippet = _rejection_draw(n, k, "    ") + (
            f"    line = lines{tag}[r]\n"
            f"    s = sets[idxs{tag}[r]]\n"
        )
        return prologue, snippet, snippet, True
    if type(behavior) is WanderingWindowBehavior:
        n, k = _u4(behavior.window)
        span = behavior.region_span
        prologue = (
            f"    position{tag} = (iteration * {behavior.drift}) % {span}\n"
        )
        snippet = _rejection_draw(n, k, "    ") + (
            "    line = (region_base"
            f" + (position{tag} + r * {WORD}) % {span}) >> line_shift\n"
            "    s = sets[line & set_mask]\n"
        )
        return prologue, snippet, snippet, False
    if type(behavior) is StridedBehavior:
        span = behavior.span
        stride = behavior.stride
        refs = n_loads + n_stores
        # generate(): addr_i = base + (start + i*stride) % span with
        # start = iteration*refs*stride; stepping off by stride modulo
        # span yields the same sequence without the per-ref multiply.
        prologue = (
            f"    base{tag} = region_base + {behavior.offset}\n"
            f"    off{tag} = (iteration * {refs * stride}) % {span}\n"
        )
        snippet = (
            f"    line = (base{tag} + off{tag}) >> line_shift\n"
            f"    off{tag} = (off{tag} + {stride}) % {span}\n"
            "    s = sets[line & set_mask]\n"
        )
        return prologue, snippet, snippet, False
    raise AssertionError(f"unfusable behaviour {behavior!r}")


def _emit_refs(draw: str, access: str, count: int) -> str:
    """Unrolled (or looped) source for ``count`` references."""
    if count == 0:
        return ""
    body = draw + access
    if count <= UNROLL_LIMIT:
        return body * count
    indented = "".join(
        "    " + line if line.strip() else line
        for line in body.splitlines(keepends=True)
    )
    return f"    for _ in range({count}):\n{indented}"


_LOAD_ACCESS = _access("line", "s", is_store=False)
_STORE_ACCESS = _access("line", "s", is_store=True)


def _emit_flat(behavior, n_loads: int, n_stores: int):
    """Body + closure params for a non-mixed behaviour."""
    prologue, load_snip, store_snip, uses_lut = _draw_parts(
        behavior, n_loads, n_stores, tag="0"
    )
    body = (
        prologue
        + _emit_refs(load_snip, _LOAD_ACCESS, n_loads)
        + _emit_refs(store_snip, _STORE_ACCESS, n_stores)
    )
    params = ", _luts0={}" if uses_lut else ""
    return body, params


def _emit_mixed(behavior, n_loads: int, n_stores: int):
    """Two-phase body for ``MixedBehavior``, or ``None``.

    ``generate`` draws per component (its loads, then its stores) while
    ``access_many`` touches the cache in concatenated list order (every
    component's loads, then every component's stores) — so the draws
    land in unrolled locals first and the cache transitions replay them
    in list order.  Only fully unrollable mixes fuse; bigger blocks
    keep the list path.
    """
    if n_loads + n_stores > UNROLL_LIMIT:
        return None
    weights = [w for _, w in behavior.components]
    load_shares = MixedBehavior._apportion(n_loads, weights)
    store_shares = MixedBehavior._apportion(n_stores, weights)
    prologues = []
    params = []
    draw_phase = []
    load_tails = []
    store_tails = []
    ref_id = 0
    for ci, (component, _) in enumerate(behavior.components):
        nl, ns = load_shares[ci], store_shares[ci]
        if nl == 0 and ns == 0:
            continue
        tag = str(ci)
        prologue, load_snip, store_snip, uses_lut = _draw_parts(
            component, nl, ns, tag=tag
        )
        prologues.append(prologue)
        if uses_lut:
            params.append(f", _luts{tag}={{}}")
        for snip, count, tails, is_store in (
            (load_snip, nl, load_tails, False),
            (store_snip, ns, store_tails, True),
        ):
            for _ in range(count):
                line_var = f"ln{ref_id}"
                s_var = f"sd{ref_id}"
                ref_id += 1
                draw_phase.append(
                    snip.replace("    line = ", f"    {line_var} = ")
                    .replace("    s = ", f"    {s_var} = ")
                    .replace("line & set_mask", f"{line_var} & set_mask")
                )
                tails.append(_access(line_var, s_var, is_store))
    body = "".join(prologues) + "".join(
        draw_phase + load_tails + store_tails
    )
    return body, "".join(params)


def compile_fused_block(behavior, n_loads: int, n_stores: int):
    """Compile (or fetch from cache) a fused body for ``behavior``.

    Returns ``fused(rng, frame_base, region_base, iteration, l1,
    missing)`` or ``None`` when the behaviour has no fused form
    (custom behaviours, oversized mixes).
    """
    sig = _signature(behavior)
    if sig is None:
        return None
    key = sig + (n_loads, n_stores)
    fn = _CACHE.get(key)
    if fn is not None:
        CACHE_STATS["hits"] += 1
        return fn
    if type(behavior) is MixedBehavior:
        emitted = _emit_mixed(behavior, n_loads, n_stores)
        if emitted is None:
            return None
        body, params = emitted
    else:
        body, params = _emit_flat(behavior, n_loads, n_stores)
    source = (
        "def fused(rng, frame_base, region_base, iteration, l1, "
        f"missing{params}):\n"
        "    getrandbits = rng.getrandbits\n"
        "    line_shift = l1._line_shift\n"
        "    set_mask = l1._set_mask\n"
        "    sets = l1._sets\n"
        "    assoc = l1.associativity\n"
        "    miss_lines = None\n"
        "    wb_lines = None\n"
        "    r_m = 0\n"
        "    w_m = 0\n"
        + body
        + "    return r_m, w_m, miss_lines, wb_lines\n"
    )
    namespace: Dict[str, object] = {}
    exec(  # noqa: S102 - source is assembled from validated literals
        compile(source, f"<blockjit:{key}>", "exec"), namespace
    )
    fn = namespace["fused"]
    if len(_CACHE) >= CACHE_LIMIT:
        del _CACHE[next(iter(_CACHE))]
        CACHE_STATS["evictions"] += 1
    _CACHE[key] = fn
    CACHE_STATS["compiles"] += 1
    return fn
