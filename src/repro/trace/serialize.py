"""Trace serialization: JSONL capture and replay of block-event streams.

Lets a workload's event stream be captured once and replayed through
differently configured machines — handy for debugging adaptation
decisions (`tools/diagnose.py`-style forensics) and for regression tests
that must hold the instruction stream fixed while varying the hardware.

Format: one JSON object per line, using short keys to keep multi-hundred-
thousand-event traces manageable::

    {"m": "mid0", "b": "loop", "n": 40, "l": [...], "s": [...],
     "bp": 65632, "kp": 65632, "t": 1, "z": 0, "th": 0}
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Union

from repro.trace.events import BlockEvent


def event_to_dict(event: BlockEvent) -> dict:
    return {
        "m": event.method,
        "b": event.bid,
        "n": event.n_insns,
        "l": list(event.loads),
        "s": list(event.stores),
        "bp": event.branch_pc,
        "kp": event.block_pc,
        "t": 1 if event.taken else 0,
        "z": 1 if event.serialized else 0,
        "th": event.thread_id,
    }


def event_from_dict(record: dict) -> BlockEvent:
    return BlockEvent(
        record["m"],
        record["b"],
        record["n"],
        record["l"],
        record["s"],
        record["bp"],
        bool(record["t"]),
        serialized=bool(record.get("z", 0)),
        thread_id=record.get("th", 0),
        block_pc=record.get("kp", 0),
    )


def write_trace(events: Iterable[BlockEvent], fp: IO[str]) -> int:
    """Write events as JSONL; returns the number written."""
    count = 0
    for event in events:
        fp.write(json.dumps(event_to_dict(event), separators=(",", ":")))
        fp.write("\n")
        count += 1
    return count


def read_trace(fp: IO[str]) -> Iterator[BlockEvent]:
    """Stream events back from a JSONL trace."""
    for line in fp:
        line = line.strip()
        if not line:
            continue
        yield event_from_dict(json.loads(line))


def save_trace(events: Iterable[BlockEvent], path: str) -> int:
    with open(path, "w") as fp:
        return write_trace(events, fp)


def load_trace(path: str) -> List[BlockEvent]:
    with open(path) as fp:
        return list(read_trace(fp))


def capture_trace(
    program_or_benchmark: Union[str, object],
    max_instructions: int = 200_000,
    capacity: int = 1_000_000,
):
    """Run a program/benchmark under the no-op policy, capturing events.

    Returns a :class:`repro.trace.stream.TraceRecorder`.
    """
    from repro.sim.config import MachineConfig, build_machine
    from repro.trace.stream import TraceRecorder
    from repro.vm.vm import AdaptationHooks, VMConfig, VirtualMachine
    from repro.workloads.specjvm import build_benchmark

    if isinstance(program_or_benchmark, str):
        built = build_benchmark(program_or_benchmark)
        program, entries = built.program, built.thread_entries
    else:
        program, entries = program_or_benchmark, None

    recorder = TraceRecorder(capacity=capacity)

    class Capture(AdaptationHooks):
        def on_block(self, event, machine):
            recorder.observe(event)

    vm = VirtualMachine(
        program,
        build_machine(MachineConfig()),
        policy=Capture(),
        config=VMConfig(),
        thread_entries=entries,
    )
    vm.run(max_instructions)
    return recorder
