"""Interval splitting and trace capture utilities.

The BBV baseline samples execution in fixed-size instruction intervals
(paper §4.1: 1 M instructions, scaled here).  :class:`IntervalSplitter`
turns the block-event stream into interval-boundary notifications without
assuming blocks align with boundaries — a block straddling a boundary is
attributed to the interval in which it *completes*, matching how a
hardware instruction counter would fire.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.trace.events import BlockEvent, TraceStats


class IntervalSplitter:
    """Fires a callback every ``interval_insns`` retired instructions.

    ``on_boundary(index, insns_in_interval)`` is invoked when an interval
    completes; ``index`` counts intervals from 0.  A block that pushes the
    counter past one or more boundaries triggers one callback per boundary
    crossed (long blocks cannot swallow intervals silently).
    """

    def __init__(
        self,
        interval_insns: int,
        on_boundary: Callable[[int, int], None],
    ):
        if interval_insns <= 0:
            raise ValueError(
                f"interval size must be positive, got {interval_insns}"
            )
        self.interval_insns = interval_insns
        self.on_boundary = on_boundary
        self._in_interval = 0
        self._index = 0

    @property
    def current_index(self) -> int:
        return self._index

    @property
    def instructions_in_current(self) -> int:
        return self._in_interval

    def advance(self, n_insns: int) -> int:
        """Account ``n_insns`` retired instructions; returns the number of
        interval boundaries crossed."""
        self._in_interval += n_insns
        crossed = 0
        while self._in_interval >= self.interval_insns:
            self._in_interval -= self.interval_insns
            self.on_boundary(self._index, self.interval_insns)
            self._index += 1
            crossed += 1
        return crossed

    def flush(self) -> None:
        """Emit a final partial interval, if any (end of run)."""
        if self._in_interval > 0:
            self.on_boundary(self._index, self._in_interval)
            self._index += 1
            self._in_interval = 0


class TraceRecorder:
    """Captures block events (optionally capped) with running statistics.

    Used by tests and examples; production runs feed the machine model
    directly without materialising the trace.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity
        self.events: List[BlockEvent] = []
        self.stats = TraceStats()
        self.dropped = 0

    def observe(self, event: BlockEvent) -> None:
        self.stats.observe(event)
        if self.capacity is None or len(self.events) < self.capacity:
            self.events.append(event)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


def replay(
    events: Iterable[BlockEvent],
    *sinks: Callable[[BlockEvent], None],
) -> TraceStats:
    """Feed a recorded event stream through one or more sinks.

    Lets tests run the same captured trace through, e.g., two differently
    configured cache hierarchies and compare.
    """
    stats = TraceStats()
    for event in events:
        stats.observe(event)
        for sink in sinks:
            sink(event)
    return stats
