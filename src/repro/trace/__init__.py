"""Trace infrastructure: execution events and interval utilities."""

from repro.trace.events import BlockEvent, MethodEvent, TraceStats
from repro.trace.stream import IntervalSplitter, TraceRecorder, replay
from repro.trace.serialize import (
    capture_trace,
    load_trace,
    read_trace,
    save_trace,
    write_trace,
)

__all__ = [
    "BlockEvent",
    "IntervalSplitter",
    "MethodEvent",
    "TraceRecorder",
    "TraceStats",
    "capture_trace",
    "load_trace",
    "read_trace",
    "replay",
    "save_trace",
    "write_trace",
]
