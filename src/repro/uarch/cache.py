"""Resizable set-associative write-back cache.

Size reconfiguration follows the paper's model (§2.1): shrinking a cache
requires writing dirty lines back to the lower hierarchy level, which is the
dominant reconfiguration overhead.  We flush on *every* resize (dirty lines
written back, all lines invalidated) — a strict upper bound on the paper's
cost, applied identically to both adaptation schemes (DESIGN.md §6).

Lines are tracked per set as insertion-ordered dicts mapping line number to
a dirty bit; LRU touch is delete-and-reinsert.  The access loops are written
for speed — they process whole address lists per call, since they execute
millions of times per experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


#: Sentinel for dict.pop-with-default in the fast access path.
_MISSING = object()


class CacheStats:
    """Cumulative access statistics (monotonic over the cache's lifetime)."""

    __slots__ = (
        "read_accesses",
        "read_misses",
        "write_accesses",
        "write_misses",
        "writebacks",
        "fills",
        "flushes",
        "flushed_dirty_lines",
        "resizes",
    )

    def __init__(self) -> None:
        self.read_accesses = 0
        self.read_misses = 0
        self.write_accesses = 0
        self.write_misses = 0
        self.writebacks = 0
        self.fills = 0
        self.flushes = 0
        self.flushed_dirty_lines = 0
        self.resizes = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> Tuple[int, int, int, int, int, int]:
        return (
            self.read_accesses,
            self.read_misses,
            self.write_accesses,
            self.write_misses,
            self.writebacks,
            self.flushed_dirty_lines,
        )

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, misses={self.misses}, "
            f"miss_rate={self.miss_rate:.4f}, writebacks={self.writebacks})"
        )


class AccessResult:
    """Outcome of a batched access: traffic to forward to the next level.

    ``miss_lines`` are line-aligned addresses to fetch from below (reads);
    ``writeback_lines`` are dirty victims to write below (writes).
    """

    __slots__ = ("read_hits", "read_misses", "write_hits", "write_misses",
                 "miss_lines", "writeback_lines")

    def __init__(
        self,
        read_hits: int,
        read_misses: int,
        write_hits: int,
        write_misses: int,
        miss_lines: List[int],
        writeback_lines: List[int],
    ):
        self.read_hits = read_hits
        self.read_misses = read_misses
        self.write_hits = write_hits
        self.write_misses = write_misses
        self.miss_lines = miss_lines
        self.writeback_lines = writeback_lines

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def accesses(self) -> int:
        return (
            self.read_hits + self.read_misses
            + self.write_hits + self.write_misses
        )


class Cache:
    """Set-associative write-back, write-allocate cache with resizable
    capacity at fixed associativity and line size (paper Table 2).

    ``sizes`` lists the legal capacities (bytes); ``size`` must be one of
    them.  Resizing changes the number of sets, so lines would generally map
    differently afterwards — hence the full flush on resize.
    """

    #: Resize semantics: "selective" keeps reachable lines (selective-sets
    #: hardware); "flush" invalidates everything on any resize (the
    #: conservative model — a strict upper bound on reconfiguration cost).
    RESIZE_POLICIES = ("selective", "flush")

    def __init__(
        self,
        name: str,
        size: int,
        line_size: int,
        associativity: int,
        sizes: Optional[Sequence[int]] = None,
        resize_policy: str = "selective",
    ):
        if not _is_power_of_two(line_size):
            raise ValueError(f"line size must be a power of two: {line_size}")
        if associativity < 1:
            raise ValueError(f"associativity must be >= 1: {associativity}")
        if resize_policy not in self.RESIZE_POLICIES:
            raise ValueError(
                f"resize_policy must be one of {self.RESIZE_POLICIES}, "
                f"got {resize_policy!r}"
            )
        self.resize_policy = resize_policy
        self.name = name
        self.line_size = line_size
        self.associativity = associativity
        self.sizes: Tuple[int, ...] = tuple(sorted(sizes or [size], reverse=True))
        for s in self.sizes:
            self._check_geometry(s)
        if size not in self.sizes:
            raise ValueError(
                f"size {size} not among configured sizes {self.sizes}"
            )
        self.stats = CacheStats()
        self._line_shift = line_size.bit_length() - 1
        self.size = 0  # set by _configure
        self._sets: List[Dict[int, bool]] = []
        self._set_mask = 0
        self._configure(size)

    def _check_geometry(self, size: int) -> None:
        n_sets, rem = divmod(size, self.line_size * self.associativity)
        if rem or not _is_power_of_two(n_sets):
            raise ValueError(
                f"cache size {size} does not yield a power-of-two set count "
                f"with line={self.line_size}, assoc={self.associativity}"
            )

    def _configure(self, size: int) -> None:
        n_sets = size // (self.line_size * self.associativity)
        self.size = size
        self._sets = [dict() for _ in range(n_sets)]
        self._set_mask = n_sets - 1

    # -- geometry ---------------------------------------------------------

    @property
    def n_sets(self) -> int:
        return len(self._sets)

    @property
    def n_lines(self) -> int:
        return self.n_sets * self.associativity

    @property
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def dirty_lines(self) -> int:
        return sum(1 for s in self._sets for dirty in s.values() if dirty)

    def contains(self, addr: int) -> bool:
        line = addr >> self._line_shift
        return line in self._sets[line & self._set_mask]

    def is_dirty(self, addr: int) -> bool:
        line = addr >> self._line_shift
        return self._sets[line & self._set_mask].get(line, False)

    # -- access paths -------------------------------------------------------

    def access_many(
        self, loads: Sequence[int], stores: Sequence[int]
    ) -> AccessResult:
        """Process a batch of load then store word addresses.

        Returns the traffic to forward to the next level.  Misses allocate
        (write-allocate for stores); LRU victims that are dirty produce
        writebacks.
        """
        line_shift = self._line_shift
        set_mask = self._set_mask
        sets = self._sets
        assoc = self.associativity
        miss_lines: List[int] = []
        wb_lines: List[int] = []

        read_hits = 0
        read_misses = 0
        for addr in loads:
            line = addr >> line_shift
            s = sets[line & set_mask]
            if line in s:
                s[line] = s.pop(line)  # LRU touch, keep dirty bit
                read_hits += 1
            else:
                read_misses += 1
                miss_lines.append(line << line_shift)
                if len(s) >= assoc:
                    victim = next(iter(s))
                    if s.pop(victim):
                        wb_lines.append(victim << line_shift)
                s[line] = False

        write_hits = 0
        write_misses = 0
        for addr in stores:
            line = addr >> line_shift
            s = sets[line & set_mask]
            if line in s:
                s.pop(line)
                s[line] = True  # LRU touch + mark dirty
                write_hits += 1
            else:
                write_misses += 1
                miss_lines.append(line << line_shift)
                if len(s) >= assoc:
                    victim = next(iter(s))
                    if s.pop(victim):
                        wb_lines.append(victim << line_shift)
                s[line] = True

        st = self.stats
        st.read_accesses += read_hits + read_misses
        st.read_misses += read_misses
        st.write_accesses += write_hits + write_misses
        st.write_misses += write_misses
        st.writebacks += len(wb_lines)
        st.fills += len(miss_lines)
        return AccessResult(
            read_hits, read_misses, write_hits, write_misses,
            miss_lines, wb_lines,
        )

    def access_block(
        self, loads: Sequence[int], stores: Sequence[int]
    ) -> Tuple[int, int, int, int, List[int], List[int]]:
        """Flat-tuple fast path: :meth:`access_many` minus the wrapper
        object, restructured for speed.

        Returns ``(read_hits, read_misses, write_hits, write_misses,
        miss_lines, writeback_lines)``.  State transitions and statistics
        are *identical* to :meth:`access_many` — the hit path uses a
        single ``pop``-with-default instead of a membership probe plus
        ``pop`` (one hash lookup saved per hit), which leaves the dict in
        exactly the same insertion order.  ``tests/test_properties.py``
        drives both entry points with the same access streams to keep
        them in lockstep.
        """
        line_shift = self._line_shift
        set_mask = self._set_mask
        sets = self._sets
        assoc = self.associativity
        miss_lines: List[int] = []
        wb_lines: List[int] = []
        miss_append = miss_lines.append
        wb_append = wb_lines.append
        missing = _MISSING

        read_hits = 0
        read_misses = 0
        for addr in loads:
            line = addr >> line_shift
            s = sets[line & set_mask]
            prev = s.pop(line, missing)
            if prev is not missing:
                s[line] = prev  # LRU touch, keep dirty bit
                read_hits += 1
            else:
                read_misses += 1
                miss_append(line << line_shift)
                if len(s) >= assoc:
                    victim = next(iter(s))
                    if s.pop(victim):
                        wb_append(victim << line_shift)
                s[line] = False

        write_hits = 0
        write_misses = 0
        for addr in stores:
            line = addr >> line_shift
            s = sets[line & set_mask]
            if s.pop(line, missing) is not missing:
                s[line] = True  # LRU touch + mark dirty
                write_hits += 1
            else:
                write_misses += 1
                miss_append(line << line_shift)
                if len(s) >= assoc:
                    victim = next(iter(s))
                    if s.pop(victim):
                        wb_append(victim << line_shift)
                s[line] = True

        st = self.stats
        st.read_accesses += read_hits + read_misses
        st.read_misses += read_misses
        st.write_accesses += write_hits + write_misses
        st.write_misses += write_misses
        st.writebacks += len(wb_lines)
        st.fills += len(miss_lines)
        return (
            read_hits, read_misses, write_hits, write_misses,
            miss_lines, wb_lines,
        )

    def access(self, addr: int, is_store: bool = False) -> bool:
        """Single-access convenience path (tests, tools); returns hit."""
        if is_store:
            result = self.access_many((), (addr,))
            return result.write_hits == 1
        result = self.access_many((addr,), ())
        return result.read_hits == 1

    # -- reconfiguration ----------------------------------------------------

    def flush(self) -> List[int]:
        """Invalidate everything; return dirty line addresses written back."""
        line_shift = self._line_shift
        dirty = [
            line << line_shift
            for s in self._sets
            for line, d in s.items()
            if d
        ]
        for s in self._sets:
            s.clear()
        self.stats.flushes += 1
        self.stats.flushed_dirty_lines += len(dirty)
        self.stats.writebacks += len(dirty)
        return dirty

    def resize(self, new_size: int) -> List[int]:
        """Reconfigure to ``new_size``; returns dirty lines written back.

        Selective-sets semantics: shrinking disables the high-numbered set
        arrays, so their lines are flushed (dirty ones written back) while
        lines in surviving sets remain resident and reachable (their new
        index bits equal their old ones).  Growing re-enables arrays; a
        resident line stays reachable only if its index under the wider
        mask still points at the array it occupies — others are flushed.
        This matches the paper's cost model (§2.1: "dirty cache lines must
        be written back") without the full-flush pessimism.

        Resizing to the current size is a no-op.
        """
        if new_size not in self.sizes:
            raise ValueError(
                f"{self.name}: size {new_size} not in {self.sizes}"
            )
        if new_size == self.size:
            return []
        self.stats.resizes += 1
        if self.resize_policy == "flush":
            dirty = self.flush()
            self._configure(new_size)
            return dirty
        old_sets = self._sets
        line_shift = self._line_shift
        new_n_sets = new_size // (self.line_size * self.associativity)
        new_mask = new_n_sets - 1
        dirty: List[int] = []
        invalidated = 0
        if new_n_sets < len(old_sets):
            # Shrink: sets [new_n_sets:] are disabled and flushed.
            surviving = old_sets[:new_n_sets]
            for s in old_sets[new_n_sets:]:
                for line, is_dirty in s.items():
                    if is_dirty:
                        dirty.append(line << line_shift)
                    else:
                        invalidated += 1
        else:
            # Grow: keep lines whose widened index matches their array.
            surviving = old_sets + [
                dict() for _ in range(new_n_sets - len(old_sets))
            ]
            for index, s in enumerate(old_sets):
                stale = [
                    line for line in s if (line & new_mask) != index
                ]
                for line in stale:
                    if s.pop(line):
                        dirty.append(line << line_shift)
                    else:
                        invalidated += 1
        self.size = new_size
        self._sets = surviving
        self._set_mask = new_mask
        self.stats.flushes += 1
        self.stats.flushed_dirty_lines += len(dirty)
        self.stats.writebacks += len(dirty)
        return dirty

    def __repr__(self) -> str:
        return (
            f"Cache({self.name!r}, size={self.size}, line={self.line_size}, "
            f"assoc={self.associativity}, sets={self.n_sets})"
        )
