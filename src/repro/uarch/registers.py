"""Hardware support for software-driven reconfiguration (paper §3.4).

Each configurable unit exposes a *control register*; software changes a
unit's configuration by writing the register through a special instruction
(modelled as :meth:`ControlRegisterFile.write`).  A per-CU hardware counter
remembers the last reconfiguration time; requests arriving before the CU's
reconfiguration interval has elapsed are silently ignored, freeing software
from tracking minimum intervals — the mechanism the paper relies on to make
naive tuning code safe.
"""

from __future__ import annotations

from typing import Dict, Optional


class ReconfigurationGuard:
    """Per-CU last-reconfiguration counters + minimum-interval enforcement.

    Time is measured in retired instructions (the paper quotes
    reconfiguration intervals in instructions).  The first request for a CU
    is always allowed.
    """

    def __init__(self) -> None:
        self._intervals: Dict[str, int] = {}
        self._last: Dict[str, Optional[int]] = {}
        self.denied: Dict[str, int] = {}
        self.granted: Dict[str, int] = {}

    def register(self, cu_name: str, interval: int) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self._intervals[cu_name] = interval
        self._last[cu_name] = None
        self.denied[cu_name] = 0
        self.granted[cu_name] = 0

    def interval(self, cu_name: str) -> int:
        return self._intervals[cu_name]

    def last_reconfiguration(self, cu_name: str) -> Optional[int]:
        return self._last[cu_name]

    def request(self, cu_name: str, now: int) -> bool:
        """Ask to reconfigure ``cu_name`` at instruction-time ``now``.

        Grants (and records the new timestamp) iff at least the CU's
        reconfiguration interval has elapsed since the last grant.
        """
        if cu_name not in self._intervals:
            raise KeyError(f"unregistered CU {cu_name!r}")
        last = self._last[cu_name]
        if last is not None and now - last < self._intervals[cu_name]:
            self.denied[cu_name] += 1
            return False
        self._last[cu_name] = now
        self.granted[cu_name] += 1
        return True

    def would_grant(self, cu_name: str, now: int) -> bool:
        """Check admissibility without consuming the request."""
        last = self._last[cu_name]
        return last is None or now - last >= self._intervals[cu_name]


class ControlRegisterFile:
    """Architectural control registers: one setting index per CU."""

    def __init__(self) -> None:
        self._registers: Dict[str, int] = {}
        self.writes = 0

    def define(self, cu_name: str, initial: int = 0) -> None:
        self._registers[cu_name] = initial

    def read(self, cu_name: str) -> int:
        return self._registers[cu_name]

    def write(self, cu_name: str, value: int) -> None:
        if cu_name not in self._registers:
            raise KeyError(f"undefined control register {cu_name!r}")
        self._registers[cu_name] = value
        self.writes += 1

    def as_dict(self) -> Dict[str, int]:
        return dict(self._registers)
