"""Configurable units (CUs).

A CU is a hardware resource with a small set of legal settings and a
reconfiguration interval that amortises its reconfiguration overhead
(paper §2.1).  The evaluation uses two cache-size CUs (L1D: 64/32/16/8 KB at
a 100 K-instruction interval; L2: 1 M/512 K/256 K/128 K at 1 M — both scaled
in the reproduction); the issue-queue and reorder-buffer CUs implement the
units the paper reports as work in progress (§4.1), used by the multi-CU
extension experiments.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.uarch.cache import Cache
from repro.uarch.timing import TimingModel


@dataclass(frozen=True)
class ReconfigCost:
    """Overhead of one applied reconfiguration.

    ``writeback_lines`` carries the flushed dirty line addresses so the
    machine model can route them into the next hierarchy level.
    """

    dirty_lines: int = 0
    drain_cycles: float = 0.0
    writeback_lines: Tuple[int, ...] = ()


class ConfigurableUnit(abc.ABC):
    """A resource whose setting can be changed through a control register.

    Settings are indexed 0..n-1 with index 0 the *maximum* (baseline)
    setting; policies walk indices, the hardware interprets them.
    """

    def __init__(
        self,
        name: str,
        settings: Sequence[object],
        reconfiguration_interval: int,
    ):
        if not settings:
            raise ValueError(f"CU {name!r} needs at least one setting")
        if reconfiguration_interval < 0:
            raise ValueError(
                f"CU {name!r}: interval must be >= 0, "
                f"got {reconfiguration_interval}"
            )
        self.name = name
        self.settings: Tuple[object, ...] = tuple(settings)
        self.reconfiguration_interval = reconfiguration_interval
        self._current_index = 0
        #: Applied setting changes over the CU's lifetime.
        self.applies = 0
        #: Requests for the already-current setting (free, not a
        #: reconfiguration) — the "ignored by the hardware" counter the
        #: telemetry summary reports alongside applied/denied.
        self.noop_applies = 0

    @property
    def current_index(self) -> int:
        return self._current_index

    @property
    def current_setting(self) -> object:
        return self.settings[self._current_index]

    @property
    def n_settings(self) -> int:
        return len(self.settings)

    def apply(self, index: int) -> ReconfigCost:
        """Switch to setting ``index``; returns the overhead incurred.

        Re-applying the current index is free (idempotent).
        """
        if not 0 <= index < len(self.settings):
            raise IndexError(
                f"CU {self.name!r}: setting index {index} out of range "
                f"0..{len(self.settings) - 1}"
            )
        if index == self._current_index:
            self.noop_applies += 1
            return ReconfigCost()
        cost = self._reconfigure(index)
        self._current_index = index
        self.applies += 1
        return cost

    @abc.abstractmethod
    def _reconfigure(self, index: int) -> ReconfigCost:
        """Perform the hardware-side state change."""

    def describe_setting(self, index: int) -> str:
        return str(self.settings[index])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"setting={self.describe_setting(self._current_index)}, "
            f"interval={self.reconfiguration_interval})"
        )


def _format_bytes(n: int) -> str:
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}MB"
    if n >= 1 << 10 and n % (1 << 10) == 0:
        return f"{n >> 10}KB"
    return f"{n}B"


class CacheSizeCU(ConfigurableUnit):
    """Size-adaptable cache: settings are capacities, largest first."""

    def __init__(self, cache: Cache, reconfiguration_interval: int):
        super().__init__(cache.name, cache.sizes, reconfiguration_interval)
        self.cache = cache
        self._current_index = cache.sizes.index(cache.size)

    def _reconfigure(self, index: int) -> ReconfigCost:
        dirty = self.cache.resize(self.settings[index])
        return ReconfigCost(dirty_lines=len(dirty), writeback_lines=tuple(dirty))

    def describe_setting(self, index: int) -> str:
        return _format_bytes(self.settings[index])


class IssueQueueCU(ConfigurableUnit):
    """Resizable issue queue (extension CU; low reconfiguration overhead).

    Shrinking only requires draining in-flight entries, so the interval is
    orders of magnitude smaller than a cache's (paper §2.1 cites thousands
    of instructions for scheduler structures).
    """

    DEFAULT_SIZES = (64, 48, 32, 16)

    def __init__(
        self,
        timing: TimingModel,
        reconfiguration_interval: int,
        sizes: Sequence[int] = DEFAULT_SIZES,
        drain_cycles: float = 32.0,
    ):
        super().__init__("IQ", sizes, reconfiguration_interval)
        self.timing = timing
        self.drain_cycles = drain_cycles
        timing.set_issue_queue_size(self.settings[0])

    def _reconfigure(self, index: int) -> ReconfigCost:
        self.timing.set_issue_queue_size(self.settings[index])
        return ReconfigCost(drain_cycles=self.drain_cycles)

    def describe_setting(self, index: int) -> str:
        return f"{self.settings[index]}-entry"


class ReorderBufferCU(ConfigurableUnit):
    """Resizable reorder buffer (extension CU)."""

    DEFAULT_SIZES = (64, 48, 32, 16)

    def __init__(
        self,
        timing: TimingModel,
        reconfiguration_interval: int,
        sizes: Sequence[int] = DEFAULT_SIZES,
        drain_cycles: float = 48.0,
    ):
        super().__init__("ROB", sizes, reconfiguration_interval)
        self.timing = timing
        self.drain_cycles = drain_cycles
        timing.set_rob_size(self.settings[0])

    def _reconfigure(self, index: int) -> ReconfigCost:
        self.timing.set_rob_size(self.settings[index])
        return ReconfigCost(drain_cycles=self.drain_cycles)

    def describe_setting(self, index: int) -> str:
        return f"{self.settings[index]}-entry"
