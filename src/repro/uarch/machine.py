"""The machine model: consumes block events, produces time and energy.

This is the reproduction's substitute for Dynamic SimpleScalar's simulated
hardware: it owns the cache hierarchy, branch predictor, timing model,
energy model, configurable units, control registers, and the
reconfiguration-interval guard (paper §3.4).  Adaptation policies interact
with it only through :meth:`request_reconfiguration` — the "special
instruction writing a control register" of the paper — and through
snapshots for measuring a configuration's quality.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.energy.model import EnergyModel
from repro.obs.events import (
    CACHE_RESIZE,
    NULL_TELEMETRY,
    RECONFIG_APPLIED,
    RECONFIG_DENIED,
)
from repro.trace.events import BlockEvent
from repro.uarch.cu import ConfigurableUnit
from repro.uarch.hierarchy import CacheHierarchy
from repro.uarch.branch import BimodalPredictor
from repro.uarch.registers import ControlRegisterFile, ReconfigurationGuard
from repro.uarch.timing import TimingModel


class MachineSnapshot:
    """Immutable copy of the machine's cumulative counters.

    Policies snapshot at a hotspot entry / interval start and subtract at
    the exit / interval end to obtain per-invocation measurements.
    """

    __slots__ = (
        "instructions",
        "cycles",
        "l1d_energy_nj",
        "l2_energy_nj",
        "l1d_dynamic_nj",
        "l2_dynamic_nj",
        "memory_nj",
        "l1d_accesses",
        "l1d_misses",
        "l2_accesses",
        "l2_misses",
        "pipeline_nj",
    )

    def __init__(self, machine: "MachineModel"):
        self.instructions = machine.instructions
        self.cycles = machine.cycles
        energy = machine.energy
        self.l1d_energy_nj = energy.l1d.total_nj
        self.l2_energy_nj = energy.l2.total_nj
        self.l1d_dynamic_nj = energy.l1d.dynamic_nj
        self.l2_dynamic_nj = energy.l2.dynamic_nj
        self.memory_nj = energy.memory_nj
        l1_stats = machine.hierarchy.l1d.stats
        l2_stats = machine.hierarchy.l2.stats
        self.l1d_accesses = l1_stats.accesses
        self.l1d_misses = l1_stats.misses
        self.l2_accesses = l2_stats.accesses
        self.l2_misses = l2_stats.misses
        self.pipeline_nj = {
            name: component.energy_nj
            for name, component in energy.pipeline.items()
        }

    def delta(self, earlier: "MachineSnapshot") -> "SnapshotDelta":
        return SnapshotDelta(earlier, self)


class SnapshotDelta:
    """Difference between two snapshots: one measurement window."""

    __slots__ = (
        "instructions",
        "cycles",
        "l1d_energy_nj",
        "l2_energy_nj",
        "l1d_dynamic_nj",
        "l2_dynamic_nj",
        "memory_nj",
        "l1d_accesses",
        "l1d_misses",
        "l2_accesses",
        "l2_misses",
        "pipeline_nj",
    )

    def __init__(self, start: MachineSnapshot, end: MachineSnapshot):
        self.instructions = end.instructions - start.instructions
        self.cycles = end.cycles - start.cycles
        self.l1d_energy_nj = end.l1d_energy_nj - start.l1d_energy_nj
        self.l2_energy_nj = end.l2_energy_nj - start.l2_energy_nj
        self.l1d_dynamic_nj = end.l1d_dynamic_nj - start.l1d_dynamic_nj
        self.l2_dynamic_nj = end.l2_dynamic_nj - start.l2_dynamic_nj
        self.memory_nj = end.memory_nj - start.memory_nj
        self.l1d_accesses = end.l1d_accesses - start.l1d_accesses
        self.l1d_misses = end.l1d_misses - start.l1d_misses
        self.l2_accesses = end.l2_accesses - start.l2_accesses
        self.l2_misses = end.l2_misses - start.l2_misses
        self.pipeline_nj = {
            name: end.pipeline_nj[name] - start.pipeline_nj.get(name, 0.0)
            for name in end.pipeline_nj
        }

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    def tuning_energy_metric(self, cu_name: str, machine: "MachineModel") -> float:
        """Energy attributable to a CU's configuration choice in this window.

        For the L1D CU: its own energy plus the L2 dynamic energy its misses
        induce.  For the L2 CU: its own energy plus memory energy.  This is
        the quantity the tuning algorithms minimise ("most energy-efficient
        configuration", paper §3.2.2) — a downsizing that merely pushes
        energy downstream must not win.
        """
        if cu_name == machine.l1d_cu_name:
            return self.l1d_energy_nj + self.l2_dynamic_nj
        if cu_name == machine.l2_cu_name:
            return self.l2_energy_nj + self.memory_nj
        if cu_name in self.pipeline_nj:
            # Pipeline CUs (IQ/ROB extension): their own per-cycle energy
            # is the direct cost of the setting.
            return self.pipeline_nj[cu_name]
        raise KeyError(f"no tuning metric for CU {cu_name!r}")


class ReconfigurationRecord:
    """One granted reconfiguration, for logs and Table 6 accounting."""

    __slots__ = ("at_instructions", "cu", "from_index", "to_index", "actor")

    def __init__(self, at_instructions, cu, from_index, to_index, actor):
        self.at_instructions = at_instructions
        self.cu = cu
        self.from_index = from_index
        self.to_index = to_index
        self.actor = actor

    def __repr__(self) -> str:
        return (
            f"Reconfig(@{self.at_instructions}, {self.cu}: "
            f"{self.from_index}->{self.to_index}, by {self.actor})"
        )


class MachineModel:
    """Simulated hardware platform."""

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        predictor: BimodalPredictor,
        timing: TimingModel,
        energy: EnergyModel,
        cus: Dict[str, ConfigurableUnit],
        record_reconfigurations: bool = False,
    ):
        self.hierarchy = hierarchy
        self.predictor = predictor
        self.timing = timing
        self.energy = energy
        self.cus = dict(cus)
        self.registers = ControlRegisterFile()
        self.guard = ReconfigurationGuard()
        for name, cu in self.cus.items():
            self.registers.define(name, cu.current_index)
            self.guard.register(name, cu.reconfiguration_interval)
        self.instructions = 0
        self.cycles = 0.0
        self.applied_reconfigurations: Dict[str, int] = {
            name: 0 for name in self.cus
        }
        self.denied_reconfigurations: Dict[str, int] = {
            name: 0 for name in self.cus
        }
        self.reconfiguration_log: Optional[List[ReconfigurationRecord]] = (
            [] if record_reconfigurations else None
        )
        self.l1d_cu_name = hierarchy.l1d.name
        self.l2_cu_name = hierarchy.l2.name
        #: Telemetry sink; the VM swaps in a live session when tracing.
        self.telemetry = NULL_TELEMETRY
        #: Optional :class:`repro.faults.FaultPlan` — when set, its
        #: ``reconfig_deny`` site injects denials on top of the guard.
        self.fault_plan = None

    # -- execution hot path -------------------------------------------------

    def consume(self, event: BlockEvent) -> float:
        """Run one block through the machine; returns its cycles."""
        traffic = self.hierarchy.data_access(event.loads, event.stores)
        mispredicts = 0
        branch_pc = event.branch_pc
        if branch_pc is not None and self.predictor.predict_and_update(
            branch_pc, event.taken
        ):
            mispredicts = 1
        l1 = traffic.l1_result
        l2 = traffic.l2_result
        l2_misses = l2.misses if l2 is not None else 0
        cycles = self.timing.cycles_for_block(
            event.n_insns, l1.misses, l2_misses, mispredicts, event.serialized
        )
        energy = self.energy
        # Fills count as writes into the cache (the refill writes the line).
        energy.l1d.add_accesses(
            l1.read_hits + l1.read_misses,
            l1.write_hits + l1.write_misses + l1.misses,
        )
        if l2 is not None:
            energy.l2.add_accesses(
                l2.read_hits + l2.read_misses,
                l2.write_hits + l2.write_misses + l2.misses,
            )
            energy.add_memory_accesses(l2_misses + len(l2.writeback_lines))
        energy.add_cycles(cycles)
        self.instructions += event.n_insns
        self.cycles += cycles
        return cycles

    def on_method_entry(self, method: str, code_footprint: int) -> float:
        """Account instruction-fetch effects of entering ``method``."""
        misses = self.hierarchy.instruction_fetch(method, code_footprint)
        if not misses:
            return 0.0
        params = self.timing.params
        cycles = misses * params.l2_hit_latency / params.mlp
        self.energy.l2.add_accesses(misses, 0)
        self.energy.add_cycles(cycles)
        self.cycles += cycles
        return cycles

    # -- reconfiguration ------------------------------------------------------

    def request_reconfiguration(
        self, cu_name: str, index: int, actor: str = "policy"
    ) -> bool:
        """Software reconfiguration request (the special instruction).

        Returns True iff the CU now holds ``index``.  Requests for the
        current setting succeed for free without consuming the guard;
        requests inside the CU's reconfiguration interval are silently
        denied (paper §3.4) and return False.  An installed
        :class:`~repro.faults.FaultPlan` with ``reconfig_deny`` > 0 can
        deny additional requests the guard would have granted — policies
        must already tolerate False here, so an injected denial simply
        delays the configuration change to a later invocation.
        """
        cu = self.cus[cu_name]
        if index == cu.current_index:
            return True
        telemetry = self.telemetry
        plan = self.fault_plan
        if plan is not None and plan.decide(
            "reconfig_deny", (cu_name, self.instructions)
        ):
            self.denied_reconfigurations[cu_name] += 1
            if telemetry.enabled:
                telemetry.emit(
                    RECONFIG_DENIED,
                    ts=self.instructions,
                    track=f"CU:{cu_name}",
                    actor=actor,
                    wanted=cu.describe_setting(index),
                    injected=True,
                )
                telemetry.metrics.counter(
                    f"machine.reconfigs_denied.{cu_name}"
                ).inc()
            return False
        if not self.guard.request(cu_name, self.instructions):
            self.denied_reconfigurations[cu_name] += 1
            if telemetry.enabled:
                telemetry.emit(
                    RECONFIG_DENIED,
                    ts=self.instructions,
                    track=f"CU:{cu_name}",
                    actor=actor,
                    wanted=cu.describe_setting(index),
                )
                telemetry.metrics.counter(
                    f"machine.reconfigs_denied.{cu_name}"
                ).inc()
            return False
        from_index = cu.current_index
        cost = cu.apply(index)
        self.registers.write(cu_name, index)
        self.applied_reconfigurations[cu_name] += 1
        if telemetry.enabled:
            is_cache = cu_name in (self.l1d_cu_name, self.l2_cu_name)
            telemetry.emit(
                CACHE_RESIZE if is_cache else RECONFIG_APPLIED,
                ts=self.instructions,
                track=f"CU:{cu_name}",
                actor=actor,
                setting_from=cu.describe_setting(from_index),
                setting_to=cu.describe_setting(index),
                dirty_lines=cost.dirty_lines,
            )
            telemetry.metrics.counter(
                f"machine.reconfigs_applied.{cu_name}"
            ).inc()
            telemetry.metrics.gauge(f"machine.setting.{cu_name}").set(index)
        self._charge_reconfiguration(cu_name, cost)
        if self.reconfiguration_log is not None:
            self.reconfiguration_log.append(
                ReconfigurationRecord(
                    self.instructions, cu_name, from_index, index, actor
                )
            )
        return True

    def _charge_reconfiguration(self, cu_name: str, cost) -> None:
        cycles = self.timing.flush_penalty(cost.dirty_lines) + cost.drain_cycles
        if cu_name == self.l1d_cu_name:
            model = self.energy.l1d
            model.add_reconfig_writebacks(cost.dirty_lines)
            model.set_size(self.hierarchy.l1d.size)
            if cost.writeback_lines:
                # Dirty L1D lines land in the L2.
                result = self.hierarchy.l2.access_many(
                    (), cost.writeback_lines
                )
                self.energy.l2.add_accesses(0, result.accesses + result.misses)
                self.energy.add_memory_accesses(
                    result.misses + len(result.writeback_lines)
                )
                self.hierarchy.memory_writes += len(result.writeback_lines)
        elif cu_name == self.l2_cu_name:
            model = self.energy.l2
            model.add_reconfig_writebacks(cost.dirty_lines)
            model.set_size(self.hierarchy.l2.size)
            if cost.writeback_lines:
                # Dirty L2 lines go to main memory.
                self.hierarchy.memory_writes += len(cost.writeback_lines)
                self.energy.add_memory_accesses(len(cost.writeback_lines))
        else:
            component = self.energy.pipeline.get(cu_name)
            if component is not None:
                cu = self.cus[cu_name]
                component.set_entries(int(cu.current_setting))
        if cycles:
            self.energy.add_cycles(cycles)
            self.cycles += cycles

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> MachineSnapshot:
        return MachineSnapshot(self)

    def cu_setting(self, cu_name: str) -> object:
        return self.cus[cu_name].current_setting

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles > 0 else 0.0

    def __repr__(self) -> str:
        settings = ", ".join(
            f"{name}={cu.describe_setting(cu.current_index)}"
            for name, cu in self.cus.items()
        )
        return (
            f"MachineModel(insns={self.instructions}, "
            f"cycles={self.cycles:.0f}, ipc={self.ipc:.3f}, {settings})"
        )
