"""Analytic timing model.

Stands in for Dynamic SimpleScalar's out-of-order pipeline.  Cycles for a
block are the issue-limited base plus miss and misprediction penalties;
memory-level parallelism overlaps part of each miss's latency except for
dependence-serialised (pointer-chasing) blocks.  Constants default to the
paper's Table 2 machine (4-wide, 10-cycle L2 hit, 3-cycle mispredict) with
a conventional ~100-cycle memory latency for the 1 GHz part.

The issue-queue / reorder-buffer extension CUs modulate the effective issue
width: shrinking those structures lowers sustainable ILP, which is how their
(small) performance cost manifests at this abstraction level.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimingParams:
    """Constants of the analytic cycle model."""

    issue_width: int = 4
    #: Base CPI floor from dependences even with a perfect memory system.
    base_cpi: float = 0.4
    l1_hit_latency: int = 1
    l2_hit_latency: int = 10
    memory_latency: int = 100
    mispredict_penalty: int = 3
    #: Average overlapped misses (memory-level parallelism divisor).
    mlp: float = 2.0
    #: Cycles to write one dirty line back during a cache flush.
    flush_cycles_per_line: float = 4.0

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ValueError("issue_width must be >= 1")
        if self.mlp < 1.0:
            raise ValueError("mlp must be >= 1.0")
        if self.base_cpi <= 0:
            raise ValueError("base_cpi must be positive")


class TimingModel:
    """Computes cycles per block event and tracks pipeline-resource scaling."""

    #: Full-size pipeline resources (paper Table 2: 64-RUU, 64-entry IFQ).
    FULL_ISSUE_QUEUE = 64
    FULL_ROB = 64

    def __init__(self, params: TimingParams = None):
        self.params = params or TimingParams()
        self._issue_queue_size = self.FULL_ISSUE_QUEUE
        self._rob_size = self.FULL_ROB
        self._ilp_factor = 1.0
        p = self.params
        # Pre-derived constants for the hot path.
        self._cycles_per_insn = max(1.0 / p.issue_width, p.base_cpi)

    # -- pipeline-resource CUs (extension) --------------------------------

    def set_issue_queue_size(self, size: int) -> None:
        self._issue_queue_size = size
        self._update_ilp()

    def set_rob_size(self, size: int) -> None:
        self._rob_size = size
        self._update_ilp()

    def _update_ilp(self) -> None:
        # Sustainable ILP scales with the square root of window size
        # (classic Riseman/Foster-style rule of thumb); normalise to 1.0 at
        # full size and floor at half throughput.
        iq = (self._issue_queue_size / self.FULL_ISSUE_QUEUE) ** 0.5
        rob = (self._rob_size / self.FULL_ROB) ** 0.5
        self._ilp_factor = max(0.5, min(iq, rob))

    @property
    def ilp_factor(self) -> float:
        return self._ilp_factor

    # -- cycle computation --------------------------------------------------

    def cycles_for_block(
        self,
        n_insns: int,
        l1d_misses: int,
        l2_misses: int,
        mispredicts: int,
        serialized: bool = False,
    ) -> float:
        """Cycles to execute one block.

        ``l1d_misses`` pay an L2 round trip, ``l2_misses`` additionally pay
        the memory latency.  Misses overlap by the MLP factor unless the
        block is dependence-serialised.
        """
        p = self.params
        cycles = n_insns * self._cycles_per_insn / self._ilp_factor
        if l1d_misses or l2_misses:
            overlap = 1.0 if serialized else p.mlp
            cycles += l1d_misses * (p.l2_hit_latency / overlap)
            cycles += l2_misses * (p.memory_latency / overlap)
        if mispredicts:
            cycles += mispredicts * p.mispredict_penalty
        return cycles

    def hot_constants(self) -> "tuple":
        """The per-block cost constants, pre-fetched for the fast kernel.

        Returns ``(cycles_per_insn, l2_hit_latency, memory_latency,
        mispredict_penalty, mlp)``.  These are fixed for a run —
        :class:`TimingParams` is never mutated after construction — so the
        fast kernel binds them as loop locals once per quantum.
        ``ilp_factor`` is deliberately *not* included: pipeline CUs change
        it mid-run, so the hot loop must read ``self._ilp_factor`` live.
        """
        p = self.params
        return (
            self._cycles_per_insn,
            p.l2_hit_latency,
            p.memory_latency,
            p.mispredict_penalty,
            p.mlp,
        )

    def flush_penalty(self, dirty_lines: int) -> float:
        """Stall cycles for writing back ``dirty_lines`` during a resize."""
        return dirty_lines * self.params.flush_cycles_per_line

    def peak_ipc(self) -> float:
        """IPC with a perfect memory system at current resource scaling."""
        return self._ilp_factor / self._cycles_per_insn
