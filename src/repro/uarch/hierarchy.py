"""Cache hierarchy composition.

Wires L1D and the unified L2 together: L1D miss lines are read from L2, L1D
dirty victims are written to L2, L2 misses/victims go to memory.  The L1
instruction cache is modelled analytically at method granularity
(:class:`InstructionCacheModel`) — the L1I is not a configurable unit in the
paper and only matters here as a source of L2 traffic (DESIGN.md §6).
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

from repro.uarch.cache import AccessResult, Cache


class InstructionCacheModel:
    """Method-granularity L1I model.

    Keeps an LRU set of resident method code footprints within the L1I
    capacity; a method entry whose code is not resident charges
    ``footprint / line_size`` instruction-fetch misses (L2 reads).  This is
    the cold/conflict behaviour that matters at trace granularity: method
    working sets churning through a 64 KB L1I.
    """

    def __init__(self, size: int = 64 * 1024, line_size: int = 64):
        if size <= 0 or line_size <= 0:
            raise ValueError("size and line_size must be positive")
        self.size = size
        self.line_size = line_size
        self._resident: Dict[str, int] = {}
        self._occupied = 0
        self.fetch_misses = 0
        self.method_switches = 0

    def touch(self, method: str, footprint: int) -> int:
        """Record entry into ``method``; returns L1I line misses charged."""
        self.method_switches += 1
        resident = self._resident
        if method in resident:
            resident[method] = resident.pop(method)  # LRU refresh
            return 0
        footprint = min(footprint, self.size)
        while self._occupied + footprint > self.size and resident:
            oldest = next(iter(resident))
            self._occupied -= resident.pop(oldest)
        resident[method] = footprint
        self._occupied += footprint
        misses = max(1, footprint // self.line_size)
        self.fetch_misses += misses
        return misses

    def reset(self) -> None:
        self._resident.clear()
        self._occupied = 0


class CacheHierarchy:
    """L1D + unified L2 + memory, with writeback propagation."""

    def __init__(
        self,
        l1d: Cache,
        l2: Cache,
        l1i: Optional[InstructionCacheModel] = None,
    ):
        self.l1d = l1d
        self.l2 = l2
        self.l1i = l1i or InstructionCacheModel()
        self.memory_reads = 0
        self.memory_writes = 0

    def data_access(self, loads, stores) -> "HierarchyTraffic":
        """Run one block's data references through the hierarchy."""
        l1 = self.l1d.access_many(loads, stores)
        traffic = HierarchyTraffic(l1_result=l1)
        if l1.miss_lines or l1.writeback_lines:
            l2 = self.l2.access_many(l1.miss_lines, l1.writeback_lines)
            traffic.l2_result = l2
            self.memory_reads += l2.read_misses + l2.write_misses
            self.memory_writes += len(l2.writeback_lines)
        return traffic

    def instruction_fetch(self, method: str, footprint: int) -> int:
        """Account entry to ``method``; cold code is fetched through L2.

        Returns the number of L2 reads performed.
        """
        misses = self.l1i.touch(method, footprint)
        if misses:
            # Fetch the cold lines through the unified L2; use the code
            # segment addresses so instruction lines occupy L2 honestly.
            # We approximate with sequential lines from a per-method hash
            # base inside a dedicated code window.  CRC32 rather than
            # hash(): builtin str hashing is salted per process
            # (PYTHONHASHSEED), which would make results differ between
            # processes and break golden-trace fixtures and the
            # persistent result store's cross-process reuse.
            base = (zlib.crc32(method.encode("utf-8")) & 0xFFFF) << 12
            line = self.l2.line_size
            addrs = [0x4000_0000 + base + i * line for i in range(misses)]
            result = self.l2.access_many(addrs, ())
            self.memory_reads += result.read_misses
            self.memory_writes += len(result.writeback_lines)
        return misses

    def flush_l1d(self):
        """Flush L1D (resize path); dirty lines are written into L2."""
        dirty = self.l1d.flush()
        if dirty:
            result = self.l2.access_many((), dirty)
            self.memory_reads += result.read_misses
            self.memory_writes += len(result.writeback_lines)
        return dirty


class HierarchyTraffic:
    """Per-block hierarchy outcome consumed by the timing/energy models."""

    __slots__ = ("l1_result", "l2_result")

    def __init__(
        self,
        l1_result: AccessResult,
        l2_result: Optional[AccessResult] = None,
    ):
        self.l1_result = l1_result
        self.l2_result = l2_result

    @property
    def l1_misses(self) -> int:
        return self.l1_result.misses

    @property
    def l2_misses(self) -> int:
        return self.l2_result.misses if self.l2_result else 0
