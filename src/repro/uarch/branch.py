"""Branch prediction.

The baseline machine (paper Table 2) has a 2K-entry combined predictor with
a 3-cycle misprediction penalty.  The reproduction models it as a 2K-entry
bimodal table of 2-bit saturating counters — at block granularity only the
*misprediction count* feeds the timing model, and a bimodal table already
captures the relevant structure (loop back edges predict well, random
data-dependent branches mispredict proportionally to their bias).
"""

from __future__ import annotations


class BimodalPredictor:
    """2-bit saturating-counter branch predictor.

    Counters: 0/1 predict not-taken, 2/3 predict taken; initialised to
    weakly-taken (2), which favours loop back edges from cold start.
    """

    def __init__(self, entries: int = 2048, init_counter: int = 2):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(
                f"entries must be a positive power of two, got {entries}"
            )
        if not 0 <= init_counter <= 3:
            raise ValueError(f"init_counter must be in [0, 3]: {init_counter}")
        self.entries = entries
        self._mask = entries - 1
        self._table = [init_counter] * entries
        self.lookups = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, train on the outcome, and return
        whether the prediction was wrong."""
        index = (pc >> 2) & self._mask
        table = self._table
        counter = table[index]
        mispredicted = (counter >= 2) != taken
        if taken:
            if counter < 3:
                table[index] = counter + 1
        else:
            if counter > 0:
                table[index] = counter - 1
        self.lookups += 1
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0

    def reset_stats(self) -> None:
        self.lookups = 0
        self.mispredictions = 0

    def __repr__(self) -> str:
        return (
            f"BimodalPredictor(entries={self.entries}, "
            f"mispredict_rate={self.misprediction_rate:.4f})"
        )
