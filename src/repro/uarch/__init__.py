"""Microarchitecture substrate.

Stands in for Dynamic SimpleScalar (paper §4.1): a resizable set-associative
write-back cache model, a bimodal branch predictor, an analytic timing model,
and the configurable-unit (CU) plumbing the paper's framework manages —
control registers plus the per-CU reconfiguration-interval guard of §3.4.
"""

from repro.uarch.cache import AccessResult, Cache, CacheStats
from repro.uarch.branch import BimodalPredictor
from repro.uarch.hierarchy import CacheHierarchy, InstructionCacheModel
from repro.uarch.timing import TimingModel, TimingParams
from repro.uarch.registers import ControlRegisterFile, ReconfigurationGuard
from repro.uarch.cu import (
    CacheSizeCU,
    ConfigurableUnit,
    IssueQueueCU,
    ReorderBufferCU,
)
from repro.uarch.machine import MachineModel, MachineSnapshot

__all__ = [
    "AccessResult",
    "BimodalPredictor",
    "Cache",
    "CacheHierarchy",
    "CacheSizeCU",
    "CacheStats",
    "ConfigurableUnit",
    "ControlRegisterFile",
    "InstructionCacheModel",
    "IssueQueueCU",
    "MachineModel",
    "MachineSnapshot",
    "ReconfigurationGuard",
    "ReorderBufferCU",
    "TimingModel",
    "TimingParams",
]
