"""Simulation configuration (paper Table 2) and interval scaling.

The paper's interval-like constants — reconfiguration intervals, the BBV
sampling interval, hotspot size bands — are all quoted against ~10^10
-instruction runs.  The reproduction runs a few million synthetic
instructions, so every interval-like constant is multiplied by a common
``scale`` (default 1/100), which preserves every ratio the results depend
on (DESIGN.md §2).  Cache geometries are kept at the paper's values.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

# TuningConfig and BBVConfig live with the code they parameterise (they are
# re-exported here so configuration stays one-stop for users).
from repro.core.tuning import TuningConfig
from repro.phases.bbv import BBVConfig
from repro.energy.model import CacheEnergyModel, EnergyModel, PipelineEnergyModel
from repro.energy.params import (
    CacheEnergySpec,
    DEFAULT_L1D_ENERGY,
    DEFAULT_L2_ENERGY,
    MEMORY_ACCESS_NJ,
)
from repro.uarch.branch import BimodalPredictor
from repro.uarch.cache import Cache
from repro.uarch.cu import CacheSizeCU, ConfigurableUnit, IssueQueueCU, ReorderBufferCU
from repro.uarch.hierarchy import CacheHierarchy, InstructionCacheModel
from repro.uarch.machine import MachineModel
from repro.uarch.timing import TimingModel, TimingParams

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class CacheConfig:
    """Geometry + legal sizes of one configurable cache (Table 2)."""

    name: str
    sizes: Tuple[int, ...]
    line_size: int
    associativity: int
    reconfiguration_interval: int  # unscaled instructions

    @property
    def max_size(self) -> int:
        return max(self.sizes)


from repro.scaling import DEFAULT_INTERVAL_SCALE, STRUCTURE_SCALE

#: Paper Table 2: L1D 64/32/16/8 KB, 2-way, 64 B lines, 100 K-insn
#: interval (capacities divided by STRUCTURE_SCALE).
L1D_CONFIG = CacheConfig(
    name="L1D",
    sizes=(
        64 * KB // STRUCTURE_SCALE,
        32 * KB // STRUCTURE_SCALE,
        16 * KB // STRUCTURE_SCALE,
        8 * KB // STRUCTURE_SCALE,
    ),
    line_size=64,
    associativity=2,
    reconfiguration_interval=100_000,
)

#: Paper Table 2: L2 1 M/512 K/256 K/128 K, 4-way, 128 B lines, 1 M
#: interval (capacities divided by STRUCTURE_SCALE).
L2_CONFIG = CacheConfig(
    name="L2",
    sizes=(
        1 * MB // STRUCTURE_SCALE,
        512 * KB // STRUCTURE_SCALE,
        256 * KB // STRUCTURE_SCALE,
        128 * KB // STRUCTURE_SCALE,
    ),
    line_size=128,
    associativity=4,
    reconfiguration_interval=1_000_000,
)


@dataclass(frozen=True)
class ScaledParameters:
    """All interval-like constants after applying the common scale.

    The hotspot size bands follow the paper's §3.2.1 rule: L1D hotspots are
    50 K–500 K instructions (0.5×–5× the L1D interval), L2 hotspots are
    anything larger.
    """

    scale: float = DEFAULT_INTERVAL_SCALE

    def scaled(self, unscaled: int) -> int:
        return max(1, int(round(unscaled * self.scale)))

    @property
    def l1d_reconfig_interval(self) -> int:
        return self.scaled(L1D_CONFIG.reconfiguration_interval)

    @property
    def l2_reconfig_interval(self) -> int:
        return self.scaled(L2_CONFIG.reconfiguration_interval)

    @property
    def bbv_sampling_interval(self) -> int:
        # Paper §5.2: BBV sampling interval = the L2 reconfiguration interval.
        return self.l2_reconfig_interval

    @property
    def l1d_hotspot_min(self) -> int:
        return self.scaled(50_000)

    @property
    def l1d_hotspot_max(self) -> int:
        return self.scaled(500_000)

    @property
    def l2_hotspot_min(self) -> int:
        return self.l1d_hotspot_max


@dataclass
class MachineConfig:
    """Complete simulated-machine description."""

    l1d: CacheConfig = field(default_factory=lambda: L1D_CONFIG)
    l2: CacheConfig = field(default_factory=lambda: L2_CONFIG)
    l1i_size: int = 64 * KB // STRUCTURE_SCALE
    l1i_line: int = 64
    timing: TimingParams = field(default_factory=TimingParams)
    l1d_energy: CacheEnergySpec = DEFAULT_L1D_ENERGY
    l2_energy: CacheEnergySpec = DEFAULT_L2_ENERGY
    memory_access_nj: float = MEMORY_ACCESS_NJ
    params: ScaledParameters = field(default_factory=ScaledParameters)
    #: Extension CUs (issue queue / reorder buffer); off for the paper's
    #: headline experiments.
    enable_pipeline_cus: bool = False
    iq_reconfig_interval_unscaled: int = 10_000
    rob_reconfig_interval_unscaled: int = 10_000
    record_reconfigurations: bool = False
    #: Cache resize semantics: "selective" (selective-sets hardware, the
    #: default) or "flush" (invalidate everything on resize — the
    #: conservative cost model; see the resize-policy ablation bench).
    resize_policy: str = "selective"


#: Version prefix baked into every fingerprint.  Bump when the meaning of
#: a configuration field changes (so old persistent-store entries stop
#: matching) — see docs/INTERNALS.md §9.
#: v2: deterministic (CRC32) instruction-fetch addressing replaced the
#: PYTHONHASHSEED-salted ``hash()`` base, changing every simulation's L2
#: instruction traffic; ``sim_kernel`` was also added to the config.
FINGERPRINT_VERSION = 2

#: Fingerprint version used only when ``sim_kernel == "turbo"``.  The turbo
#: kernel is tolerance-equivalent rather than bit-identical, so its results
#: must never collide with fast/reference entries in the persistent store —
#: but bumping the shared version would invalidate every existing non-turbo
#: entry.  Keeping v2 for fast/reference and v3 for turbo preserves both
#: properties (existing fingerprints stay byte-identical; turbo gets its
#: own namespace).
TURBO_FINGERPRINT_VERSION = 3

#: Legal values of :attr:`ExperimentConfig.sim_kernel`.
SIM_KERNELS = ("fast", "reference", "turbo")


def canonicalize(obj):
    """Reduce a configuration object to JSON-serialisable primitives.

    Dataclasses become ``{field: value}`` dicts (every field, so new knobs
    are automatically part of the fingerprint), mappings are key-sorted,
    and sequences become lists.  Anything exotic falls back to ``repr``,
    which is stable for the value types configurations hold.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {
            str(key): canonicalize(value)
            for key, value in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [canonicalize(item) for item in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


@dataclass
class ExperimentConfig:
    """One experiment = machine + budgets + scheme knobs."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    tuning: TuningConfig = field(default_factory=TuningConfig)
    bbv: BBVConfig = field(default_factory=BBVConfig)
    max_instructions: int = 6_000_000
    hot_threshold: int = 4
    seed: int = 12345
    #: Which interpreter executes the run: "fast" (the batched, inlined
    #: kernel of :mod:`repro.vm.fastvm`), "reference" (the readable
    #: :class:`repro.vm.vm.VirtualMachine` loop), or "turbo" (the opt-in
    #: vectorized kernel of :mod:`repro.vm.turbovm`).  fast and reference
    #: are proven bit-identical by tests/test_kernel_equivalence.py; turbo
    #: is *statistically* equivalent under the committed tolerance spec
    #: (tests/stat_equivalence.py) and is never selected by default.  The
    #: field is part of the fingerprint so results from different kernels
    #: never collide in the persistent store.
    sim_kernel: str = "fast"
    #: Which RNG stream feeds loop/branch deciders.  "shared" (default,
    #: the historical behaviour) draws trip counts from the same
    #: per-thread Mersenne stream as memory addresses, so skipping *any*
    #: draw shifts every later decision.  "split" gives deciders their own
    #: per-thread stream: control flow becomes a pure function of the
    #: decider stream, independent of how (or whether) address draws are
    #: performed.  The turbo kernel replaces address draws with batched
    #: tables and therefore requires "split"; ``__post_init__`` upgrades
    #: it automatically.  "shared" is omitted from the fingerprint payload
    #: so every pre-existing fingerprint is unchanged.
    decider_stream: str = "shared"

    def __post_init__(self) -> None:
        if self.sim_kernel not in SIM_KERNELS:
            raise ValueError(
                f"sim_kernel must be one of {SIM_KERNELS}, "
                f"got {self.sim_kernel!r}"
            )
        if self.decider_stream not in ("shared", "split"):
            raise ValueError(
                "decider_stream must be 'shared' or 'split', "
                f"got {self.decider_stream!r}"
            )
        if self.sim_kernel == "turbo" and self.decider_stream == "shared":
            # Turbo's statistical-equivalence contract (exact tuning
            # decisions vs. the fast kernel on the same config) is only
            # achievable with an isolated decider stream.
            self.decider_stream = "split"

    def fingerprint(self) -> str:
        """Content hash over *every* nested knob (versioned, hex).

        This is the cache identity used by both the in-process result
        cache and the persistent on-disk store: two configurations with
        equal fingerprints produce identical simulations.  Unlike the old
        private tuple fingerprint, it is derived structurally from the
        dataclass fields, so adding or changing any knob — cache geometry,
        timing constants, energy specs, tuning thresholds — changes the
        hash without anyone having to remember to extend a hand-written
        field list.
        """
        version = (
            TURBO_FINGERPRINT_VERSION
            if self.sim_kernel == "turbo"
            else FINGERPRINT_VERSION
        )
        canonical = canonicalize(self)
        # Backwards-compatible fingerprints: the decider_stream knob only
        # participates in the hash when it is non-default, so every
        # configuration that predates the knob keeps its exact hash.
        if canonical.get("decider_stream") == "shared":
            del canonical["decider_stream"]
        payload = {
            "version": version,
            "config": canonical,
        }
        blob = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def build_machine(config: Optional[MachineConfig] = None) -> MachineModel:
    """Construct a fresh machine model from a configuration."""
    config = config or MachineConfig()
    params = config.params
    l1d_cache = Cache(
        config.l1d.name,
        config.l1d.max_size,
        config.l1d.line_size,
        config.l1d.associativity,
        sizes=config.l1d.sizes,
        resize_policy=config.resize_policy,
    )
    l2_cache = Cache(
        config.l2.name,
        config.l2.max_size,
        config.l2.line_size,
        config.l2.associativity,
        sizes=config.l2.sizes,
        resize_policy=config.resize_policy,
    )
    hierarchy = CacheHierarchy(
        l1d_cache,
        l2_cache,
        InstructionCacheModel(config.l1i_size, config.l1i_line),
    )
    # Reconfiguration intervals are scaled down by `params.scale`, so the
    # per-line flush *stall* is scaled identically — otherwise the
    # overhead-to-interval ratio (the quantity the paper's results depend
    # on) would be inflated by 1/scale.  The writeback *traffic* and its
    # energy remain unscaled: they are per-event costs, not rates.
    timing_params = replace(
        config.timing,
        flush_cycles_per_line=(
            config.timing.flush_cycles_per_line * params.scale
        ),
    )
    timing = TimingModel(timing_params)
    energy = EnergyModel(
        l1d=CacheEnergyModel(
            config.l1d.name,
            config.l1d_energy,
            config.l1d.sizes,
            config.l1d.max_size,
        ),
        l2=CacheEnergyModel(
            config.l2.name,
            config.l2_energy,
            config.l2.sizes,
            config.l2.max_size,
        ),
        memory_access_nj=config.memory_access_nj,
    )
    cus: Dict[str, ConfigurableUnit] = {
        config.l1d.name: CacheSizeCU(
            l1d_cache, params.scaled(config.l1d.reconfiguration_interval)
        ),
        config.l2.name: CacheSizeCU(
            l2_cache, params.scaled(config.l2.reconfiguration_interval)
        ),
    }
    if config.enable_pipeline_cus:
        iq = IssueQueueCU(
            timing, params.scaled(config.iq_reconfig_interval_unscaled)
        )
        rob = ReorderBufferCU(
            timing, params.scaled(config.rob_reconfig_interval_unscaled)
        )
        cus[iq.name] = iq
        cus[rob.name] = rob
        energy.pipeline[iq.name] = PipelineEnergyModel(
            iq.name, TimingModel.FULL_ISSUE_QUEUE, nj_per_cycle_full=0.30
        )
        energy.pipeline[rob.name] = PipelineEnergyModel(
            rob.name, TimingModel.FULL_ROB, nj_per_cycle_full=0.35
        )
    return MachineModel(
        hierarchy,
        BimodalPredictor(entries=2048),
        timing,
        energy,
        cus,
        record_reconfigurations=config.record_reconfigurations,
    )
