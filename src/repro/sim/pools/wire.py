"""Framed-pickle wire format shared by SSHPool and its worker.

One frame = 8-byte big-endian length + pickle blob.  Lives in its own
module so ``python -m repro.sim.pools.ssh_worker`` does not re-import
the worker module through the package ``__init__`` (runpy warns about
that), and so the pool side never imports worker-only code.

The framing is payload-agnostic on purpose: protocol growth (the
optional telemetry-capture element on chunk payloads, the chunk_info
snapshot on replies — docs/INTERNALS.md §15) needs no framing change,
only tuple-arity tolerance at both ends.
"""

from __future__ import annotations

import pickle
import struct
from typing import BinaryIO, Optional

_HEADER = struct.Struct(">Q")


def write_frame(stream: BinaryIO, message: object) -> None:
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(blob)))
    stream.write(blob)
    stream.flush()


def read_frame(stream: BinaryIO) -> Optional[object]:
    """Next message, or None on a clean EOF at a frame boundary."""
    header = stream.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise EOFError("truncated frame header")
    (length,) = _HEADER.unpack(header)
    blob = b""
    while len(blob) < length:
        piece = stream.read(length - len(blob))
        if not piece:
            raise EOFError("truncated frame body")
        blob += piece
    return pickle.loads(blob)
