"""Multi-host SSH backend: per-host warm workers over framed pickles.

:class:`SSHPool` fans chunks out to worker processes reached through a
*transport* — by default ``ssh`` (so one warm store can be fed from
many hosts), or the sshd-less :func:`loopback_transport` that launches
the same worker module locally (used by the conformance suite and CI,
where no sshd exists).  Modeled on the ``Pool``/``ProcessPool``/
``PrunPool`` hierarchy of vusec's instrumentation-infra: the engine
sees one ``Pool``, the transport is a detail.

Host lists come from an iterable of host specs or a *hostfile* (one
``host[:slots]`` per line, ``#`` comments); each slot is one persistent
worker process.  Source sync is explicit: :meth:`SSHPool.push_sources`
builds and runs per-host ``rsync -az`` commands when ``remote_root`` is
configured (start() invokes it once, before spawning workers).

Failure semantics: a worker whose pipe closes mid-request marks the
whole pool broken (the analogue of ``BrokenProcessPool``), the engine
rebuilds through :meth:`Pool.rebuild` and resubmits interrupted cells —
capability flags ``rebuild=True, remote=True``.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import sys
import threading
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

from repro.sim.pools.base import (
    ChunkPayload,
    Pool,
    PoolBrokenError,
    PoolCapabilities,
)
from repro.sim.pools.wire import read_frame, write_frame

Transport = Callable[[str], List[str]]


def ssh_transport(host: str) -> List[str]:
    """Default transport: non-interactive ``ssh`` to the host."""
    return ["ssh", "-o", "BatchMode=yes", host]


def loopback_transport(host: str) -> List[str]:
    """Fake transport: run the worker locally, no sshd involved.

    The empty prefix makes :class:`SSHPool` exec the worker module with
    the current interpreter — the full wire protocol (framed pickles,
    warm-up, crash-at-EOF) is exercised without any network.
    """
    return []


def parse_hostfile(path: Union[str, Path]) -> List[Tuple[str, int]]:
    """``host[:slots]`` per line, ``#`` comments; returns (host, slots)."""
    hosts: List[Tuple[str, int]] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        host, sep, slots = line.rpartition(":")
        if sep and slots.isdigit():
            hosts.append((host, max(1, int(slots))))
        else:
            hosts.append((line, 1))
    if not hosts:
        raise ValueError(f"hostfile {path} names no hosts")
    return hosts


class _SSHWorker:
    """One persistent worker process behind a transport."""

    def __init__(self, host: str, slot: int, command: List[str], env=None):
        self.host = host
        self.slot = slot
        self.proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )

    def request(self, message) -> object:
        write_frame(self.proc.stdin, message)
        reply = read_frame(self.proc.stdout)
        if reply is None:
            raise PoolBrokenError(
                f"ssh worker {self.host}#{self.slot} closed its stream"
            )
        return reply

    def send(self, message) -> None:
        write_frame(self.proc.stdin, message)

    def stop(self, fail_fast: bool) -> None:
        try:
            if not fail_fast and self.proc.poll() is None:
                self.send(("exit",))
                self.proc.wait(timeout=5)
                return
        except (OSError, ValueError, subprocess.TimeoutExpired):
            pass
        self.proc.kill()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass


class SSHPool(Pool):
    """Fan experiment chunks out to warm workers on remote hosts."""

    name = "ssh"
    capabilities = PoolCapabilities(
        parallel=True, rebuild=True, remote=True, warm_start=True
    )

    def __init__(
        self,
        hosts: Union[str, Path, Sequence[str], Sequence[Tuple[str, int]]],
        transport: Optional[Transport] = None,
        remote_python: str = "python3",
        remote_root: Optional[str] = None,
        rsync: str = "rsync",
    ):
        if isinstance(hosts, (str, Path)):
            parsed = parse_hostfile(hosts)
        else:
            parsed = [
                entry if isinstance(entry, tuple) else (entry, 1)
                for entry in hosts
            ]
        if not parsed:
            raise ValueError("SSHPool needs at least one host")
        self.hosts: List[Tuple[str, int]] = list(parsed)
        self.transport: Transport = transport or ssh_transport
        self.remote_python = remote_python
        self.remote_root = remote_root
        self.rsync = rsync
        self.workers = sum(slots for _, slots in self.hosts)
        self._workers: List[_SSHWorker] = []
        self._threads: List[threading.Thread] = []
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._broken = False
        self._live_workers = 0
        self._lock = threading.Lock()

    # -- process management -------------------------------------------------

    def _worker_command(self, host: str) -> Tuple[List[str], Optional[dict]]:
        prefix = self.transport(host)
        if not prefix:
            # Loopback: same interpreter, source tree resolved from the
            # running package so the child imports the same code.
            src = str(Path(__file__).resolve().parents[3])
            env = dict(os.environ)
            existing = env.get("PYTHONPATH", "")
            env["PYTHONPATH"] = src + (
                os.pathsep + existing if existing else ""
            )
            return (
                [sys.executable, "-u", "-m", "repro.sim.pools.ssh_worker"],
                env,
            )
        invoke = f"{self.remote_python} -u -m repro.sim.pools.ssh_worker"
        if self.remote_root:
            invoke = (
                f"cd {shlex.quote(self.remote_root)} && "
                f"PYTHONPATH=src {invoke}"
            )
        return prefix + [invoke], None

    def sync_command(self, host: str, source: str = "src") -> List[str]:
        """The ``rsync`` argv that ships ``source/`` to a host's root."""
        if not self.remote_root:
            raise ValueError("sync needs remote_root")
        return [
            self.rsync,
            "-az",
            "--delete",
            f"{source.rstrip('/')}/",
            f"{host}:{self.remote_root.rstrip('/')}/{source.rstrip('/')}/",
        ]

    def push_sources(self, source: str = "src") -> None:
        """rsync the source tree to every remote host (no-op on loopback)."""
        if not self.remote_root:
            return
        for host, _ in self.hosts:
            if not self.transport(host):
                continue
            subprocess.run(self.sync_command(host, source), check=True)

    def start(self, warm_benchmarks: Sequence[str] = ()) -> bool:
        if self._workers:
            return False
        self._broken = False
        self.push_sources()
        warm = tuple(dict.fromkeys(warm_benchmarks))
        for host, slots in self.hosts:
            command, env = self._worker_command(host)
            for slot in range(slots):
                try:
                    worker = _SSHWorker(host, slot, command, env=env)
                except OSError as error:
                    self.close(fail_fast=True)
                    raise PoolBrokenError(
                        f"cannot start ssh worker on {host}: {error}"
                    ) from error
                if warm:
                    try:
                        worker.send(("warm", warm))
                    except OSError:
                        pass  # surfaces as broken on first chunk
                self._workers.append(worker)
        self._live_workers = len(self._workers)
        for worker in self._workers:
            thread = threading.Thread(
                target=self._serve, args=(worker,), daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return True

    # -- dispatch -----------------------------------------------------------

    def _serve(self, worker: _SSHWorker) -> None:
        """One dispatcher thread per worker: pull a job, do a round trip."""
        while True:
            job = self._jobs.get()
            if job is None:
                return
            payload, future = job
            if not future.set_running_or_notify_cancel():
                continue
            try:
                reply = worker.request(("chunk", payload))
            except (PoolBrokenError, OSError, EOFError) as error:
                self._mark_broken(future, error)
                return
            except Exception as error:  # noqa: BLE001 — e.g. unpicklable
                # A request that could not even be serialised is a chunk
                # failure, not a dead worker: the stream is still clean
                # (frames are built before any byte is written).
                future.set_exception(error)
                continue
            if reply[0] == "result":
                future.set_result(reply[1])
            else:
                # A request-level error (not per-cell): hand it to the
                # engine's chunk-retry machinery via the future.
                future.set_exception(reply[1])

    def _mark_broken(self, future: "Future", cause: BaseException) -> None:
        broken = PoolBrokenError(
            f"ssh pool worker died: {cause!r}"
        )
        with self._lock:
            self._broken = True
            self._live_workers -= 1
            last = self._live_workers <= 0
        future.set_exception(broken)
        if last:
            # No worker left to drain the queue: fail everything pending
            # so the engine never blocks on a dead pool.
            while True:
                try:
                    job = self._jobs.get_nowait()
                except queue.Empty:
                    return
                if job is not None and job[1].set_running_or_notify_cancel():
                    job[1].set_exception(PoolBrokenError("ssh pool is dead"))

    def submit_chunk(self, payload: ChunkPayload) -> "Future":
        if not self._workers:
            raise PoolBrokenError("SSHPool is not started")
        if self._broken:
            raise PoolBrokenError("SSHPool is broken (worker died)")
        future: Future = Future()
        self._jobs.put((payload, future))
        return future

    def close(self, fail_fast: bool = False) -> None:
        workers, self._workers = self._workers, []
        threads, self._threads = self._threads, []
        for _ in threads:
            self._jobs.put(None)
        for worker in workers:
            worker.stop(fail_fast)
        for thread in threads:
            thread.join(timeout=5)
        self._jobs = queue.SimpleQueue()
        self._broken = False
        self._live_workers = 0

    @property
    def alive(self) -> bool:
        return bool(self._workers) and not self._broken
