"""Multi-host SSH backend: per-host warm workers over framed pickles.

:class:`SSHPool` fans chunks out to worker processes reached through a
*transport* — by default ``ssh`` (so one warm store can be fed from
many hosts), or the sshd-less :func:`loopback_transport` that launches
the same worker module locally (used by the conformance suite and CI,
where no sshd exists).  Modeled on the ``Pool``/``ProcessPool``/
``PrunPool`` hierarchy of vusec's instrumentation-infra: the engine
sees one ``Pool``, the transport is a detail.

Host lists come from an iterable of host specs or a *hostfile* (one
``host[:slots]`` per line, ``#`` comments); each slot is one persistent
worker process.  Source sync is explicit: :meth:`SSHPool.push_sources`
builds and runs per-host ``rsync -az`` commands when ``remote_root`` is
configured (start() invokes it once, before spawning workers).

Failure semantics (docs/INTERNALS.md §16): partial failure is
first-class.  Every host carries a **circuit breaker** — ``closed``
while healthy, ``open`` after ``failure_threshold`` consecutive worker
deaths (or the host's last worker dying), ``half_open`` when an
exponential-backoff timer expires and a probe respawns the host's
workers and pings them.  A chunk interrupted by one host's death is
handed back to the engine as :class:`~repro.sim.pools.base
.HostDownError` — *not* a member of ``broken_exceptions`` — so the
engine reroutes those cells to the surviving hosts instead of tearing
the pool down; only the death of the **last** live worker marks the
whole pool broken (``PoolBrokenError``, the analogue of
``BrokenProcessPool``) and engages the engine's rebuild machinery.
Idle dispatcher threads additionally heartbeat their worker with
``ping`` requests riding the chunk protocol, so a silently dead pipe
is discovered within ``heartbeat_s`` instead of at the next chunk.
Health transitions are buffered and surfaced through
:meth:`Pool.drain_health_events` / :meth:`Pool.report_health`; host
incarnation counters survive ``close()``/``start()`` so deterministic
``host_down`` fault schedules stay stable across pool rebuilds.
"""

from __future__ import annotations

import os
import queue
import shlex
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.events import CIRCUIT_OPEN, HOST_DOWN, HOST_RECOVERED
from repro.sim.pools.base import (
    ChunkPayload,
    HostDownError,
    Pool,
    PoolBrokenError,
    PoolCapabilities,
)
from repro.sim.pools.wire import read_frame, write_frame

Transport = Callable[[str], List[str]]


def ssh_transport(host: str) -> List[str]:
    """Default transport: non-interactive ``ssh`` to the host."""
    return ["ssh", "-o", "BatchMode=yes", host]


def loopback_transport(host: str) -> List[str]:
    """Fake transport: run the worker locally, no sshd involved.

    The empty prefix makes :class:`SSHPool` exec the worker module with
    the current interpreter — the full wire protocol (framed pickles,
    warm-up, heartbeats, crash-at-EOF) is exercised without any network.
    """
    return []


def parse_hostfile(path: Union[str, Path]) -> List[Tuple[str, int]]:
    """``host[:slots]`` per line, ``#`` comments; returns (host, slots)."""
    hosts: List[Tuple[str, int]] = []
    for raw in Path(path).read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        host, sep, slots = line.rpartition(":")
        if sep and slots.isdigit():
            hosts.append((host, max(1, int(slots))))
        else:
            hosts.append((line, 1))
    if not hosts:
        raise ValueError(f"hostfile {path} names no hosts")
    return hosts


class _SSHWorker:
    """One persistent worker process behind a transport."""

    def __init__(self, host: str, slot: int, command: List[str], env=None):
        self.host = host
        self.slot = slot
        #: Set when the worker's host was surgically removed (circuit
        #: opened); its dispatcher thread exits instead of serving, and
        #: its death is not double-counted against the breaker.
        self.retired = False
        self.proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            env=env,
        )

    def request(self, message) -> object:
        write_frame(self.proc.stdin, message)
        reply = read_frame(self.proc.stdout)
        if reply is None:
            raise PoolBrokenError(
                f"ssh worker {self.host}#{self.slot} closed its stream"
            )
        return reply

    def send(self, message) -> None:
        write_frame(self.proc.stdin, message)

    def stop(self, fail_fast: bool) -> None:
        try:
            if not fail_fast and self.proc.poll() is None:
                self.send(("exit",))
                self.proc.wait(timeout=5)
                return
        except (OSError, ValueError, subprocess.TimeoutExpired):
            pass
        self.proc.kill()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass


class _HostBreaker:
    """Circuit-breaker state for one host (docs/INTERNALS.md §16).

    ``closed`` → (``failure_threshold`` consecutive worker deaths, or
    the last live worker dying) → ``open`` → (backoff expires) →
    ``half_open`` probe → ``closed`` on success, back to ``open`` with
    doubled backoff on failure.  ``incarnation`` counts every (re)spawn
    of the host's workers and survives pool ``close()``/``start()`` —
    it keys the deterministic ``host_down`` fault schedule, so one seed
    scripts which incarnations of a host are dead.
    """

    __slots__ = (
        "host",
        "slots",
        "state",
        "workers",
        "consecutive_failures",
        "openings",
        "opened_at",
        "incarnation",
    )

    def __init__(self, host: str, slots: int):
        self.host = host
        self.slots = slots
        self.state = "closed"
        self.workers: List[_SSHWorker] = []
        self.consecutive_failures = 0
        #: How many times the breaker has opened (drives the backoff).
        self.openings = 0
        self.opened_at = 0.0
        self.incarnation = 0

    def backoff_s(self, base: float, cap: float) -> float:
        return min(base * 2.0 ** max(0, self.openings - 1), cap)

    def snapshot(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "live_workers": len(self.workers),
            "consecutive_failures": self.consecutive_failures,
            "openings": self.openings,
            "incarnation": self.incarnation,
        }


class SSHPool(Pool):
    """Fan experiment chunks out to warm workers on remote hosts."""

    name = "ssh"
    capabilities = PoolCapabilities(
        parallel=True, rebuild=True, remote=True, warm_start=True
    )

    def __init__(
        self,
        hosts: Union[str, Path, Sequence[str], Sequence[Tuple[str, int]]],
        transport: Optional[Transport] = None,
        remote_python: str = "python3",
        remote_root: Optional[str] = None,
        rsync: str = "rsync",
        heartbeat_s: float = 5.0,
        failure_threshold: int = 2,
        breaker_backoff_s: float = 0.5,
        breaker_backoff_cap_s: float = 30.0,
    ):
        if isinstance(hosts, (str, Path)):
            parsed = parse_hostfile(hosts)
        else:
            parsed = [
                entry if isinstance(entry, tuple) else (entry, 1)
                for entry in hosts
            ]
        if not parsed:
            raise ValueError("SSHPool needs at least one host")
        self.hosts: List[Tuple[str, int]] = list(parsed)
        self.transport: Transport = transport or ssh_transport
        self.remote_python = remote_python
        self.remote_root = remote_root
        self.rsync = rsync
        self.heartbeat_s = max(0.05, float(heartbeat_s))
        self.failure_threshold = max(1, int(failure_threshold))
        self.breaker_backoff_s = max(0.0, float(breaker_backoff_s))
        self.breaker_backoff_cap_s = max(
            self.breaker_backoff_s, float(breaker_backoff_cap_s)
        )
        self.workers = sum(slots for _, slots in self.hosts)
        #: Breakers live for the pool's lifetime (incarnation counters
        #: must survive close()/start() — see class docstring).
        self._breakers: Dict[str, _HostBreaker] = {
            host: _HostBreaker(host, slots) for host, slots in self.hosts
        }
        self._threads: List[threading.Thread] = []
        self._jobs: "queue.SimpleQueue" = queue.SimpleQueue()
        self._events: List[Tuple[str, Dict[str, object]]] = []
        self._warm: Tuple[str, ...] = ()
        self._started = False
        self._broken = False
        self._lock = threading.Lock()

    # -- process management -------------------------------------------------

    def _worker_command(
        self, host: str, incarnation: int
    ) -> Tuple[List[str], Optional[dict]]:
        identity = {
            "REPRO_WORKER_HOST": host,
            "REPRO_HOST_INCARNATION": str(incarnation),
        }
        prefix = self.transport(host)
        if not prefix:
            # Loopback: same interpreter, source tree resolved from the
            # running package so the child imports the same code.
            src = str(Path(__file__).resolve().parents[3])
            env = dict(os.environ)
            existing = env.get("PYTHONPATH", "")
            env["PYTHONPATH"] = src + (
                os.pathsep + existing if existing else ""
            )
            env.update(identity)
            return (
                [sys.executable, "-u", "-m", "repro.sim.pools.ssh_worker"],
                env,
            )
        assigns = " ".join(
            f"{name}={shlex.quote(value)}"
            for name, value in identity.items()
        )
        invoke = (
            f"{assigns} {self.remote_python} -u -m repro.sim.pools.ssh_worker"
        )
        if self.remote_root:
            invoke = (
                f"cd {shlex.quote(self.remote_root)} && "
                f"PYTHONPATH=src {invoke}"
            )
        return prefix + [invoke], None

    def sync_command(self, host: str, source: str = "src") -> List[str]:
        """The ``rsync`` argv that ships ``source/`` to a host's root."""
        if not self.remote_root:
            raise ValueError("sync needs remote_root")
        return [
            self.rsync,
            "-az",
            "--delete",
            f"{source.rstrip('/')}/",
            f"{host}:{self.remote_root.rstrip('/')}/{source.rstrip('/')}/",
        ]

    def push_sources(self, source: str = "src") -> None:
        """rsync the source tree to every remote host (no-op on loopback)."""
        if not self.remote_root:
            return
        for host, _ in self.hosts:
            if not self.transport(host):
                continue
            subprocess.run(self.sync_command(host, source), check=True)

    def _spawn_host(self, breaker: _HostBreaker) -> List[_SSHWorker]:
        """Spawn one host's workers at a fresh incarnation (lock held
        by nobody — spawning blocks; breaker mutation is append-only)."""
        breaker.incarnation += 1
        command, env = self._worker_command(
            breaker.host, breaker.incarnation
        )
        spawned: List[_SSHWorker] = []
        for slot in range(breaker.slots):
            worker = _SSHWorker(breaker.host, slot, command, env=env)
            if self._warm:
                try:
                    worker.send(("warm", self._warm))
                except OSError:
                    pass  # surfaces as dead on first request
            spawned.append(worker)
        return spawned

    def _serve_worker(self, worker: _SSHWorker) -> None:
        thread = threading.Thread(
            target=self._serve, args=(worker,), daemon=True
        )
        thread.start()
        self._threads.append(thread)

    def start(self, warm_benchmarks: Sequence[str] = ()) -> bool:
        if self._started:
            return False
        self._broken = False
        self.push_sources()
        self._warm = tuple(dict.fromkeys(warm_benchmarks))
        for breaker in self._breakers.values():
            breaker.state = "closed"
            breaker.consecutive_failures = 0
            breaker.openings = 0
            try:
                breaker.workers = self._spawn_host(breaker)
            except OSError as error:
                self.close(fail_fast=True)
                raise PoolBrokenError(
                    f"cannot start ssh worker on {breaker.host}: {error}"
                ) from error
        self._started = True
        for breaker in self._breakers.values():
            for worker in breaker.workers:
                self._serve_worker(worker)
        return True

    # -- dispatch -----------------------------------------------------------

    def _serve(self, worker: _SSHWorker) -> None:
        """One dispatcher thread per worker: pull a job, do a round trip.

        An idle thread heartbeats its worker every ``heartbeat_s`` with
        a ``ping`` round trip, so a silently dead pipe is discovered
        between chunks rather than at the next submission.
        """
        while True:
            if worker.retired:
                return
            try:
                job = self._jobs.get(timeout=self.heartbeat_s)
            except queue.Empty:
                try:
                    worker.request(("ping", worker.slot))
                except (PoolBrokenError, OSError, EOFError) as error:
                    self._worker_died(worker, None, error)
                    return
                continue
            if job is None:
                return
            if worker.retired:
                # Hand the job to a live worker's thread and bow out.
                self._jobs.put(job)
                return
            payload, future = job
            if not future.set_running_or_notify_cancel():
                continue
            try:
                reply = worker.request(("chunk", payload))
            except (PoolBrokenError, OSError, EOFError) as error:
                self._worker_died(worker, future, error)
                return
            except Exception as error:  # noqa: BLE001 — e.g. unpicklable
                # A request that could not even be serialised is a chunk
                # failure, not a dead worker: the stream is still clean
                # (frames are built before any byte is written).
                future.set_exception(error)
                continue
            self._worker_ok(worker)
            if reply[0] == "result":
                future.set_result(reply[1])
            else:
                # A request-level error (not per-cell): hand it to the
                # engine's chunk-retry machinery via the future.
                future.set_exception(reply[1])

    def _live_count(self) -> int:
        return sum(len(b.workers) for b in self._breakers.values())

    def host_slots(self) -> Dict[str, int]:
        """Serving slots per ``host#incarnation`` — the identity the
        host's workers stamp into chunk replies, so the scheduler can
        match speed history to live capacity.  Hosts whose breaker is
        open contribute nothing; a never-started pool reports its
        configured fleet (incarnation 1, what :meth:`start` will spawn).
        """
        with self._lock:
            if not self._started:
                return {
                    f"{host}#{breaker.incarnation + 1}": breaker.slots
                    for host, breaker in self._breakers.items()
                }
            return {
                f"{host}#{breaker.incarnation}": len(breaker.workers)
                for host, breaker in self._breakers.items()
                if breaker.state != "open" and breaker.workers
            }

    def _worker_ok(self, worker: _SSHWorker) -> None:
        with self._lock:
            breaker = self._breakers[worker.host]
            breaker.consecutive_failures = 0

    def _open_breaker(self, breaker: _HostBreaker, cause) -> None:
        """Transition a host to ``open`` (lock held): retire its
        remaining workers and schedule the half-open probe."""
        breaker.openings += 1
        breaker.state = "open"
        breaker.opened_at = time.monotonic()
        retired, breaker.workers = breaker.workers, []
        for survivor in retired:
            survivor.retired = True
        self._events.append(
            (
                CIRCUIT_OPEN,
                {
                    "host": breaker.host,
                    "incarnation": breaker.incarnation,
                    "failures": breaker.consecutive_failures,
                    "retry_in_s": breaker.backoff_s(
                        self.breaker_backoff_s, self.breaker_backoff_cap_s
                    ),
                    "error": repr(cause)[:200],
                },
            )
        )
        # Kill outside the event append but still under the lock: stop()
        # only signals processes, it never touches breaker state.
        for survivor in retired:
            survivor.stop(fail_fast=True)

    def _worker_died(
        self,
        worker: _SSHWorker,
        future: Optional["Future"],
        cause: BaseException,
    ) -> None:
        """A dispatcher observed its worker's death.  Surgical path:
        count the failure against the host's breaker, reroute the
        interrupted chunk via :class:`HostDownError`, and only declare
        the pool broken when no live worker remains anywhere."""
        with self._lock:
            breaker = self._breakers[worker.host]
            already_retired = worker.retired
            worker.retired = True
            if worker in breaker.workers:
                breaker.workers.remove(worker)
            if not already_retired:
                breaker.consecutive_failures += 1
                host_dead = not breaker.workers
                if host_dead and breaker.state != "open":
                    self._events.append(
                        (
                            HOST_DOWN,
                            {
                                "host": breaker.host,
                                "incarnation": breaker.incarnation,
                                "error": repr(cause)[:200],
                            },
                        )
                    )
                if breaker.state != "open" and (
                    host_dead
                    or breaker.consecutive_failures
                    >= self.failure_threshold
                ):
                    self._open_breaker(breaker, cause)
            pool_dead = self._live_count() == 0
            if pool_dead:
                self._broken = True
        worker.stop(fail_fast=True)
        if future is not None:
            if pool_dead:
                future.set_exception(
                    PoolBrokenError(f"ssh pool worker died: {cause!r}")
                )
            else:
                future.set_exception(HostDownError(worker.host, cause))
        if pool_dead:
            # No worker left to drain the queue: fail everything pending
            # so the engine never blocks on a dead pool.
            while True:
                try:
                    job = self._jobs.get_nowait()
                except queue.Empty:
                    return
                if job is not None and job[1].set_running_or_notify_cancel():
                    job[1].set_exception(PoolBrokenError("ssh pool is dead"))

    # -- circuit maintenance ------------------------------------------------

    def _maintain(self) -> None:
        """Probe open breakers whose backoff expired (half-open round).

        Runs synchronously in :meth:`submit_chunk` — probing costs one
        host spawn + ping round trip, paid by the submitter rather than
        a background thread, so the pool has no idle machinery to leak.
        """
        now = time.monotonic()
        with self._lock:
            due = [
                breaker
                for breaker in self._breakers.values()
                if breaker.state == "open"
                and now
                >= breaker.opened_at
                + breaker.backoff_s(
                    self.breaker_backoff_s, self.breaker_backoff_cap_s
                )
            ]
            for breaker in due:
                breaker.state = "half_open"
        for breaker in due:
            self._probe(breaker)

    def _probe(self, breaker: _HostBreaker) -> None:
        """Half-open probe: respawn the host's workers, ping each one;
        success re-admits the host, failure re-opens with a doubled
        backoff."""
        spawned: List[_SSHWorker] = []
        try:
            spawned = self._spawn_host(breaker)
            for worker in spawned:
                reply = worker.request(("ping", "probe"))
                if reply[0] != "result":  # pragma: no cover — defensive
                    raise PoolBrokenError(
                        f"probe of {breaker.host} answered {reply[0]!r}"
                    )
        except (PoolBrokenError, OSError, EOFError) as error:
            for worker in spawned:
                worker.retired = True
                worker.stop(fail_fast=True)
            with self._lock:
                breaker.openings += 1
                breaker.state = "open"
                breaker.opened_at = time.monotonic()
                self._events.append(
                    (
                        CIRCUIT_OPEN,
                        {
                            "host": breaker.host,
                            "incarnation": breaker.incarnation,
                            "failures": breaker.consecutive_failures,
                            "retry_in_s": breaker.backoff_s(
                                self.breaker_backoff_s,
                                self.breaker_backoff_cap_s,
                            ),
                            "error": repr(error)[:200],
                        },
                    )
                )
            return
        with self._lock:
            breaker.workers = spawned
            breaker.consecutive_failures = 0
            breaker.state = "closed"
            self._broken = False
            self._events.append(
                (
                    HOST_RECOVERED,
                    {
                        "host": breaker.host,
                        "incarnation": breaker.incarnation,
                        "workers": len(spawned),
                    },
                )
            )
        for worker in spawned:
            self._serve_worker(worker)

    # -- submission / health ------------------------------------------------

    def submit_chunk(self, payload: ChunkPayload) -> "Future":
        if not self._started:
            raise PoolBrokenError("SSHPool is not started")
        self._maintain()
        if self._broken or self._live_count() == 0:
            raise PoolBrokenError("SSHPool is broken (all hosts down)")
        future: Future = Future()
        self._jobs.put((payload, future))
        return future

    def report_health(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                host: breaker.snapshot()
                for host, breaker in self._breakers.items()
            }

    def drain_health_events(self) -> List[Tuple[str, Dict[str, object]]]:
        with self._lock:
            events, self._events = self._events, []
        return events

    def close(self, fail_fast: bool = False) -> None:
        workers: List[_SSHWorker] = []
        with self._lock:
            for breaker in self._breakers.values():
                workers.extend(breaker.workers)
                breaker.workers = []
                breaker.state = "closed"
                breaker.consecutive_failures = 0
            threads, self._threads = self._threads, []
            self._started = False
        for worker in workers:
            worker.retired = True
        for _ in threads:
            self._jobs.put(None)
        for worker in workers:
            worker.stop(fail_fast)
        for thread in threads:
            thread.join(timeout=5)
        self._jobs = queue.SimpleQueue()
        self._broken = False

    @property
    def alive(self) -> bool:
        return self._started and not self._broken
