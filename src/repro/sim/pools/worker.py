"""Worker-side chunk execution, shared by every parallel backend.

This is the code that runs on the far side of a pool boundary — in a
``ProcessPoolExecutor`` worker (:class:`~repro.sim.pools.local
.LocalProcessPool`), in a remote ``ssh`` worker process
(:mod:`repro.sim.pools.ssh_worker`), or inline for
:class:`~repro.sim.pools.local.SerialPool`.  It moved here verbatim
from ``repro.sim.engine`` when the backends were lifted behind the
:class:`~repro.sim.pools.base.Pool` API; the engine's serial path still
imports :func:`run_with_alarm` and :func:`inject_cell_faults` from
here.

Module globals below are per worker process (each worker gets its own
module state, whether forked, spawned, or ssh-exec'd); the parent never
touches them.
"""

from __future__ import annotations

import pickle
import signal
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults import FaultPlan, InjectedFault
from repro.obs.events import TIMEOUT_DISABLED
from repro.obs.remote import SNAPSHOT_VERSION, ChunkCapture, worker_origin
from repro.sim.driver import RunResult, RunSpec, execute
from repro.sim.pools.base import CellTimeout, ChunkPayload


def run_with_alarm(
    spec: RunSpec,
    timeout: Optional[float],
    telemetry=None,
    fault_plan: Optional[FaultPlan] = None,
    on_unarmed: Optional[Callable[[], None]] = None,
) -> RunResult:
    """Execute a cell, bounded by SIGALRM when a timeout is requested.

    SIGALRM interrupts pure-Python simulation loops reliably on POSIX; it
    can only be armed from a main thread (worker processes always
    qualify).  When a timeout was requested but cannot be armed, the cell
    runs unbounded and ``on_unarmed`` is invoked so the caller can make
    the disabled budget visible instead of silent.
    """
    if timeout is None or timeout <= 0:
        return execute(spec, telemetry=telemetry, fault_plan=fault_plan)
    if threading.current_thread() is not threading.main_thread():
        if on_unarmed is not None:
            on_unarmed()
        return execute(spec, telemetry=telemetry, fault_plan=fault_plan)

    def _on_alarm(signum, frame):
        raise CellTimeout(
            f"cell ({spec.benchmark_name!r}, {spec.scheme!r}) exceeded "
            f"{timeout:.1f}s"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute(spec, telemetry=telemetry, fault_plan=fault_plan)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def worker_host_identity() -> Tuple[Optional[str], int]:
    """This worker's ``(host, incarnation)``, from the pool's env vars.

    Multi-host pools stamp each worker with ``$REPRO_WORKER_HOST`` and
    ``$REPRO_HOST_INCARNATION`` (the per-host respawn counter) so the
    ``host_down`` and ``straggler_delay`` fault sites can key on *which
    host* is executing.  Backends without host identity (the local
    process pool) leave them unset: ``(None, 0)``, and host faults are
    inert there.
    """
    import os

    host = os.environ.get("REPRO_WORKER_HOST") or None
    try:
        incarnation = int(os.environ.get("REPRO_HOST_INCARNATION", "0"))
    except ValueError:
        incarnation = 0
    return host, incarnation


def inject_host_faults(plan: Optional[FaultPlan]) -> None:
    """Fire the per-chunk ``host_down`` site (hard process exit).

    Decided once per chunk arrival, keyed on ``(host, incarnation)``:
    every worker of a "down" host draws the same verdict, so the whole
    host collapses exactly like a powered-off machine — the parent
    observes EOF on every pipe.  A later incarnation (circuit-breaker
    probe respawn) redraws, modelling an outage that heals.
    """
    if plan is None or plan.host_down <= 0.0:
        return
    host, incarnation = worker_host_identity()
    if host is None:
        return
    if plan.decide("host_down", (host, incarnation)):
        import os

        os._exit(23)


def inject_straggler_delay(
    plan: Optional[FaultPlan], spec: RunSpec, attempt: int
) -> None:
    """Fire the per-cell ``straggler_delay`` site (wall-clock sleep).

    Keyed on ``(host, benchmark, scheme, attempt)`` — a slow *host*,
    not a slow cell — so the engine's speculative re-execution of the
    same cell on a different host redraws the delay and can win the
    race.  Never perturbs results; only scheduling.
    """
    if plan is None or plan.straggler_delay <= 0.0:
        return
    host, _ = worker_host_identity()
    if host is None:
        return
    key = (host, spec.benchmark_name, spec.scheme, attempt)
    if plan.decide("straggler_delay", key):
        time.sleep(plan.straggler_delay_s)


def inject_cell_faults(
    plan: Optional[FaultPlan], spec: RunSpec, attempt: int
) -> None:
    """Raise the per-attempt engine faults a plan schedules for a cell."""
    if plan is None:
        return
    key = (spec.benchmark_name, spec.scheme, attempt)
    if plan.decide("cell_exception", key):
        raise InjectedFault(
            f"injected exception in cell "
            f"({spec.benchmark_name!r}, {spec.scheme!r}), "
            f"attempt {attempt}"
        )
    if plan.decide("cell_timeout", key):
        raise CellTimeout(
            f"injected timeout in cell "
            f"({spec.benchmark_name!r}, {spec.scheme!r}), "
            f"attempt {attempt}"
        )


#: Built benchmarks memoised by name.  Safe to reuse across cells: a run
#: never mutates a ``BuiltBenchmark`` — the kernels decode programs into
#: per-VM tables and all run state lives in the VM/machine objects.
_WORKER_BENCHES: Dict[str, object] = {}

#: Warm-start statistics recorded by :func:`pool_initializer`, shipped
#: to the parent with the first chunk this worker completes, then cleared.
_WORKER_WARMUP: Optional[Dict[str, object]] = None


def worker_built(benchmark):
    """Worker-side memoised ``build_benchmark`` (str names only)."""
    if not isinstance(benchmark, str):
        return benchmark
    built = _WORKER_BENCHES.get(benchmark)
    if built is None:
        from repro.workloads.specjvm import build_benchmark

        built = _WORKER_BENCHES[benchmark] = build_benchmark(benchmark)
    return built


def pool_initializer(benchmarks: Tuple[str, ...]) -> None:
    """Warm one worker before it serves cells.

    Pre-builds the batch's benchmarks and pre-decodes every program, which
    compiles all fused block closures into this process's blockjit code
    cache — so the first real cell starts simulating immediately instead
    of paying program generation + codegen.  Best-effort by design: a
    failure here must not poison the pool (the cell itself will rebuild
    and surface the real error through the retry machinery).
    """
    global _WORKER_WARMUP
    from repro.vm import blockjit
    from repro.vm.jit import BlockDecoder

    started = time.perf_counter()
    compiles_before = blockjit.CACHE_STATS["compiles"]
    stats: Dict[str, object] = {"benchmarks": 0, "blocks": 0, "errors": 0}
    for name in benchmarks:
        try:
            built = worker_built(name)
            decoder = BlockDecoder(built.program)
            for method in built.program.methods.values():
                stats["blocks"] += len(decoder.table(method))
            stats["benchmarks"] += 1
        except Exception:
            stats["errors"] += 1
    stats["fused_compiles"] = (
        blockjit.CACHE_STATS["compiles"] - compiles_before
    )
    stats["warm_s"] = round(time.perf_counter() - started, 6)
    _WORKER_WARMUP = stats


def picklable(error: BaseException) -> BaseException:
    """The error itself if it survives pickling, else a repr stand-in.

    Chunk outcomes travel back to the parent in one pickled payload; one
    unpicklable exception must degrade to a readable substitute instead
    of taking the whole chunk's results down with it.  Either way the
    formatted traceback rides along as ``remote_traceback`` — pickling
    strips ``__traceback__`` (frames hold whole stacks alive), and a
    cross-backend failure with no traceback is undebuggable.
    """
    tb = "".join(
        traceback.format_exception(type(error), error, error.__traceback__)
    )
    try:
        # Set before the round-trip test: BaseException pickling carries
        # ``__dict__``, so the attribute must survive it too.
        error.remote_traceback = tb
    except Exception:
        pass  # __slots__ exceptions: the stand-in still carries it
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        stand_in = RuntimeError(repr(error))
        stand_in.remote_traceback = tb
        return stand_in


def run_chunk(payload: ChunkPayload) -> tuple:
    """Top-level chunk entry (must be importable for pickling).

    ``payload`` is ``(cells, timeout, plan)`` — or, when the parent's
    telemetry session is live, ``(cells, timeout, plan, capture)`` with
    ``capture`` a plain-dict spec (``{"max_events": N}``) — where
    ``cells`` is a tuple of ``(index, spec, attempt)``; the timeout and
    the fault plan are pickled once per chunk instead of once per cell.
    Returns ``(warmup, outcomes, chunk_info)``; each outcome is
    ``(index, "ok", result)`` or ``(index, "error", error)``.
    ``chunk_info`` always carries at least the executor's identity
    (``origin`` = ``host#pid``, ``host_id`` = ``host#incarnation`` on
    multi-host pools), per-cell measured seconds (``cell_times``, a
    tuple of ``(index, seconds)``), the chunk's total service seconds
    (``service_s``), and the unarmed-timeout count — the engine's cost
    model learns runtime estimates and host speeds from these
    (docs/INTERNALS.md §18).  With a live capture it is the full
    clock-stamped telemetry snapshot, same extra keys included.
    Per-cell failures are *returned*, not raised, so one bad cell
    cannot discard its chunk-mates' finished work.  A worker-crash
    injection still hard-exits the process, so the parent observes a
    broken pool exactly like a segfaulting or OOM-killed worker.

    Telemetry never influences execution: cells run identically with and
    without a capture spec (the bit-identity grid in
    tests/test_remote_obs.py holds the contract).
    """
    global _WORKER_WARMUP
    if len(payload) >= 4:
        cells, timeout, plan, capture_spec = payload[:4]
    else:
        cells, timeout, plan = payload
        capture_spec = None
    capture = ChunkCapture(capture_spec) if capture_spec else None
    inject_host_faults(plan)
    unarmed = 0
    outcomes: List[Tuple[int, str, object]] = []
    cell_times: List[Tuple[int, float]] = []
    chunk_started = time.perf_counter()
    for index, spec, attempt in cells:
        if plan is not None and plan.decide(
            "worker_crash", (spec.benchmark_name, spec.scheme, attempt)
        ):
            import os

            os._exit(17)
        cell_telemetry = capture.begin_cell() if capture else None

        def _on_unarmed(telemetry=cell_telemetry):
            nonlocal unarmed
            unarmed += 1
            if telemetry is not None:
                telemetry.emit_wall(
                    TIMEOUT_DISABLED,
                    reason=(
                        "SIGALRM needs the worker's main thread; "
                        "cell ran unbounded"
                    ),
                )

        status = "ok"
        cell_started = time.perf_counter()
        try:
            inject_cell_faults(plan, spec, attempt)
            inject_straggler_delay(plan, spec, attempt)
            spec.benchmark = worker_built(spec.benchmark)
            outcomes.append(
                (
                    index,
                    "ok",
                    run_with_alarm(
                        spec,
                        timeout,
                        cell_telemetry,
                        fault_plan=plan,
                        on_unarmed=_on_unarmed,
                    ),
                )
            )
        except Exception as error:  # noqa: BLE001 — parent retries
            status = "error"
            outcomes.append((index, "error", picklable(error)))
        finally:
            cell_times.append(
                (index, time.perf_counter() - cell_started)
            )
            if capture is not None:
                capture.end_cell(index, spec, status)
    warmup, _WORKER_WARMUP = _WORKER_WARMUP, None
    if capture is not None:
        chunk_info = capture.finish(unarmed)
    else:
        chunk_info = {
            "v": SNAPSHOT_VERSION,
            "unarmed_timeouts": unarmed,
            "cells": None,
        }
    # Cost-model feed (docs/INTERNALS.md §18): executor identity and
    # measured per-cell seconds ride every reply.  ``host_id`` is the
    # pool-level identity (``host#incarnation``) when one exists, so
    # host-speed EWMAs survive worker respawns within an incarnation.
    host, incarnation = worker_host_identity()
    chunk_info["origin"] = worker_origin()
    chunk_info["host_id"] = (
        f"{host}#{incarnation}" if host is not None else None
    )
    chunk_info["cell_times"] = tuple(cell_times)
    chunk_info["service_s"] = time.perf_counter() - chunk_started
    return warmup, outcomes, chunk_info
