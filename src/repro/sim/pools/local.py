"""In-process and local-multiprocess backends.

:class:`SerialPool` answers chunks synchronously in the calling
process — the reference backend every other backend must match bit for
bit (and the natural choice for tracing, debugging, and single-cell
runs).

:class:`LocalProcessPool` is the warm persistent ``ProcessPoolExecutor``
the engine grew in earlier iterations, moved behind the
:class:`~repro.sim.pools.base.Pool` API: workers survive across
batches, the spawn-time initializer pre-builds benchmarks and pre-fuses
their block closures (docs/INTERNALS.md §13), and a dead worker
surfaces as ``BrokenProcessPool`` for the engine's rebuild machinery.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Optional, Sequence, Tuple

from repro.sim.pools import worker as worker_mod
from repro.sim.pools.base import (
    ChunkPayload,
    Pool,
    PoolBrokenError,
    PoolCapabilities,
    completed_future,
)


class SerialPool(Pool):
    """Chunks run inline in the calling process, one cell at a time.

    ``submit_chunk`` returns an already-resolved future; per-cell
    failures come back as ``("error", exc)`` outcomes exactly like a
    process backend would report them.  There are no workers to crash,
    so ``rebuild`` is a no-op and ``worker_crash`` injections never
    fire (the plan site requires a disposable process).
    """

    name = "serial"
    capabilities = PoolCapabilities(
        parallel=False, rebuild=False, remote=False, warm_start=False
    )
    workers = 1

    def __init__(self) -> None:
        self._alive = False

    def start(self, warm_benchmarks: Sequence[str] = ()) -> bool:
        spawned = not self._alive
        self._alive = True
        return spawned

    def submit_chunk(self, payload: ChunkPayload) -> "Future":
        if not self._alive:
            raise PoolBrokenError("SerialPool is closed")
        import dataclasses

        cells, timeout, plan = payload[:3]
        # No pickle boundary shields the caller here, so two worker-side
        # behaviours must be neutralised inline: ``run_chunk`` mutating
        # ``spec.benchmark`` into a built object (copy each spec), and a
        # ``worker_crash`` injection ``os._exit``-ing the calling
        # process (the site requires a disposable worker; the serial
        # engine path has never honoured it either).
        safe_cells = tuple(
            (index, dataclasses.replace(spec), attempt)
            for index, spec, attempt in cells
        )
        if plan is not None and (plan.worker_crash or plan.host_down):
            plan = dataclasses.replace(
                plan, worker_crash=0.0, host_down=0.0
            )
        return completed_future(
            worker_mod.run_chunk(
                (safe_cells, timeout, plan) + tuple(payload[3:])
            )
        )

    def close(self, fail_fast: bool = False) -> None:
        self._alive = False

    @property
    def alive(self) -> bool:
        return self._alive


def _shutdown_executor(pool: ProcessPoolExecutor, fail_fast: bool) -> None:
    """Shut an executor down; fail-fast drops pending work, no wait.

    ``cancel_futures`` exists from Python 3.9; on 3.8 the guard degrades
    to a plain no-wait shutdown (pending cells still run, but the caller
    is no longer blocked on them).
    """
    if not fail_fast:
        pool.shutdown(wait=True)
        return
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover — Python 3.8 fallback
        pool.shutdown(wait=False)


class LocalProcessPool(Pool):
    """Persistent warm ``ProcessPoolExecutor`` backend (the default for
    ``--backend local:N`` / ``--jobs N``)."""

    name = "local"
    capabilities = PoolCapabilities(
        parallel=True, rebuild=True, remote=False, warm_start=True
    )
    broken_exceptions: Tuple[type, ...] = (BrokenProcessPool, PoolBrokenError)

    def __init__(self, workers: int = 2, warm_start: bool = True):
        self.workers = max(1, int(workers))
        self.warm_start = bool(warm_start)
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Benchmarks the live executor's initializer pre-built.
        self.warmed: Tuple[str, ...] = ()

    def start(self, warm_benchmarks: Sequence[str] = ()) -> bool:
        if self._executor is not None:
            return False
        self.warmed = (
            tuple(dict.fromkeys(warm_benchmarks)) if self.warm_start else ()
        )
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=worker_mod.pool_initializer,
            initargs=(self.warmed,),
        )
        return True

    def submit_chunk(self, payload: ChunkPayload) -> "Future":
        if self._executor is None:
            raise PoolBrokenError("LocalProcessPool is not started")
        return self._executor.submit(worker_mod.run_chunk, payload)

    def host_slots(self) -> Dict[str, int]:
        """One homogeneous fleet: sibling processes on one machine run
        at the same speed, so all slots share a single identity and the
        scheduler packs them unweighted (chunk replies key their
        ``origin`` by pid, which deliberately never matches this)."""
        return {"local": self.workers}

    def close(self, fail_fast: bool = False) -> None:
        executor, self._executor = self._executor, None
        self.warmed = ()
        if executor is not None:
            _shutdown_executor(executor, fail_fast)

    @property
    def alive(self) -> bool:
        return self._executor is not None
