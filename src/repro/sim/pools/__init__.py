"""Pluggable execution backends behind the :class:`Pool` API.

One registry maps backend *specs* — the strings ``Engine(pool=...)``,
:class:`repro.sim.options.ExecutionOptions`, and the CLI's
``--backend`` all accept — to concrete pools::

    serial              in-process reference backend
    local[:N]           warm persistent process pool, N workers
    ssh:HOSTFILE        per-host warm workers over ssh (one host[:slots]
                        per hostfile line)
    ssh-loopback[:N]    SSHPool wire protocol without sshd (CI/tests);
                        N single-slot *hosts* (``loop0``..``loopN-1``),
                        so per-host health/circuit-breaker semantics
                        (docs/INTERNALS.md §16) are exercisable locally

``make_pool("local:4")`` returns the pool; ``register_backend`` adds
new ones (the factory receives the text after the first ``:``, or
``None``).  See docs/INTERNALS.md §14 for the backend contract.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.sim.pools.base import (
    CellTimeout,
    ChunkPayload,
    HostDownError,
    Pool,
    PoolBrokenError,
    PoolCapabilities,
    completed_future,
)
from repro.sim.pools.local import LocalProcessPool, SerialPool
from repro.sim.pools.ssh import (
    SSHPool,
    loopback_transport,
    parse_hostfile,
    ssh_transport,
)

__all__ = [
    "CellTimeout",
    "ChunkPayload",
    "HostDownError",
    "LocalProcessPool",
    "Pool",
    "PoolBrokenError",
    "PoolCapabilities",
    "SSHPool",
    "SerialPool",
    "available_backends",
    "completed_future",
    "loopback_transport",
    "make_pool",
    "parse_backend_spec",
    "parse_hostfile",
    "register_backend",
    "ssh_transport",
]

PoolFactory = Callable[[Optional[str]], Pool]

_REGISTRY: Dict[str, PoolFactory] = {}


def register_backend(name: str, factory: PoolFactory) -> None:
    """Register (or replace) a backend under a spec prefix."""
    _REGISTRY[name] = factory


def available_backends() -> List[str]:
    return sorted(_REGISTRY)


def parse_backend_spec(spec: str) -> "tuple[str, Optional[str]]":
    """Split ``name[:arg]``; the arg keeps any further colons intact."""
    name, sep, arg = spec.partition(":")
    return name.strip(), (arg if sep else None)


def make_pool(spec: str) -> Pool:
    """Resolve a backend spec (``local:4``, ``ssh:hosts.txt``, …)."""
    name, arg = parse_backend_spec(spec)
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown backend {name!r}; known: "
            f"{', '.join(available_backends())}"
        )
    return factory(arg)


def _int_arg(arg: Optional[str], default: int, spec: str) -> int:
    if arg is None or arg == "":
        return default
    try:
        return max(1, int(arg))
    except ValueError:
        raise ValueError(
            f"backend spec {spec!r} wants an integer worker count, "
            f"got {arg!r}"
        ) from None


def _make_serial(arg: Optional[str]) -> Pool:
    if arg:
        raise ValueError("the serial backend takes no argument")
    return SerialPool()


def _make_local(arg: Optional[str]) -> Pool:
    return LocalProcessPool(
        workers=_int_arg(arg, os.cpu_count() or 2, f"local:{arg}")
    )


def _make_ssh(arg: Optional[str]) -> Pool:
    if not arg:
        raise ValueError(
            "the ssh backend needs a hostfile: --backend ssh:HOSTFILE"
        )
    return SSHPool(hosts=arg)


def _make_ssh_loopback(arg: Optional[str]) -> Pool:
    workers = _int_arg(arg, 2, f"ssh-loopback:{arg}")
    # N single-slot hosts (not one N-slot host): each loopback worker is
    # its own "host", so losing one exercises the surgical per-host
    # removal / circuit-breaker path instead of whole-pool breakage.
    return SSHPool(
        hosts=[(f"loop{i}", 1) for i in range(workers)],
        transport=loopback_transport,
    )


register_backend("serial", _make_serial)
register_backend("local", _make_local)
register_backend("ssh", _make_ssh)
register_backend("ssh-loopback", _make_ssh_loopback)
