"""The ``Pool`` backend contract (docs/INTERNALS.md §14).

A :class:`Pool` turns pickled **chunks** of experiment cells into
per-cell outcomes, somewhere — in the calling process
(:class:`~repro.sim.pools.local.SerialPool`), in warm local worker
processes (:class:`~repro.sim.pools.local.LocalProcessPool`), or on a
fleet of remote hosts (:class:`~repro.sim.pools.ssh.SSHPool`).  The
engine never cares which: it speaks only this interface, and the
differential grid proves every backend bit-identical to serial.

The chunk protocol is the one the engine has always used internally
(:func:`repro.sim.pools.worker.run_chunk`): a payload of
``(cells, timeout, fault_plan)`` — extended to ``(cells, timeout,
fault_plan, capture)`` when the parent's telemetry session is live
(docs/INTERNALS.md §15) — with ``cells`` a tuple of
``(index, spec, attempt)`` triples, answered by
``(warmup, outcomes, chunk_info)`` where each outcome is
``(index, "ok", result)`` or ``(index, "error", exception)`` and
``chunk_info`` is the worker's snapshot: at minimum its executor
identity, per-cell measured seconds (``cell_times``), and unarmed
timeout count — the scheduler's cost model feeds on these — plus the
full clock-stamped telemetry capture when the parent session is live
(docs/INTERNALS.md §15).  Backends pass the payload and reply through
opaquely; legacy 2-tuple replies (older workers) are still accepted by
the engine, which simply learns nothing from them.  Per-cell failures
are *returned*, never raised — a raised exception from a chunk means
the transport or the worker itself died.

Capability flags tell the engine which degradation semantics apply:

``parallel``
    The pool fans cells out beyond the calling thread; the engine
    routes eligible cells through :meth:`submit_chunk`.  A
    non-parallel pool makes the engine run cells on its in-process
    serial path instead (which streams simulation telemetry and can
    arm SIGALRM timeouts — things a worker boundary hides).
``rebuild``
    A dead worker (``broken_exceptions``) can be recovered by
    :meth:`rebuild`; the engine retries interrupted cells against the
    rebuilt pool up to ``max_pool_rebuilds`` times before degrading to
    serial.  Pools without this capability degrade straight to serial
    on the first crash.
``remote``
    Results cross a host boundary; the engine knows worker-side
    telemetry and process-global caches (blockjit) are invisible.
``warm_start``
    :meth:`start`'s ``warm_benchmarks`` actually pre-builds benchmarks
    in the workers (reported via ``worker_warmup`` telemetry riding the
    first chunk each worker answers).
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: One submitted cell: (batch index, RunSpec, attempt number).
ChunkCell = Tuple[int, object, int]
#: What travels to a worker: ``(cells, timeout, fault_plan)``, plus an
#: optional trailing telemetry-capture spec when the parent session is
#: live (see the module docstring; workers accept both arities).
ChunkPayload = Tuple[object, ...]


class CellTimeout(Exception):
    """A cell exceeded the engine's per-cell wall-clock budget.

    Defined here (not in the engine) because workers raise it on the
    far side of a pool boundary; ``repro.sim.engine`` re-exports it.
    """


class PoolBrokenError(RuntimeError):
    """A pool's transport or worker died (analogue of BrokenProcessPool).

    Backends whose native broken-worker signal is not an exception type
    of their own (e.g. an SSH pipe closing) raise this; the engine
    treats anything in :attr:`Pool.broken_exceptions` as a crash and
    runs its rebuild/degrade machinery.
    """


class HostDownError(RuntimeError):
    """One *host* of a multi-host pool died; the pool itself survives.

    Deliberately **not** in :attr:`Pool.broken_exceptions`: a chunk
    future carrying this error means "these cells were interrupted, but
    there is capacity left — resubmit them" (docs/INTERNALS.md §16).
    The engine reroutes the chunk's cells to the surviving hosts
    through its ordinary per-cell retry machinery instead of tearing
    the whole pool down, and counts them in ``stats.cells_rerouted``.
    Only when the *last* host dies does the pool fall back to
    :class:`PoolBrokenError` and the rebuild/degrade path.
    """

    def __init__(self, host: str, cause: BaseException):
        super().__init__(f"pool host {host!r} went down: {cause!r}")
        self.host = host
        self.cause = cause


@dataclass(frozen=True)
class PoolCapabilities:
    """What degradation/warm-up semantics a backend supports."""

    parallel: bool = True
    rebuild: bool = True
    remote: bool = False
    warm_start: bool = True


class Pool:
    """Abstract execution backend; see the module docstring for the
    contract.  Concrete pools register under a spec prefix via
    :func:`repro.sim.pools.register_backend`."""

    #: Short backend name, also the spec prefix (``local``, ``serial``,
    #: ``ssh``); surfaced in telemetry events.
    name: str = "abstract"
    capabilities: PoolCapabilities = PoolCapabilities()
    #: Exception types (raised from :meth:`submit_chunk` or set on its
    #: future) that mean "the pool died", not "the cell failed".
    broken_exceptions: Tuple[type, ...] = (PoolBrokenError,)

    #: Worker slots (parallel width).  1 for serial.
    workers: int = 1

    def start(self, warm_benchmarks: Sequence[str] = ()) -> bool:
        """Spawn workers if not already live; True when a spawn happened.

        Idempotent: a live pool returns False and ignores
        ``warm_benchmarks`` (warm-up happens at spawn, once per worker).
        """
        raise NotImplementedError

    def submit_chunk(self, payload: ChunkPayload) -> "Future":
        """Submit one chunk; the future resolves to ``(warmup, outcomes)``
        or ``(warmup, outcomes, chunk_info)`` (telemetry snapshot).

        The pool must be started.  Raises one of
        :attr:`broken_exceptions` (or sets it on the future) when the
        pool is dead.
        """
        raise NotImplementedError

    def rebuild(self, warm_benchmarks: Sequence[str] = ()) -> None:
        """Replace dead workers with fresh ones (crash recovery).

        Only meaningful when ``capabilities.rebuild``; the default
        tears everything down and starts again.
        """
        self.close(fail_fast=True)
        self.start(warm_benchmarks)

    def close(self, fail_fast: bool = False) -> None:
        """Shut workers down (idempotent; :meth:`start` revives the pool).

        ``fail_fast`` drops pending work without waiting — used when the
        pool is suspect (crash recovery, batch abort, interpreter
        teardown).
        """
        raise NotImplementedError

    # -- health (docs/INTERNALS.md §16) -------------------------------------

    def report_health(self) -> Dict[str, Dict[str, object]]:
        """Per-host health snapshot, keyed by host name.

        Multi-host backends report one entry per host with at least
        ``state`` (``"closed"``/``"open"``/``"half_open"`` circuit
        state), ``live_workers``, ``consecutive_failures``, and
        ``incarnation`` (how many times the host's workers have been
        (re)spawned).  Single-process backends have no host granularity
        and return ``{}`` — the engine treats that as "always healthy".
        """
        return {}

    def host_slots(self) -> Dict[str, int]:
        """Live execution slots keyed by executor identity.

        The scheduler (docs/INTERNALS.md §18) matches these identities
        against the cost model's per-host speed EWMAs to weight chunk
        sizes.  Multi-host backends key by ``host#incarnation`` (the
        same identity their workers stamp into chunk replies) and
        report only hosts whose circuit is currently serving; the
        default is one anonymous entry covering the whole pool, which
        the cost model treats as homogeneous.
        """
        return {self.name: max(1, self.workers)}

    def drain_health_events(self) -> List[Tuple[str, Dict[str, object]]]:
        """Health transitions since the last drain, oldest first.

        Each entry is ``(event_name, fields)`` with ``event_name`` one
        of :data:`repro.obs.events.HOST_DOWN` /
        :data:`~repro.obs.events.HOST_RECOVERED` /
        :data:`~repro.obs.events.CIRCUIT_OPEN`.  The engine drains this
        buffer after every pool round and forwards the transitions into
        telemetry, stats, and the flight recorder — the pool itself
        never needs a telemetry handle.
        """
        return []

    @property
    def alive(self) -> bool:
        """True between a successful :meth:`start` and :meth:`close`."""
        raise NotImplementedError

    def __enter__(self) -> "Pool":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "alive" if self.alive else "closed"
        return f"{type(self).__name__}(workers={self.workers}, {state})"


def completed_future(value) -> "Future":
    """A pre-resolved future (serial pools answer synchronously)."""
    future: Future = Future()
    future.set_result(value)
    return future
