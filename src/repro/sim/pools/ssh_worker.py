"""Remote worker loop for :class:`repro.sim.pools.ssh.SSHPool`.

One instance of this module runs per worker slot, launched as
``ssh HOST 'cd REPO && PYTHONPATH=src python -u -m
repro.sim.pools.ssh_worker'`` (or locally, through the sshd-less
loopback transport used by the conformance suite and CI).  The parent
speaks a framed-pickle request/reply protocol over the worker's
stdin/stdout:

* frame = 8-byte big-endian length + pickle blob;
* parent → worker: ``("warm", benchmarks)`` (no reply — the warm-up
  stats ride the next chunk reply, mirroring the local pool),
  ``("ping", token)`` (reply ``("result", ("pong", token))`` — the
  liveness heartbeat and circuit-breaker probe of
  docs/INTERNALS.md §16), ``("chunk", payload)`` (reply
  ``("result", (warmup, outcomes))`` or,
  when the payload requested telemetry capture, ``("result", (warmup,
  outcomes, chunk_info))`` — the worker passes :func:`repro.sim.pools
  .worker.run_chunk`'s reply through unchanged, so the telemetry
  snapshot rides the existing protocol with no new message kinds),
  ``("exit",)`` (worker terminates);
* worker → parent: ``("result", value)`` or ``("error", exception)``
  for a request that blew up outside the per-cell error contract.

The worker's real stdout is reserved for protocol frames: on startup
file descriptor 1 is re-pointed at stderr, so a stray ``print`` inside
simulation code cannot corrupt the stream.  A ``worker_crash`` fault
injection calls ``os._exit`` inside :func:`repro.sim.pools.worker
.run_chunk`, which the parent observes as EOF — exactly like a
segfaulting or OOM-killed worker.
"""

from __future__ import annotations

import os
import sys
from typing import BinaryIO

from repro.sim.pools.wire import read_frame, write_frame


def serve(inbound: BinaryIO, outbound: BinaryIO) -> int:
    """Request loop; returns the exit status."""
    from repro.sim.pools import worker as worker_mod

    while True:
        try:
            message = read_frame(inbound)
        except EOFError:
            return 1
        if message is None or message[0] == "exit":
            return 0
        kind = message[0]
        try:
            if kind == "warm":
                worker_mod.pool_initializer(tuple(message[1]))
                continue  # stats ride the next chunk reply
            if kind == "ping":
                token = message[1] if len(message) > 1 else None
                write_frame(outbound, ("result", ("pong", token)))
                continue
            if kind == "chunk":
                write_frame(
                    outbound, ("result", worker_mod.run_chunk(message[1]))
                )
                continue
            raise ValueError(f"unknown request {kind!r}")
        except SystemExit:
            raise
        except BaseException as error:  # noqa: BLE001 — reply, don't die
            write_frame(outbound, ("error", worker_mod.picklable(error)))


def main() -> int:
    # Claim the protocol stream, then point fd 1 at stderr so stray
    # prints from simulation code cannot corrupt framing.
    outbound = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    inbound = os.fdopen(os.dup(0), "rb")
    return serve(inbound, outbound)


if __name__ == "__main__":
    sys.exit(main())
