"""Parallel experiment engine: fan experiment cells out across a
pluggable execution backend.

Every exhibit, bench, and CLI command ultimately needs the same thing: a
batch of ``(benchmark, scheme, config)`` cells turned into
:class:`~repro.sim.driver.RunResult` bundles.  :class:`Engine` is the one
entry point for that.  It layers three mechanisms under a single
``run(cells)`` call:

1. an **in-process memory cache** (shared, module-level) so different
   exhibits in one process reuse the same runs — the role the old private
   ``_CACHE`` dict in ``repro.sim.experiment`` used to play;
2. a **persistent on-disk store** (:class:`repro.sim.store.ResultStore`)
   so *fresh processes* — another CLI invocation, another pytest worker,
   another *host* — reuse runs too;
3. an execution **backend** (:class:`repro.sim.pools.Pool`) with
   per-cell timeout and bounded retry for the cells that actually have
   to simulate.

Results are deterministic: a cell's outcome depends only on its
:class:`~repro.sim.driver.RunSpec`, never on scheduling or location, so
every backend is bit-identical to serial (tests/test_backends.py).

Backends (docs/INTERNALS.md §14): ``Engine(pool=...)`` accepts a
backend spec string (``"serial"``, ``"local:4"``, ``"ssh:hostfile"``) or
a constructed :class:`~repro.sim.pools.Pool`; the legacy ``jobs=N``
parameter still resolves to ``local:N``.  The local process backend is
**persistent and warm** (docs/INTERNALS.md §13): the first parallel
batch spawns it with an initializer that pre-builds the batch's
benchmarks and pre-decodes their programs — compiling every fused block
closure into the worker's process-wide blockjit code cache before the
first cell arrives — and later batches on the same engine reuse the
live workers (``pool_reused`` telemetry) instead of paying spawn +
warm-up again.  Cells are submitted in **chunks**: one pickled payload
carries several cells plus the shared timeout/fault-plan, and workers
memoise built benchmarks by name, so a 3-scheme sweep builds each
benchmark once per worker rather than once per cell.  Call
:meth:`Engine.close` (or use the engine as a context manager) to shut
the backend down; a dropped engine cleans up in ``__del__``.

Graceful degradation (docs/INTERNALS.md §11): ``failure_policy``
selects what a cell that exhausts its retry budget does to the batch —
``"raise"`` (default, legacy) aborts with :class:`CellExecutionError`,
while ``"skip"`` and ``"partial"`` record a per-cell failure and keep
serving the surviving cells (``"partial"`` additionally raises
:class:`BatchExecutionError` when *no* cell succeeded).  A worker death
(any exception in the backend's ``broken_exceptions``) is recovered —
on backends whose capability flags include ``rebuild`` — by rebuilding
the pool and resubmitting the interrupted cells; after
``max_pool_rebuilds`` (or immediately, on backends without the
capability) the engine degrades further to in-process serial execution.
Seeded fault injection for all of these paths lives in
:mod:`repro.faults`.

Cells carrying live objects (an explicit ``policy`` instance, a
``preload_database``, a prebuilt benchmark) are executed serially in the
parent process — they are not guaranteed picklable and are never cached.
"""

from __future__ import annotations

import statistics
import time
import traceback as traceback_mod
import warnings
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.faults import FaultPlan, corrupt_file, deterministic_uniform
from repro.obs.events import (
    BATCH_DEGRADED,
    BATCH_RESUMED,
    CELL_DONE,
    CELL_FAILED,
    CELL_START,
    HOST_DOWN,
    HOST_RECOVERED,
    MEMORY_HIT,
    NULL_TELEMETRY,
    POOL_REUSED,
    POOL_SPAWNED,
    PROGRESS,
    RETRY,
    SCHEDULE_PLANNED,
    SPECULATION_WON,
    STORE_HIT,
    STRAGGLER_DETECTED,
    TIMEOUT,
    TIMEOUT_DISABLED,
    WORKER_CRASH,
    WORKER_WARMUP,
)
from repro.obs.recorder import FlightRecorder, ManifestReplay
from repro.obs.remote import (
    DEFAULT_CELL_EVENT_CAP,
    merge_chunk_info,
    worker_origin,
)
from repro.sim import schedule as schedule_mod
from repro.sim.costmodel import CostModel
from repro.sim.driver import RunResult, RunSpec
from repro.sim.options import ExecutionOptions
from repro.sim.pools import Pool, make_pool
from repro.sim.pools.base import CellTimeout  # noqa: F401 — re-export
from repro.sim.pools.base import HostDownError
from repro.sim.pools.worker import inject_cell_faults, run_with_alarm
from repro.sim.store import ResultStore

#: Where a cell's result came from (progress callbacks receive this).
SOURCE_MEMORY = "memory"
SOURCE_STORE = "store"
SOURCE_SIMULATED = "simulated"
SOURCE_FAILED = "failed"

#: Batch failure policies (see the module docstring's state machine).
FAILURE_POLICIES = ("raise", "skip", "partial")

#: Shared across all Engine instances by default, so e.g. the CLI's
#: exhibit loop and the bench fixtures see each other's runs.
_MEMORY_CACHE: Dict[Tuple[str, str, str], RunResult] = {}

#: The deprecated ``run_batch`` shim warns once per process.
_RUN_BATCH_WARNED = False


def clear_memory_cache() -> int:
    """Drop every in-process cached result; returns the count dropped."""
    count = len(_MEMORY_CACHE)
    _MEMORY_CACHE.clear()
    return count


class CellExecutionError(RuntimeError):
    """A cell kept failing after the engine's retry budget was spent."""

    def __init__(self, spec: RunSpec, attempts: int, cause: BaseException):
        super().__init__(
            f"cell ({spec.benchmark_name!r}, {spec.scheme!r}) failed after "
            f"{attempts} attempt(s): {cause!r}"
        )
        self.spec = spec
        self.attempts = attempts
        self.cause = cause


class BatchExecutionError(RuntimeError):
    """A degraded batch the caller cannot proceed with.

    The engine raises it under ``failure_policy="partial"`` when *every*
    cell failed; facades that need a complete batch (e.g.
    ``compare_schemes``) raise it for any failed cell.  Carries the
    assembled :class:`BatchResult` so callers can still inspect the
    per-cell outcomes.
    """

    def __init__(self, batch: "BatchResult", message: Optional[str] = None):
        if message is None:
            message = (
                f"all {len(batch)} cell(s) of the batch failed; first "
                f"error: {batch.failures[0].error}"
            )
        super().__init__(message)
        self.batch = batch


@dataclass
class CellOutcome:
    """Terminal state of one cell in a batch.

    ``status`` is ``"ok"`` (with ``result`` set and ``source`` naming the
    layer that produced it), or one of the failure kinds: ``"failed"``
    (exception exhausted the retry budget), ``"timeout"`` (final error
    was a :class:`CellTimeout`), ``"crashed"`` (worker-process deaths
    exhausted the budget).  Failed cells carry ``repr`` of the final
    error, ``result=None``, and — when available — the formatted
    ``traceback`` (a pool worker's via its ``remote_traceback``
    attribute, or the local one).
    """

    spec: RunSpec
    status: str
    result: Optional[RunResult] = None
    error: Optional[str] = None
    attempts: int = 0
    source: str = ""
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class BatchResult:
    """Per-cell outcomes of one :meth:`Engine.run` call, in order."""

    def __init__(self, outcomes: Sequence[CellOutcome]):
        self.outcomes: List[CellOutcome] = list(outcomes)

    def values(self) -> List[Optional[RunResult]]:
        """Results in cell order; ``None`` where a cell failed.

        The old ``Engine.run(cells) -> list`` shape, kept as a
        convenience: ``engine.run(cells).values()``.
        """
        return [outcome.result for outcome in self.outcomes]

    @property
    def results(self) -> List[Optional[RunResult]]:
        """Alias of :meth:`values` (property form)."""
        return self.values()

    @property
    def ok(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def failures(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def degraded(self) -> bool:
        """True when at least one cell failed (partial batch)."""
        return any(not o.ok for o in self.outcomes)

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[CellOutcome]:
        return iter(self.outcomes)

    def __repr__(self) -> str:
        detail = ", ".join(
            f"{status}={n}" for status, n in sorted(self.counts().items())
        )
        return f"BatchResult({len(self.outcomes)} cells: {detail})"


@dataclass
class EngineStats:
    """Counters for one Engine instance (reset with ``reset()``)."""

    simulations: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    deduplicated: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    pools_spawned: int = 0
    pool_reuses: int = 0
    #: Cells that requested a timeout the engine could not arm (SIGALRM
    #: needs the main thread) and therefore ran unbounded.
    timeouts_unarmed: int = 0
    #: Worker-side telemetry events truncated at the per-cell capture
    #: cap before the snapshot shipped (docs/INTERNALS.md §15).
    remote_events_dropped: int = 0
    #: Resilience counters (docs/INTERNALS.md §16).  Hosts whose
    #: circuit breaker opened / were re-admitted by a half-open probe:
    hosts_down: int = 0
    hosts_recovered: int = 0
    #: Cells rerouted to surviving hosts after a single-host death
    #: (the pool stayed up; contrast ``pool_rebuilds``).
    cells_rerouted: int = 0
    #: Straggling chunks speculatively re-submitted, and races the
    #: speculative copy won.
    stragglers_detected: int = 0
    speculations_won: int = 0
    #: ``run(..., resume=manifest)`` partition of the batch's cells
    #: against the prior run's manifest (done / failed / never-started).
    resumed_done: int = 0
    resumed_failed: int = 0
    resumed_new: int = 0
    #: Cost-model scheduling (docs/INTERNALS.md §18).  Pool rounds the
    #: planner laid out, and how many of their cells had estimates:
    rounds_planned: int = 0
    cells_cost_estimated: int = 0
    #: Rounds packed cost-balanced (vs falling back to legacy chunking).
    rounds_lpt: int = 0
    #: Last planned round's LPT makespan forecast vs what it measured
    #: (seconds; 0.0 until a round with estimates completes).
    predicted_makespan_s: float = 0.0
    actual_makespan_s: float = 0.0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


@dataclass
class CellProgress:
    """One progress-callback notification.

    ``in_flight`` counts cells currently submitted to the backend and
    not yet resolved; ``eta_s`` is a uniform-rate estimate of the
    remaining batch wall-clock (None until one cell has finished, and
    on the final notification).
    """

    done: int
    total: int
    spec: RunSpec
    source: str
    in_flight: int = 0
    eta_s: Optional[float] = None


ProgressCallback = Callable[[CellProgress], None]


class _PoolBroken(Exception):
    """Internal signal: the backend died; these cells were in flight."""

    def __init__(self, interrupted: List[int], cause: BaseException):
        super().__init__(f"pool broken with {len(interrupted)} cells in flight")
        self.interrupted = interrupted
        self.cause = cause


class Engine:
    """Executes batches of :class:`RunSpec` cells with caching + fan-out.

    Parameters
    ----------
    jobs:
        Worker processes for cells that must simulate.  ``1`` (default)
        runs everything in the calling process; ``N > 1`` is shorthand
        for ``pool="local:N"``.
    pool:
        Execution backend: a spec string resolved through
        :func:`repro.sim.pools.make_pool` (``"serial"``, ``"local:4"``,
        ``"ssh:hostfile"``, ``"ssh-loopback:2"``) or an already
        constructed :class:`~repro.sim.pools.Pool`.  Overrides ``jobs``.
    options:
        An :class:`~repro.sim.options.ExecutionOptions` bundle.  Knobs
        it covers (backend/jobs, chunk_size, max_pool_rebuilds, store)
        are taken from it unless the corresponding constructor argument
        was passed explicitly.
    store:
        A :class:`ResultStore` for cross-process persistence, or ``None``
        to keep results in memory only.
    use_cache:
        When False, both cache layers are bypassed *in both directions*:
        nothing is read, nothing is written, every cell simulates.
    cell_timeout:
        Per-cell wall-clock budget in seconds (None = unbounded).  A
        timed-out cell is retried like any other failure.
    max_retries:
        Extra attempts per cell after the first failure.
    failure_policy:
        ``"raise"`` (default): a cell that exhausts its retries aborts
        the batch with :class:`CellExecutionError` — the legacy
        contract.  ``"skip"``: the failure is recorded as a
        :class:`CellOutcome` and the batch keeps going; ``run()``
        leaves ``None`` in that cell's ``values()`` slot.  ``"partial"``:
        like ``"skip"``, but a batch in which *every* cell failed raises
        :class:`BatchExecutionError`.
    retry_backoff:
        Base of the exponential backoff slept before each retry
        (seconds; ``attempt n`` waits ``base * 2**(n-1)``, jittered
        ±50 %, capped at 30 s).  ``0`` (default) disables backoff.
        The jitter is drawn from the deterministic fault hash
        (seeded by ``fault_plan.seed``, or 0 without a plan) keyed on
        the cell's identity and attempt — never from global ``random``
        — so chaos runs with backoff enabled replay identically.
    straggler_factor:
        Straggler mitigation (docs/INTERNALS.md §16): when set, a
        chunk whose runtime exceeds ``straggler_factor`` times the
        robust per-chunk estimate (median + 3×MAD of completed cell
        durations) is speculatively re-submitted to an idle worker;
        first result wins, the loser is cancelled, and when both
        complete their results are asserted bit-identical.  ``None``
        (default) disables speculation.  Only meaningful on parallel
        backends with spare capacity.
    resume:
        Crash-safe resume (docs/INTERNALS.md §16): a flight-recorder
        manifest path from a previous (killed) run.  The manifest is
        replayed to partition this batch's cells into done / failed /
        never-started (``stats.resumed_*``); execution itself is
        unchanged — finished cells are answered by the result store
        under the same fingerprints (zero re-simulation; entries GC'd
        from the store simply re-execute), and the new manifest links
        back to the original (``resume_of``).  Consumed by the next
        :meth:`run` call; ``run(cells, resume=...)`` overrides.
    max_pool_rebuilds:
        How many times a batch may rebuild a broken backend (worker
        crash recovery) before degrading to in-process serial execution
        for the interrupted cells.  Backends without the ``rebuild``
        capability degrade immediately.
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`.  ``None`` (default)
        injects nothing and adds no overhead.  A plan whose sites
        perturb simulation results (profiling noise, drift, injected
        reconfiguration denials) makes every cell non-cacheable for the
        batch: perturbed results must never leak into either cache
        layer.
    progress:
        Callback receiving a :class:`CellProgress` per finished cell.
    runner:
        Test/extension hook replacing :func:`repro.sim.driver.execute`;
        forces serial in-process execution.
    telemetry:
        Optional :class:`repro.obs.Telemetry` session.  The engine emits
        wall-clock scheduling events into it (``cell_start``,
        ``cell_done``, ``store_hit``, ``memory_hit``, ``retry``,
        ``timeout``, a per-cell ``progress`` heartbeat, and the
        degradation events ``worker_crash``, ``cell_failed``,
        ``batch_degraded``, ``timeout_disabled``); cells executed
        *serially* additionally stream their simulation-side tuning
        events into the same session.  Cells that run through a pool
        backend capture their tuning events worker-side instead
        (bounded per cell by ``remote_capture_events``), ship them back
        on the chunk reply, and the engine clock-rebases and merges
        them into this session on per-worker/per-cell tracks — so one
        unified trace covers every backend (docs/INTERNALS.md §15).
        The capture is requested only when this session is live;
        telemetry never changes what a cell computes.
    remote_capture_events:
        Per-cell event budget for worker-side capture (default
        :data:`repro.obs.remote.DEFAULT_CELL_EVENT_CAP`); events beyond
        it are counted in ``stats.remote_events_dropped``.  ``0``
        disables worker-side capture entirely.
    recorder:
        Optional :class:`repro.obs.FlightRecorder` writing the per-run
        JSONL manifest (batch config, per-cell outcomes, degradation
        notes).  Defaults to :meth:`FlightRecorder.from_env`, i.e. a
        recorder under ``$REPRO_FLIGHT_DIR`` when that is set.
    chunk_size:
        Cells per pool submission.  ``None`` (default) picks
        ``ceil(cells / (workers * 4))`` capped at 8 — enough chunks to
        keep every worker busy for several rounds while amortising
        pickling, without collapsing the crash-retry granularity of
        small batches.  Retries are always resubmitted as single-cell
        chunks.
    schedule:
        Chunk-planning mode (docs/INTERNALS.md §18).  ``"lpt"``
        (default) packs pool rounds cost-balanced from the cost model's
        runtime estimates — longest-estimated work first, chunk sizes
        weighted by observed per-host speed — and degrades to exactly
        the ``"fifo"`` behaviour (submission order, count-based
        chunks) while no history exists.  ``"fifo"`` forces the legacy
        plan unconditionally.  Scheduling is semantics-free: results
        and their ordering are bit-identical either way (conformance
        tested); only wall-clock changes.
    cost_model:
        The :class:`~repro.sim.costmodel.CostModel` feeding the
        scheduler, shared across engines if desired.  ``None`` builds a
        private one, loaded from ``cost_model_dir`` when set and
        warm-booted from the result store's entry metadata on the
        first planned round.
    cost_model_dir:
        Directory the cost model snapshots itself into
        (``cost_model.json``, written after each batch that learned
        something); ``None`` keeps the model in memory only.
    warm_start:
        When True (default), backends with the ``warm_start``
        capability pre-build the first batch's benchmarks and
        pre-decode their programs in every worker at spawn (see
        docs/INTERNALS.md §13); the warm-up is reported via
        ``worker_warmup`` telemetry events.  Later batches reuse the
        live pool and the workers' memoised benchmarks.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        cell_timeout: Optional[float] = None,
        max_retries: int = 1,
        failure_policy: str = "raise",
        retry_backoff: float = 0.0,
        max_pool_rebuilds: int = 3,
        fault_plan: Optional[FaultPlan] = None,
        progress: Optional[ProgressCallback] = None,
        runner: Optional[Callable[[RunSpec], RunResult]] = None,
        memory_cache: Optional[Dict] = None,
        telemetry=None,
        chunk_size: Optional[int] = None,
        warm_start: bool = True,
        pool: Union[str, Pool, None] = None,
        options: Optional[ExecutionOptions] = None,
        remote_capture_events: Optional[int] = None,
        recorder: Optional[FlightRecorder] = None,
        straggler_factor: Optional[float] = None,
        resume: Union[str, Path, None] = None,
        schedule: Optional[str] = None,
        cost_model: Optional[CostModel] = None,
        cost_model_dir: Union[str, Path, None] = None,
    ):
        if failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, got "
                f"{failure_policy!r}"
            )
        if options is not None:
            # Explicit constructor arguments win; anything left at its
            # default is taken from the options bundle (API.md has the
            # full mapping).
            if pool is None and jobs == 1:
                pool = options.resolved_backend()
            if chunk_size is None:
                chunk_size = options.chunk_size
            if max_pool_rebuilds == 3:
                max_pool_rebuilds = options.max_pool_rebuilds
            if straggler_factor is None:
                straggler_factor = options.straggler_factor
            if schedule is None:
                schedule = options.schedule
            if cost_model_dir is None:
                cost_model_dir = options.cost_model_dir
            if store is None:
                store = options.make_store()
        if pool is None:
            pool = f"local:{jobs}" if jobs > 1 else "serial"
        self.pool: Pool = make_pool(pool) if isinstance(pool, str) else pool
        self.jobs = self.pool.workers if self.pool.capabilities.parallel else 1
        self.store = store
        self.use_cache = use_cache
        self.cell_timeout = cell_timeout
        self.max_retries = max(0, int(max_retries))
        self.failure_policy = failure_policy
        self.retry_backoff = max(0.0, float(retry_backoff))
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        self.fault_plan = fault_plan
        self.progress = progress
        self.runner = runner
        self._memory = (
            _MEMORY_CACHE if memory_cache is None else memory_cache
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.chunk_size = (
            None if chunk_size is None else max(1, int(chunk_size))
        )
        self.warm_start = bool(warm_start)
        self.remote_capture_events = (
            DEFAULT_CELL_EVENT_CAP
            if remote_capture_events is None
            else max(0, int(remote_capture_events))
        )
        self.recorder = (
            recorder if recorder is not None else FlightRecorder.from_env()
        )
        self.straggler_factor = (
            None
            if straggler_factor is None or straggler_factor <= 0
            else float(straggler_factor)
        )
        self._resume: Union[str, Path, None] = resume
        self.schedule = schedule if schedule is not None else "lpt"
        if self.schedule not in schedule_mod.SCHEDULE_MODES:
            raise ValueError(
                f"schedule must be one of {schedule_mod.SCHEDULE_MODES}, "
                f"got {self.schedule!r}"
            )
        self._cost_model_dir = (
            None if cost_model_dir is None else Path(cost_model_dir)
        )
        if cost_model is not None:
            self.cost_model = cost_model
        elif self._cost_model_dir is not None:
            self.cost_model = CostModel.load_dir(self._cost_model_dir)
        else:
            self.cost_model = CostModel()
        #: Store-metadata warm boot happens once, lazily, before the
        #: first planned round (scanning the store is not free).
        self._cost_bootstrapped = False
        self.stats = EngineStats()
        self._unarmed_warned = False
        self._store_pending: List[Tuple] = []
        #: Per-track high-water marks for clock-rebased worker events;
        #: engine-lifetime so merged tracks stay monotone across batches.
        self._remote_hwm: Dict[str, float] = {}
        self._in_flight = 0
        self._run_t0 = time.perf_counter()

    # -- public API --------------------------------------------------------

    def run(
        self,
        cells: Sequence[RunSpec],
        resume: Union[str, Path, None] = None,
    ) -> "BatchResult":
        """Resolve every cell (cache, store, or backend) into a
        :class:`BatchResult` of per-cell :class:`CellOutcome`\\ s.

        ``run(cells).values()`` gives the old list-of-results shape.
        Under ``failure_policy="skip"``/``"partial"`` a failed cell's
        ``values()`` slot holds ``None``.  ``resume`` names a previous
        run's flight-recorder manifest to replay (see the constructor
        docstring); it overrides any ``Engine(resume=...)`` default.
        """
        specs = list(cells)
        resume_path = resume if resume is not None else self._resume
        self._resume = None
        replay: Optional[ManifestReplay] = None
        resume_counts: Optional[Dict[str, int]] = None
        if resume_path is not None:
            replay = FlightRecorder.replay(resume_path)
            resume_counts = self._apply_resume(specs, replay)
        recorder = self.recorder
        if recorder is not None:
            recorder.begin_batch(
                backend=self.pool.name,
                workers=self.pool.workers,
                failure_policy=self.failure_policy,
                cell_timeout=self.cell_timeout,
                max_retries=self.max_retries,
                fault_plan=self.fault_plan,
                cells=[self._cell_identity(spec) for spec in specs],
                resume_of=None if replay is None else str(replay.path),
                resume_counts=resume_counts,
            )
        try:
            batch = self._run_specs(specs)
        except BaseException as error:
            if recorder is not None:
                recorder.batch_aborted(error)
            raise
        if recorder is not None:
            recorder.end_batch(
                batch, self.stats, self.telemetry.log.dropped
            )
        if self._cost_model_dir is not None and self.cost_model.dirty:
            self.cost_model.save_dir(self._cost_model_dir)
        return batch

    def _apply_resume(
        self, specs: List[RunSpec], replay: ManifestReplay
    ) -> Dict[str, int]:
        """Partition this batch's cells against a prior run's manifest.

        The partition is bookkeeping, not a scheduling change: done
        cells still flow through the normal lookup path, where the
        result store answers them under the same fingerprint (zero
        re-simulation).  A store entry GC'd between the runs simply
        misses and re-executes — resume is idempotent, never trusting
        the manifest over the store.
        """
        counts = {"done": 0, "failed": 0, "new": 0}
        for spec in specs:
            identity = self._cell_identity(spec)
            fingerprint = identity["fingerprint"]
            kind = (
                replay.classify(
                    (identity["benchmark"], identity["scheme"], fingerprint)
                )
                if fingerprint
                else "new"
            )
            counts[kind] += 1
        self.stats.resumed_done += counts["done"]
        self.stats.resumed_failed += counts["failed"]
        self.stats.resumed_new += counts["new"]
        self.telemetry.emit_wall(
            BATCH_RESUMED,
            resume_of=str(replay.path),
            prior_completed=replay.completed,
            prior_aborted=replay.aborted,
            **counts,
        )
        self.telemetry.metrics.counter("engine.batches_resumed").inc()
        return counts

    @staticmethod
    def _cell_identity(spec: RunSpec) -> Dict[str, object]:
        """Flight-recorder identity of one cell (fingerprint if any)."""
        fingerprint = None
        if spec.cacheable:
            try:
                fingerprint = spec.cache_key()[2]
            except Exception:
                fingerprint = None
        return {
            "benchmark": spec.benchmark_name,
            "scheme": spec.scheme,
            "fingerprint": fingerprint,
        }

    def _run_specs(self, specs: List[RunSpec]) -> "BatchResult":
        total = len(specs)
        self._run_t0 = time.perf_counter()
        self._in_flight = 0
        results: List[Optional[RunResult]] = [None] * total
        self._outcomes: List[Optional[CellOutcome]] = [None] * total
        self._done = 0
        self._total = total

        pending: List[int] = []
        leaders: Dict[Tuple[str, str, str], int] = {}
        followers: Dict[int, List[int]] = {}
        for index, spec in enumerate(specs):
            hit = self._lookup(spec)
            if hit is not None:
                result, source = hit
                results[index] = result
                outcome = CellOutcome(
                    spec=spec, status="ok", result=result, source=source
                )
                self._outcomes[index] = outcome
                self._recorder_cell(outcome)
                self._notify(spec, source)
                continue
            if self.use_cache and spec.cacheable:
                key = spec.cache_key()
                leader = leaders.get(key)
                if leader is not None:
                    followers.setdefault(leader, []).append(index)
                    self.stats.deduplicated += 1
                    continue
                leaders[key] = index
            pending.append(index)

        if pending:
            try:
                self._execute_pending(specs, pending, results)
            finally:
                self._flush_store()
        for leader, dupes in followers.items():
            source = self._outcomes[leader]
            for index in dupes:
                if source is not None and source.ok:
                    results[index] = results[leader]
                    outcome = CellOutcome(
                        spec=specs[index],
                        status="ok",
                        result=results[leader],
                        attempts=0,
                        source=SOURCE_MEMORY,
                    )
                    self._outcomes[index] = outcome
                    self._recorder_cell(outcome)
                    self._notify(specs[index], SOURCE_MEMORY)
                else:
                    # Mirror the leader's failure onto its duplicates.
                    outcome = CellOutcome(
                        spec=specs[index],
                        status=source.status if source else "failed",
                        error=source.error if source else None,
                        attempts=source.attempts if source else 0,
                        source=SOURCE_FAILED,
                    )
                    self._outcomes[index] = outcome
                    self._recorder_cell(outcome)
                    self._notify(specs[index], SOURCE_FAILED)
        batch = BatchResult(self._outcomes)  # type: ignore[arg-type]
        if batch.degraded:
            telemetry = self.telemetry
            telemetry.emit_wall(
                BATCH_DEGRADED,
                failed=len(batch.failures),
                total=len(batch),
            )
            telemetry.metrics.counter("engine.batches_degraded").inc()
            if self.failure_policy == "partial" and not batch.ok:
                raise BatchExecutionError(batch)
        return batch

    def run_batch(self, cells: Sequence[RunSpec]) -> "BatchResult":
        """Deprecated alias of :meth:`run` (they merged; same return).

        .. deprecated::
            Call ``run(cells)`` — it returns the same
            :class:`BatchResult` now.
        """
        global _RUN_BATCH_WARNED
        if not _RUN_BATCH_WARNED:
            _RUN_BATCH_WARNED = True
            warnings.warn(
                "Engine.run_batch() is deprecated; Engine.run() returns "
                "the same BatchResult (use .values() for the old "
                "list-of-results shape)",
                DeprecationWarning,
                stacklevel=2,
            )
        return self.run(cells)

    def run_one(self, spec: RunSpec) -> RunResult:
        """Single-cell convenience wrapper around :meth:`run`."""
        return self.run([spec]).values()[0]

    def close(self) -> None:
        """Shut down the execution backend (idempotent, exception-safe).

        Waits for idle shutdown; the engine stays usable — the next
        parallel batch simply starts (and re-warms) the backend again.
        Safe on a half-constructed engine (a constructor that raised
        before assigning the pool) and on a pool whose backend state is
        already broken — e.g. closing after a degrade-to-serial: a
        failing idle shutdown is retried fail-fast, and a backend that
        will not even do that is abandoned rather than propagated.
        """
        pool = getattr(self, "pool", None)
        if pool is None:
            return
        try:
            pool.close(fail_fast=False)
        except Exception:
            try:
                pool.close(fail_fast=True)
            except Exception:
                pass

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — GC timing
        pool = getattr(self, "pool", None)
        if pool is None:
            return
        try:
            pool.close(fail_fast=True)
        except Exception:
            pass

    # -- cache layers ------------------------------------------------------

    def _cell_cacheable(self, spec: RunSpec) -> bool:
        """Both layers readable/writable for this cell in this engine?

        A fault plan that perturbs simulation results poisons every cell
        it touches: such results are functions of ``(spec, plan)``, not
        of the configuration fingerprint, and must never be cached.
        """
        if not (self.use_cache and spec.cacheable):
            return False
        plan = self.fault_plan
        return plan is None or not plan.perturbs_simulation

    def _lookup(self, spec: RunSpec) -> Optional[Tuple[RunResult, str]]:
        if not self._cell_cacheable(spec):
            return None
        key = spec.cache_key()
        if key in self._memory:
            self.stats.memory_hits += 1
            self.telemetry.emit_wall(
                MEMORY_HIT,
                benchmark=spec.benchmark_name,
                scheme=spec.scheme,
            )
            self.telemetry.metrics.counter("engine.memory_hits").inc()
            return self._memory[key], SOURCE_MEMORY
        if self.store is not None:
            result = self.store.get(*key)
            if result is not None:
                self._memory[key] = result
                self.stats.store_hits += 1
                self.telemetry.emit_wall(
                    STORE_HIT,
                    benchmark=spec.benchmark_name,
                    scheme=spec.scheme,
                )
                self.telemetry.metrics.counter("engine.store_hits").inc()
                return result, SOURCE_STORE
        return None

    def _record(
        self,
        spec: RunSpec,
        result: RunResult,
        elapsed_s: Optional[float] = None,
        executed_by: Optional[str] = None,
    ) -> None:
        if not self._cell_cacheable(spec):
            return
        key = spec.cache_key()
        self._memory[key] = result
        if self.store is not None:
            # The memory-cache write above serves intra-batch duplicates;
            # the disk write is deferred and flushed once per batch.
            # Measured runtime and executor identity ride along as the
            # entry's meta block, warm-booting future processes' cost
            # models (docs/INTERNALS.md §18).
            meta = (
                self.cost_model.store_meta(spec, elapsed_s, executed_by)
                if elapsed_s is not None
                else None
            )
            self._store_pending.append((key, result, meta))

    def _flush_store(self) -> None:
        """Batch-write this batch's simulated results to the store.

        One :meth:`ResultStore.put_many` pass instead of a put per cell;
        runs in a ``finally`` so results completed before a mid-batch
        failure are still persisted (the pre-batching contract).
        """
        pending, self._store_pending = self._store_pending, []
        if self.store is None or not pending:
            return
        paths = self.store.put_many(
            (key[0], key[1], key[2], result, meta)
            for key, result, meta in pending
        )
        plan = self.fault_plan
        if plan is not None:
            for (key, _, _), path in zip(pending, paths):
                if plan.decide("store_corrupt", key):
                    corrupt_file(path)

    def _notify(self, spec: RunSpec, source: str) -> None:
        self._done += 1
        done, total = self._done, self._total
        eta = None
        if done < total:
            elapsed = time.perf_counter() - self._run_t0
            eta = elapsed / done * (total - done)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit_wall(
                PROGRESS,
                done=done,
                total=total,
                in_flight=self._in_flight,
                source=source,
                benchmark=spec.benchmark_name,
                scheme=spec.scheme,
                eta_s=eta,
            )
        if self.progress is not None:
            self.progress(
                CellProgress(
                    done,
                    total,
                    spec,
                    source,
                    in_flight=self._in_flight,
                    eta_s=eta,
                )
            )

    def _recorder_cell(self, outcome: CellOutcome) -> None:
        if self.recorder is None:
            return
        # The fingerprint makes the cell record replayable: ``--resume``
        # matches manifest records to store entries by the same triple.
        identity = self._cell_identity(outcome.spec)
        self.recorder.cell(
            benchmark=outcome.spec.benchmark_name,
            scheme=outcome.spec.scheme,
            status=outcome.status,
            attempts=outcome.attempts,
            source=outcome.source,
            error=outcome.error,
            traceback=outcome.traceback,
            fingerprint=identity["fingerprint"],
        )

    # -- failure bookkeeping ----------------------------------------------

    def _record_success(
        self, spec: RunSpec, index: int, result: RunResult, attempts: int,
        results: List[Optional[RunResult]],
        elapsed_s: Optional[float] = None,
        executed_by: Optional[str] = None,
    ) -> None:
        results[index] = result
        outcome = CellOutcome(
            spec=spec,
            status="ok",
            result=result,
            attempts=attempts,
            source=SOURCE_SIMULATED,
        )
        self._outcomes[index] = outcome
        self.stats.simulations += 1
        self.telemetry.metrics.counter("engine.simulations").inc()
        if elapsed_s is not None:
            self.cost_model.observe(spec, elapsed_s)
        self._record(spec, result, elapsed_s, executed_by)
        if self.recorder is not None:
            # Write-ahead ordering for crash-safe resume (docs §16): the
            # store write must be durable before the manifest says
            # "done", so a SIGKILL between the two re-executes the cell
            # rather than trusting a record the store cannot back.
            self._flush_store()
        self._recorder_cell(outcome)
        self._notify(spec, SOURCE_SIMULATED)

    def _record_failure(
        self, spec: RunSpec, index: int, attempts: int, error: BaseException
    ) -> None:
        """Terminal failure of one cell under skip/partial policies."""
        if isinstance(error, CellTimeout):
            status = "timeout"
        elif isinstance(
            error,
            (_PoolBroken, HostDownError) + self.pool.broken_exceptions,
        ):
            status = "crashed"
        else:
            status = "failed"
        tb = getattr(error, "remote_traceback", None)
        if tb is None and error.__traceback__ is not None:
            tb = "".join(
                traceback_mod.format_exception(
                    type(error), error, error.__traceback__
                )
            )
        outcome = CellOutcome(
            spec=spec,
            status=status,
            error=repr(error),
            attempts=attempts,
            source=SOURCE_FAILED,
            traceback=tb,
        )
        self._outcomes[index] = outcome
        self.stats.failures += 1
        telemetry = self.telemetry
        telemetry.emit_wall(
            CELL_FAILED,
            benchmark=spec.benchmark_name,
            scheme=spec.scheme,
            status=status,
            attempts=attempts,
            error=repr(error)[:200],
        )
        telemetry.metrics.counter("engine.cell_failures").inc()
        self._recorder_cell(outcome)
        self._notify(spec, SOURCE_FAILED)

    def _note_unarmed_timeout(self, count: int = 1) -> None:
        """Cell timeouts that could not be armed (no usable main thread —
        either the engine runs off the main thread, or a pool worker's
        chunk reported ``unarmed_timeouts``)."""
        self.stats.timeouts_unarmed += count
        if not self._unarmed_warned:
            self._unarmed_warned = True
            self.telemetry.emit_wall(
                TIMEOUT_DISABLED,
                reason="SIGALRM needs the main thread; cells run unbounded",
            )
            self.telemetry.metrics.counter("engine.timeouts_unarmed").inc()

    def _sleep_backoff(
        self, attempt: int, spec: Optional[RunSpec] = None
    ) -> None:
        """Exponential backoff with jitter before retry ``attempt + 1``.

        Wall-clock pacing only — it never influences results.  The
        jitter is nonetheless deterministic: it comes from the same
        pure ``(seed, site, key)`` hash the fault plan uses (seed 0
        without a plan), keyed on the cell identity and attempt — so a
        chaos run with backoff enabled replays with identical pacing,
        never touching global ``random`` state.
        """
        base = self.retry_backoff
        if base <= 0.0:
            return
        delay = min(base * 2.0 ** max(0, attempt - 1), 30.0)
        seed = 0 if self.fault_plan is None else self.fault_plan.seed
        key = (
            ("pool", attempt)
            if spec is None
            else (spec.benchmark_name, spec.scheme, attempt)
        )
        jitter = deterministic_uniform(seed, "retry_backoff", key)
        time.sleep(delay * (0.5 + jitter))

    def _drain_health(self) -> None:
        """Forward the pool's buffered health transitions into
        telemetry, stats, and the flight recorder (docs §16)."""
        events = self.pool.drain_health_events()
        if not events:
            return
        telemetry = self.telemetry
        for name, fields in events:
            if name == HOST_DOWN:
                self.stats.hosts_down += 1
            elif name == HOST_RECOVERED:
                self.stats.hosts_recovered += 1
            telemetry.emit_wall(name, backend=self.pool.name, **fields)
            telemetry.metrics.counter(f"engine.{name}").inc()
            if self.recorder is not None:
                self.recorder.note(name, backend=self.pool.name, **fields)

    # -- execution ---------------------------------------------------------

    def _execute_pending(
        self,
        specs: Sequence[RunSpec],
        pending: List[int],
        results: List[Optional[RunResult]],
    ) -> None:
        pool_eligible = [
            i for i in pending if self._pool_eligible(specs[i])
        ]
        serial = [i for i in pending if i not in set(pool_eligible)]
        # A single eligible cell normally runs serially (cheaper, and it
        # streams simulation telemetry directly) — unless the parent's
        # telemetry session is live and worker-side capture is on, in
        # which case routing through the pool exercises the same
        # capture/merge path a multi-cell batch uses, keeping traces
        # uniform across batch sizes.
        if self.pool.capabilities.parallel and (
            len(pool_eligible) > 1
            or (
                pool_eligible
                and self.telemetry.enabled
                and self.remote_capture_events > 0
            )
        ):
            self._run_pool(specs, pool_eligible, results)
        else:
            serial = sorted(set(serial) | set(pool_eligible))
        for index in serial:
            self._run_serial(specs[index], index, results)

    def _pool_eligible(self, spec: RunSpec) -> bool:
        return (
            self.runner is None
            and isinstance(spec.benchmark, str)
            and spec.policy is None
            and spec.preload_database is None
        )

    def _run_serial(
        self,
        spec: RunSpec,
        index: int,
        results: List[Optional[RunResult]],
    ) -> None:
        telemetry = self.telemetry
        attempts = 0
        while True:
            attempts += 1
            started = telemetry.now_us()
            telemetry.emit_wall(
                CELL_START,
                track="worker:0",
                ts=started,
                benchmark=spec.benchmark_name,
                scheme=spec.scheme,
                attempt=attempts,
            )
            cell_t0 = time.perf_counter()
            try:
                if self.runner is not None:
                    result = self.runner(spec)
                else:
                    inject_cell_faults(self.fault_plan, spec, attempts)
                    result = run_with_alarm(
                        spec,
                        self.cell_timeout,
                        telemetry if telemetry.enabled else None,
                        fault_plan=self.fault_plan,
                        on_unarmed=self._note_unarmed_timeout,
                    )
                elapsed_s = time.perf_counter() - cell_t0
                break
            except Exception as error:  # noqa: BLE001 — retry boundary
                if isinstance(error, CellTimeout):
                    self.stats.timeouts += 1
                    telemetry.emit_wall(
                        TIMEOUT,
                        track="worker:0",
                        benchmark=spec.benchmark_name,
                        scheme=spec.scheme,
                    )
                    telemetry.metrics.counter("engine.timeouts").inc()
                if attempts > self.max_retries:
                    if self.failure_policy == "raise":
                        raise CellExecutionError(
                            spec, attempts, error
                        ) from error
                    self._record_failure(spec, index, attempts, error)
                    return
                self.stats.retries += 1
                telemetry.emit_wall(
                    RETRY,
                    track="worker:0",
                    benchmark=spec.benchmark_name,
                    scheme=spec.scheme,
                    attempt=attempts,
                )
                telemetry.metrics.counter("engine.retries").inc()
                self._sleep_backoff(attempts, spec)
        telemetry.emit_wall(
            CELL_DONE,
            track="worker:0",
            ts=started,
            dur=telemetry.now_us() - started,
            benchmark=spec.benchmark_name,
            scheme=spec.scheme,
        )
        self._record_success(
            spec, index, result, attempts, results,
            elapsed_s=elapsed_s, executed_by=worker_origin(),
        )

    # -- pool execution -----------------------------------------------------

    def _run_pool(
        self,
        specs: Sequence[RunSpec],
        indices: List[int],
        results: List[Optional[RunResult]],
    ) -> None:
        """Backend fan-out with worker-crash recovery.

        Attempt counters, display lanes, and submission ordinals survive
        pool rebuilds, so a cell's retry budget is global across crashes
        and the telemetry lanes stay stable.  Backends without the
        ``rebuild`` capability degrade straight to serial on the first
        crash.
        """
        attempts: Dict[int, int] = {i: 0 for i in indices}
        lanes: Dict[int, int] = {}
        submitted_at: Dict[int, float] = {}
        self._submissions = 0
        to_run = list(indices)
        rebuilds = 0
        while to_run:
            try:
                self._pool_round(
                    specs, to_run, results, attempts, lanes, submitted_at
                )
                return
            except _PoolBroken as broken:
                self._drain_health()
                to_run = self._survivors_of_crash(
                    specs, broken, attempts, results
                )
                if not to_run:
                    return
                rebuilds += 1
                self.stats.pool_rebuilds += 1
                if (
                    rebuilds > self.max_pool_rebuilds
                    or not self.pool.capabilities.rebuild
                ):
                    # The backend keeps dying (or cannot be rebuilt):
                    # degrade to in-process serial execution for
                    # whatever is left.  Worker-crash injection never
                    # fires in the parent process, and a genuinely
                    # poisoned environment at least fails with an
                    # attributable per-cell error.
                    if self.recorder is not None:
                        self.recorder.note(
                            "degraded_to_serial",
                            backend=self.pool.name,
                            rebuilds=rebuilds,
                            cells=len(to_run),
                        )
                    for index in to_run:
                        self._run_serial(specs[index], index, results)
                    return
                self._sleep_backoff(rebuilds)

    def _survivors_of_crash(
        self,
        specs: Sequence[RunSpec],
        broken: _PoolBroken,
        attempts: Dict[int, int],
        results: List[Optional[RunResult]],
    ) -> List[int]:
        """Split crash-interrupted cells into resubmittable vs. exhausted."""
        telemetry = self.telemetry
        self.stats.worker_crashes += 1
        telemetry.emit_wall(
            WORKER_CRASH,
            backend=self.pool.name,
            interrupted=len(broken.interrupted),
            error=repr(broken.cause)[:200],
        )
        telemetry.metrics.counter("engine.worker_crashes").inc()
        if self.recorder is not None:
            self.recorder.note(
                "worker_crash",
                backend=self.pool.name,
                interrupted=len(broken.interrupted),
                error=repr(broken.cause)[:200],
            )
        survivors: List[int] = []
        for index in broken.interrupted:
            spec = specs[index]
            if attempts[index] > self.max_retries:
                if self.failure_policy == "raise":
                    raise CellExecutionError(
                        spec, attempts[index], broken.cause
                    ) from broken.cause
                self._record_failure(
                    spec, index, attempts[index], broken.cause
                )
                continue
            self.stats.retries += 1
            telemetry.emit_wall(
                RETRY,
                benchmark=spec.benchmark_name,
                scheme=spec.scheme,
                attempt=attempts[index],
                reason="worker_crash",
            )
            telemetry.metrics.counter("engine.retries").inc()
            survivors.append(index)
        return survivors

    def _ensure_pool(
        self, specs: Sequence[RunSpec], indices: List[int]
    ) -> Pool:
        """The live backend, starting (and warming) it if needed."""
        telemetry = self.telemetry
        pool = self.pool
        warm: Dict[str, None] = {}
        if self.warm_start and pool.capabilities.warm_start:
            for index in indices:
                warm.setdefault(specs[index].benchmark_name, None)
        spawned = pool.start(tuple(warm))
        if spawned:
            self.stats.pools_spawned += 1
            telemetry.emit_wall(
                POOL_SPAWNED,
                backend=pool.name,
                jobs=pool.workers,
                warmed=list(warm),
            )
            telemetry.metrics.counter("engine.pools_spawned").inc()
        else:
            self.stats.pool_reuses += 1
            telemetry.emit_wall(
                POOL_REUSED,
                backend=pool.name,
                jobs=pool.workers,
                warmed=list(getattr(pool, "warmed", ())),
            )
            telemetry.metrics.counter("engine.pool_reuses").inc()
        return pool

    def _chunks(self, indices: List[int]) -> List[List[int]]:
        """Legacy deterministic chunk partition (count-based, in
        submission order) — the planner's cold-start/fifo shape."""
        return schedule_mod.legacy_chunks(
            indices, self.pool.workers, self.chunk_size
        )

    def _plan_round(
        self, specs: Sequence[RunSpec], indices: List[int]
    ) -> Tuple["schedule_mod.RoundPlan", Dict[int, Optional[float]]]:
        """Lay out one pool round from the cost model's estimates.

        Returns the plan plus the per-cell estimate map (the straggler
        budget reuses it).  Under ``schedule="fifo"`` — or with no
        usable history — this reproduces the legacy partition exactly;
        see :func:`repro.sim.schedule.plan_round`.
        """
        estimates: Dict[int, Optional[float]] = {}
        slot_weights = None
        if self.schedule == "lpt":
            if not self._cost_bootstrapped:
                self._cost_bootstrapped = True
                if self.store is not None:
                    self.cost_model.bootstrap_from_store(self.store)
            estimates = {
                i: self.cost_model.estimate(specs[i]) for i in indices
            }
            try:
                slot_weights = self.cost_model.host_weights(
                    self.pool.host_slots()
                )
            except Exception:
                slot_weights = None
        plan = schedule_mod.plan_round(
            indices,
            estimates,
            workers=self.pool.workers,
            chunk_size=self.chunk_size,
            schedule=self.schedule,
            slot_weights=slot_weights,
        )
        self.stats.rounds_planned += 1
        self.stats.cells_cost_estimated += plan.estimated_cells
        if plan.mode == "lpt":
            self.stats.rounds_lpt += 1
            self.stats.predicted_makespan_s = plan.predicted_makespan_s
        return plan, estimates

    def _merge_worker_snapshot(
        self,
        chunk_info: Optional[Dict],
        chunk: List[int],
        submitted_at: Dict[int, float],
    ) -> None:
        """Fold one chunk's worker-side telemetry snapshot into the
        parent session (docs/INTERNALS.md §15).

        Unarmed-timeout counts always merge (they ride even capture-less
        replies); captured events/metrics clock-rebase onto per-worker
        and per-cell tracks with engine-lifetime monotonicity.
        """
        if not chunk_info:
            return
        unarmed = int(chunk_info.get("unarmed_timeouts", 0) or 0)
        if unarmed:
            self._note_unarmed_timeout(count=unarmed)
        if not chunk_info.get("cells"):
            return
        telemetry = self.telemetry
        merged = merge_chunk_info(
            telemetry,
            chunk_info,
            submitted_at_us=min(submitted_at[i] for i in chunk),
            receipt_us=telemetry.now_us(),
            hwm=self._remote_hwm,
        )
        self.stats.remote_events_dropped += merged["dropped"]

    def _pool_round(
        self,
        specs: Sequence[RunSpec],
        indices: List[int],
        results: List[Optional[RunResult]],
        attempts: Dict[int, int],
        lanes: Dict[int, int],
        submitted_at: Dict[int, float],
    ) -> None:
        """One round against the persistent backend; raises
        :class:`_PoolBroken` on worker death.

        Cells go out in chunks (shared timeout/plan payload, per-cell
        outcomes back); retries are resubmitted as single-cell chunks so
        a flaky cell cannot hold healthy chunk-mates hostage.  Any
        failure path discards the backend fail-fast — it may hold
        in-flight work of a poisoned batch and must not leak into the
        next one.
        """
        telemetry = self.telemetry
        pool = self._ensure_pool(specs, indices)
        broken_types = pool.broken_exceptions
        plan, estimates = self._plan_round(specs, indices)
        round_t0 = time.perf_counter()
        futures: Dict = {}
        #: Straggler-mitigation state (docs/INTERNALS.md §16): wall-clock
        #: start per chunk future, primary↔twin links (both directions),
        #: the twins themselves, and completed per-cell durations feeding
        #: the median+MAD runtime estimate.
        chunk_started: Dict = {}
        twins: Dict = {}
        speculative: set = set()
        durations: List[float] = []
        # Worker-side telemetry capture is requested only when the
        # parent session is live, so the NULL_TELEMETRY default keeps
        # the legacy 3-tuple payload / 2-tuple reply wire traffic.
        capture = (
            {"max_events": self.remote_capture_events}
            if telemetry.enabled and self.remote_capture_events > 0
            else None
        )
        try:

            def _submit(chunk: List[int]) -> None:
                lane = self._submissions % max(1, pool.workers)
                self._submissions += 1
                cells = []
                for index in chunk:
                    attempts[index] += 1
                    lanes.setdefault(index, lane)
                    submitted_at[index] = telemetry.now_us()
                    telemetry.emit_wall(
                        CELL_START,
                        track=f"worker:{lanes[index]}",
                        ts=submitted_at[index],
                        benchmark=specs[index].benchmark_name,
                        scheme=specs[index].scheme,
                        attempt=attempts[index],
                    )
                    cells.append((index, specs[index], attempts[index]))
                payload = (tuple(cells), self.cell_timeout, self.fault_plan)
                if capture is not None:
                    payload = payload + (capture,)
                future = pool.submit_chunk(payload)
                futures[future] = list(chunk)
                chunk_started[future] = time.perf_counter()
                _sync_in_flight()

            def _sync_in_flight() -> None:
                # Distinct cells, so a speculation twin never double-counts.
                self._in_flight = len(
                    {i for members in futures.values() for i in members}
                )

            def _broken(
                chunk: List[int], cause: BaseException
            ) -> _PoolBroken:
                interrupted = set(chunk)
                for in_flight in futures.values():
                    interrupted.update(in_flight)
                futures.clear()
                self._in_flight = 0
                return _PoolBroken(sorted(interrupted), cause)

            def _speculate(
                straggler, chunk: List[int], elapsed: float, estimate: float
            ) -> None:
                """Twin a straggling chunk onto an idle worker.

                The twin re-runs the same cells at the *same* attempt
                numbers (no retry budget consumed, no second
                ``cell_start``) — speculation is pure scheduling, so the
                fault plan's per-attempt decisions replay identically
                while host-keyed delays redraw on the new host.
                """
                cells = tuple(
                    (index, specs[index], attempts[index]) for index in chunk
                )
                payload = (cells, self.cell_timeout, self.fault_plan)
                if capture is not None:
                    payload = payload + (capture,)
                try:
                    twin = pool.submit_chunk(payload)
                except broken_types as error:
                    raise _broken(chunk, error) from error
                futures[twin] = list(chunk)
                chunk_started[twin] = time.perf_counter()
                twins[straggler] = twin
                twins[twin] = straggler
                speculative.add(twin)
                self.stats.stragglers_detected += 1
                telemetry.emit_wall(
                    STRAGGLER_DETECTED,
                    cells=[
                        [specs[i].benchmark_name, specs[i].scheme]
                        for i in chunk
                    ],
                    elapsed_s=round(elapsed, 4),
                    estimate_s=round(estimate, 4),
                )
                telemetry.metrics.counter("engine.stragglers_detected").inc()
                if self.recorder is not None:
                    self.recorder.note(
                        "straggler_detected",
                        cells=len(chunk),
                        elapsed_s=round(elapsed, 4),
                        estimate_s=round(estimate, 4),
                    )

            def _check_stragglers() -> None:
                factor = self.straggler_factor
                if factor is None or len(durations) < 3:
                    return  # no robust estimate yet
                median = statistics.median(durations)
                spread = statistics.median(
                    [abs(d - median) for d in durations]
                )
                baseline = median + 3.0 * spread
                if baseline <= 0.0:
                    return
                now = time.perf_counter()
                for straggler, chunk in list(futures.items()):
                    if len(futures) >= max(1, pool.workers):
                        return  # no idle worker to speculate into
                    if straggler in twins:
                        continue  # already twinned (or is itself a twin)
                    elapsed = now - chunk_started[straggler]
                    # Estimate-relative budget (docs/INTERNALS.md §18):
                    # a chunk of cells *predicted* to run 10× longer
                    # gets a ~10× budget instead of being flagged at
                    # the flat median — and estimates can only extend
                    # the legacy budget, never shrink it.
                    estimate = schedule_mod.straggler_budget(
                        factor, baseline, chunk, estimates
                    )
                    if elapsed > estimate:
                        _speculate(straggler, chunk, elapsed, estimate)

            def _assert_bit_identical(winner, loser, chunk: List[int]) -> None:
                """Both speculation copies finished: their per-cell results
                must be bit-identical (determinism is the contract every
                backend is tested against; a divergence here is a real
                bug, never noise to paper over)."""
                winner_map = {i: (s, v) for i, s, v in winner.result()[1]}
                loser_map = {i: (s, v) for i, s, v in loser.result()[1]}
                for index in chunk:
                    w_status, w_value = winner_map.get(index, (None, None))
                    l_status, l_value = loser_map.get(index, (None, None))
                    if w_status == "ok" and l_status == "ok" \
                            and w_value != l_value:
                        raise RuntimeError(
                            "speculative re-execution of cell "
                            f"({specs[index].benchmark_name!r}, "
                            f"{specs[index].scheme!r}) diverged from the "
                            "primary — results must be bit-identical "
                            "across hosts (determinism contract violated)"
                        )

            for chunk in plan.chunks:
                try:
                    _submit(chunk)
                except broken_types as error:
                    raise _broken(
                        chunk, error
                    ) from error  # pool died mid-submission
            # With speculation enabled the wait polls so a straggling
            # chunk is noticed while its future is still pending.
            poll = 0.05 if self.straggler_factor is not None else None
            while futures:
                finished, _ = wait(
                    list(futures), timeout=poll, return_when=FIRST_COMPLETED
                )
                self._drain_health()
                for future in finished:
                    if future not in futures:
                        continue  # loser of an already-settled race
                    chunk = futures.pop(future)
                    started = chunk_started.pop(future, None)
                    partner = twins.pop(future, None)
                    if partner is not None:
                        twins.pop(partner, None)
                    chunk_error = future.exception()
                    if isinstance(chunk_error, broken_types):
                        raise _broken(chunk, chunk_error) from chunk_error
                    if (
                        chunk_error is not None
                        and partner is not None
                        and partner in futures
                    ):
                        # One speculation copy died (e.g. HostDownError —
                        # its host's breaker opened) while the other is
                        # still live: drop this copy silently; the
                        # survivor carries the cells at the same attempt
                        # numbers.
                        _sync_in_flight()
                        continue
                    if (
                        chunk_error is None
                        and partner is not None
                        and partner in futures
                    ):
                        # First result wins the speculation race.
                        futures.pop(partner)
                        chunk_started.pop(partner, None)
                        cancelled = partner.cancel()
                        if (
                            not cancelled
                            and partner.done()
                            and partner.exception() is None
                        ):
                            _assert_bit_identical(future, partner, chunk)
                        if future in speculative:
                            self.stats.speculations_won += 1
                            telemetry.emit_wall(
                                SPECULATION_WON,
                                cells=[
                                    [
                                        specs[i].benchmark_name,
                                        specs[i].scheme,
                                    ]
                                    for i in chunk
                                ],
                                loser_cancelled=cancelled,
                            )
                            telemetry.metrics.counter(
                                "engine.speculations_won"
                            ).inc()
                            if self.recorder is not None:
                                self.recorder.note(
                                    "speculation_won",
                                    cells=len(chunk),
                                    loser_cancelled=cancelled,
                                )
                    if chunk_error is not None:
                        # The chunk itself failed (not one of its cells —
                        # e.g. an unpicklable payload, or a HostDownError
                        # for a chunk stranded on a dead host): feed the
                        # error to every member through the normal retry
                        # machinery, which resubmits to surviving workers.
                        if isinstance(chunk_error, HostDownError):
                            self.stats.cells_rerouted += len(chunk)
                            telemetry.metrics.counter(
                                "engine.cells_rerouted"
                            ).inc(len(chunk))
                        warmup = None
                        outcomes = [
                            (index, "error", chunk_error) for index in chunk
                        ]
                        cell_times = {}
                        executed_by = None
                    else:
                        reply = future.result()
                        cell_times = {}
                        executed_by = None
                        per_cell = None
                        if started is not None and chunk:
                            per_cell = (
                                time.perf_counter() - started
                            ) / len(chunk)
                            durations.extend([per_cell] * len(chunk))
                        if len(reply) > 2:
                            warmup, outcomes, chunk_info = reply
                            if chunk_info:
                                # Cost-model feed: worker-measured
                                # per-cell seconds and the executor's
                                # identity (host#incarnation over ssh,
                                # host#pid otherwise).
                                cell_times = {
                                    int(i): float(s)
                                    for i, s in (
                                        chunk_info.get("cell_times") or ()
                                    )
                                }
                                executed_by = (
                                    chunk_info.get("host_id")
                                    or chunk_info.get("origin")
                                )
                                self.cost_model.observe_host(
                                    executed_by,
                                    len(chunk),
                                    chunk_info.get("service_s"),
                                )
                            self._merge_worker_snapshot(
                                chunk_info, chunk, submitted_at
                            )
                        else:
                            warmup, outcomes = reply
                        if per_cell is not None:
                            # Parent-side chunk average as the timing
                            # fallback for replies without per-cell data.
                            for member in chunk:
                                cell_times.setdefault(member, per_cell)
                    if warmup is not None:
                        telemetry.emit_wall(WORKER_WARMUP, **warmup)
                        telemetry.metrics.counter(
                            "engine.worker_warmups"
                        ).inc()
                    retry: List[int] = []
                    for index, status, value in outcomes:
                        spec = specs[index]
                        track = f"worker:{lanes[index]}"
                        if status == "ok":
                            telemetry.emit_wall(
                                CELL_DONE,
                                track=track,
                                ts=submitted_at[index],
                                dur=telemetry.now_us() - submitted_at[index],
                                benchmark=spec.benchmark_name,
                                scheme=spec.scheme,
                            )
                            self._record_success(
                                spec,
                                index,
                                value,
                                attempts[index],
                                results,
                                elapsed_s=cell_times.get(index),
                                executed_by=executed_by,
                            )
                            continue
                        error = value
                        if isinstance(error, CellTimeout):
                            self.stats.timeouts += 1
                            telemetry.emit_wall(
                                TIMEOUT,
                                track=track,
                                benchmark=spec.benchmark_name,
                                scheme=spec.scheme,
                            )
                            telemetry.metrics.counter("engine.timeouts").inc()
                        if attempts[index] > self.max_retries:
                            if self.failure_policy == "raise":
                                raise CellExecutionError(
                                    spec, attempts[index], error
                                ) from error
                            self._record_failure(
                                spec, index, attempts[index], error
                            )
                            continue
                        self.stats.retries += 1
                        telemetry.emit_wall(
                            RETRY,
                            track=track,
                            benchmark=spec.benchmark_name,
                            scheme=spec.scheme,
                            attempt=attempts[index],
                        )
                        telemetry.metrics.counter("engine.retries").inc()
                        self._sleep_backoff(attempts[index], spec)
                        retry.append(index)
                    for index in retry:
                        try:
                            _submit([index])
                        except broken_types as pool_error:
                            raise _broken(
                                [index], pool_error
                            ) from pool_error
                    _sync_in_flight()
                _check_stragglers()
            self._drain_health()
            actual_s = time.perf_counter() - round_t0
            self.stats.actual_makespan_s += actual_s
            telemetry.emit_wall(
                SCHEDULE_PLANNED,
                backend=pool.name,
                mode=plan.mode,
                chunks=len(plan.chunks),
                cells=len(indices),
                estimated_cells=plan.estimated_cells,
                weighted=plan.slot_weights is not None,
                predicted_makespan_s=round(plan.predicted_makespan_s, 4),
                actual_makespan_s=round(actual_s, 4),
            )
            telemetry.metrics.counter("engine.rounds_planned").inc()
        except BaseException:
            # Fatal exits (CellExecutionError, _PoolBroken) must not sit
            # waiting for in-flight cells of a poisoned batch, and the
            # backend itself is suspect: drop it fail-fast.  The clean
            # exit keeps the warm pool alive for the next batch.
            self._in_flight = 0
            self.pool.close(fail_fast=True)
            raise
