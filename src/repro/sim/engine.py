"""Parallel experiment engine: fan experiment cells out across processes.

Every exhibit, bench, and CLI command ultimately needs the same thing: a
batch of ``(benchmark, scheme, config)`` cells turned into
:class:`~repro.sim.driver.RunResult` bundles.  :class:`Engine` is the one
entry point for that.  It layers three mechanisms under a single
``run(cells)`` call:

1. an **in-process memory cache** (shared, module-level) so different
   exhibits in one process reuse the same runs — the role the old private
   ``_CACHE`` dict in ``repro.sim.experiment`` used to play;
2. a **persistent on-disk store** (:class:`repro.sim.store.ResultStore`)
   so *fresh processes* — another CLI invocation, another pytest worker —
   reuse runs too;
3. a **process pool** (``--jobs N``) with per-cell timeout and bounded
   retry for the cells that actually have to simulate.

Results are deterministic: a cell's outcome depends only on its
:class:`~repro.sim.driver.RunSpec`, never on scheduling, so the parallel
path is bit-identical to the serial one.

Cells carrying live objects (an explicit ``policy`` instance, a
``preload_database``, a prebuilt benchmark) are executed serially in the
parent process — they are not guaranteed picklable and are never cached.
"""

from __future__ import annotations

import signal
import threading
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import (
    CELL_DONE,
    CELL_START,
    MEMORY_HIT,
    NULL_TELEMETRY,
    RETRY,
    STORE_HIT,
    TIMEOUT,
)
from repro.sim.driver import RunResult, RunSpec, execute
from repro.sim.store import ResultStore

#: Where a cell's result came from (progress callbacks receive this).
SOURCE_MEMORY = "memory"
SOURCE_STORE = "store"
SOURCE_SIMULATED = "simulated"

#: Shared across all Engine instances by default, so e.g. the CLI's
#: exhibit loop and the bench fixtures see each other's runs.
_MEMORY_CACHE: Dict[Tuple[str, str, str], RunResult] = {}


def clear_memory_cache() -> int:
    """Drop every in-process cached result; returns the count dropped."""
    count = len(_MEMORY_CACHE)
    _MEMORY_CACHE.clear()
    return count


class CellTimeout(Exception):
    """A cell exceeded the engine's per-cell wall-clock budget."""


class CellExecutionError(RuntimeError):
    """A cell kept failing after the engine's retry budget was spent."""

    def __init__(self, spec: RunSpec, attempts: int, cause: BaseException):
        super().__init__(
            f"cell ({spec.benchmark_name!r}, {spec.scheme!r}) failed after "
            f"{attempts} attempt(s): {cause!r}"
        )
        self.spec = spec
        self.attempts = attempts
        self.cause = cause


@dataclass
class EngineStats:
    """Counters for one Engine instance (reset with ``reset()``)."""

    simulations: int = 0
    memory_hits: int = 0
    store_hits: int = 0
    deduplicated: int = 0
    retries: int = 0
    timeouts: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


@dataclass
class CellProgress:
    """One progress-callback notification."""

    done: int
    total: int
    spec: RunSpec
    source: str


ProgressCallback = Callable[[CellProgress], None]


def _run_with_alarm(
    spec: RunSpec, timeout: Optional[float], telemetry=None
) -> RunResult:
    """Execute a cell, bounded by SIGALRM when a timeout is requested.

    SIGALRM interrupts pure-Python simulation loops reliably on POSIX; it
    is only armed from a main thread (worker processes always qualify).
    """
    if (
        timeout is None
        or timeout <= 0
        or threading.current_thread() is not threading.main_thread()
    ):
        return execute(spec, telemetry=telemetry)

    def _on_alarm(signum, frame):
        raise CellTimeout(
            f"cell ({spec.benchmark_name!r}, {spec.scheme!r}) exceeded "
            f"{timeout:.1f}s"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return execute(spec, telemetry=telemetry)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _pool_worker(payload: Tuple[RunSpec, Optional[float]]) -> RunResult:
    """Top-level worker entry (must be importable for pickling)."""
    spec, timeout = payload
    return _run_with_alarm(spec, timeout)


class Engine:
    """Executes batches of :class:`RunSpec` cells with caching + fan-out.

    Parameters
    ----------
    jobs:
        Worker processes for cells that must simulate.  ``1`` (default)
        runs everything in the calling process.
    store:
        A :class:`ResultStore` for cross-process persistence, or ``None``
        to keep results in memory only.
    use_cache:
        When False, both cache layers are bypassed *in both directions*:
        nothing is read, nothing is written, every cell simulates.
    cell_timeout:
        Per-cell wall-clock budget in seconds (None = unbounded).  A
        timed-out cell is retried like any other failure.
    max_retries:
        Extra attempts per cell after the first failure.
    progress:
        Callback receiving a :class:`CellProgress` per finished cell.
    runner:
        Test/extension hook replacing :func:`repro.sim.driver.execute`;
        forces serial in-process execution.
    telemetry:
        Optional :class:`repro.obs.Telemetry` session.  The engine emits
        wall-clock scheduling events into it (``cell_start``,
        ``cell_done``, ``store_hit``, ``memory_hit``, ``retry``,
        ``timeout``); cells executed *serially* additionally stream
        their simulation-side tuning events into the same session.
        Pool workers run in other processes, so their simulation events
        are not captured — trace a single cell with ``jobs=1`` for the
        full timeline.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: Optional[ResultStore] = None,
        use_cache: bool = True,
        cell_timeout: Optional[float] = None,
        max_retries: int = 1,
        progress: Optional[ProgressCallback] = None,
        runner: Optional[Callable[[RunSpec], RunResult]] = None,
        memory_cache: Optional[Dict] = None,
        telemetry=None,
    ):
        self.jobs = max(1, int(jobs))
        self.store = store
        self.use_cache = use_cache
        self.cell_timeout = cell_timeout
        self.max_retries = max(0, int(max_retries))
        self.progress = progress
        self.runner = runner
        self._memory = (
            _MEMORY_CACHE if memory_cache is None else memory_cache
        )
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.stats = EngineStats()

    # -- public API --------------------------------------------------------

    def run(self, cells: Sequence[RunSpec]) -> List[RunResult]:
        """Resolve every cell (cache, store, or simulation), in order."""
        specs = list(cells)
        total = len(specs)
        results: List[Optional[RunResult]] = [None] * total
        self._done = 0
        self._total = total

        pending: List[int] = []
        leaders: Dict[Tuple[str, str, str], int] = {}
        followers: Dict[int, List[int]] = {}
        for index, spec in enumerate(specs):
            hit = self._lookup(spec)
            if hit is not None:
                result, source = hit
                results[index] = result
                self._notify(spec, source)
                continue
            if self.use_cache and spec.cacheable:
                key = spec.cache_key()
                leader = leaders.get(key)
                if leader is not None:
                    followers.setdefault(leader, []).append(index)
                    self.stats.deduplicated += 1
                    continue
                leaders[key] = index
            pending.append(index)

        if pending:
            self._execute_pending(specs, pending, results)
        for leader, dupes in followers.items():
            for index in dupes:
                results[index] = results[leader]
                self._notify(specs[index], SOURCE_MEMORY)
        return results  # type: ignore[return-value]

    def run_one(self, spec: RunSpec) -> RunResult:
        """Single-cell convenience wrapper around :meth:`run`."""
        return self.run([spec])[0]

    # -- cache layers ------------------------------------------------------

    def _lookup(self, spec: RunSpec) -> Optional[Tuple[RunResult, str]]:
        if not (self.use_cache and spec.cacheable):
            return None
        key = spec.cache_key()
        if key in self._memory:
            self.stats.memory_hits += 1
            self.telemetry.emit_wall(
                MEMORY_HIT,
                benchmark=spec.benchmark_name,
                scheme=spec.scheme,
            )
            self.telemetry.metrics.counter("engine.memory_hits").inc()
            return self._memory[key], SOURCE_MEMORY
        if self.store is not None:
            result = self.store.get(*key)
            if result is not None:
                self._memory[key] = result
                self.stats.store_hits += 1
                self.telemetry.emit_wall(
                    STORE_HIT,
                    benchmark=spec.benchmark_name,
                    scheme=spec.scheme,
                )
                self.telemetry.metrics.counter("engine.store_hits").inc()
                return result, SOURCE_STORE
        return None

    def _record(self, spec: RunSpec, result: RunResult) -> None:
        if not (self.use_cache and spec.cacheable):
            return
        key = spec.cache_key()
        self._memory[key] = result
        if self.store is not None:
            self.store.put(*key, result)

    def _notify(self, spec: RunSpec, source: str) -> None:
        self._done += 1
        if self.progress is not None:
            self.progress(
                CellProgress(self._done, self._total, spec, source)
            )

    # -- execution ---------------------------------------------------------

    def _execute_pending(
        self,
        specs: Sequence[RunSpec],
        pending: List[int],
        results: List[Optional[RunResult]],
    ) -> None:
        pool_eligible = [
            i for i in pending if self._pool_eligible(specs[i])
        ]
        serial = [i for i in pending if i not in set(pool_eligible)]
        if self.jobs > 1 and len(pool_eligible) > 1:
            self._run_pool(specs, pool_eligible, results)
        else:
            serial = sorted(set(serial) | set(pool_eligible))
        for index in serial:
            results[index] = self._run_serial(specs[index])

    def _pool_eligible(self, spec: RunSpec) -> bool:
        return (
            self.runner is None
            and isinstance(spec.benchmark, str)
            and spec.policy is None
            and spec.preload_database is None
        )

    def _run_serial(self, spec: RunSpec) -> RunResult:
        telemetry = self.telemetry
        attempts = 0
        while True:
            attempts += 1
            started = telemetry.now_us()
            telemetry.emit_wall(
                CELL_START,
                track="worker:0",
                ts=started,
                benchmark=spec.benchmark_name,
                scheme=spec.scheme,
                attempt=attempts,
            )
            try:
                if self.runner is not None:
                    result = self.runner(spec)
                else:
                    result = _run_with_alarm(
                        spec,
                        self.cell_timeout,
                        telemetry if telemetry.enabled else None,
                    )
                break
            except Exception as error:  # noqa: BLE001 — retry boundary
                if isinstance(error, CellTimeout):
                    self.stats.timeouts += 1
                    telemetry.emit_wall(
                        TIMEOUT,
                        track="worker:0",
                        benchmark=spec.benchmark_name,
                        scheme=spec.scheme,
                    )
                    telemetry.metrics.counter("engine.timeouts").inc()
                if attempts > self.max_retries:
                    raise CellExecutionError(
                        spec, attempts, error
                    ) from error
                self.stats.retries += 1
                telemetry.emit_wall(
                    RETRY,
                    track="worker:0",
                    benchmark=spec.benchmark_name,
                    scheme=spec.scheme,
                    attempt=attempts,
                )
                telemetry.metrics.counter("engine.retries").inc()
        self.stats.simulations += 1
        telemetry.emit_wall(
            CELL_DONE,
            track="worker:0",
            ts=started,
            dur=telemetry.now_us() - started,
            benchmark=spec.benchmark_name,
            scheme=spec.scheme,
        )
        telemetry.metrics.counter("engine.simulations").inc()
        self._record(spec, result)
        self._notify(spec, SOURCE_SIMULATED)
        return result

    def _run_pool(
        self,
        specs: Sequence[RunSpec],
        indices: List[int],
        results: List[Optional[RunResult]],
    ) -> None:
        telemetry = self.telemetry
        attempts: Dict[int, int] = {i: 0 for i in indices}
        # Display lanes: one telemetry track per pool slot (round-robin
        # by submission order — a visualization aid, not a scheduler map).
        lanes: Dict[int, int] = {}
        submitted_at: Dict[int, float] = {}
        submissions = 0
        with ProcessPoolExecutor(max_workers=self.jobs) as pool:
            futures = {}

            def _submit(index: int) -> None:
                nonlocal submissions
                attempts[index] += 1
                lanes.setdefault(index, submissions % self.jobs)
                submissions += 1
                submitted_at[index] = telemetry.now_us()
                telemetry.emit_wall(
                    CELL_START,
                    track=f"worker:{lanes[index]}",
                    ts=submitted_at[index],
                    benchmark=specs[index].benchmark_name,
                    scheme=specs[index].scheme,
                    attempt=attempts[index],
                )
                futures[
                    pool.submit(
                        _pool_worker, (specs[index], self.cell_timeout)
                    )
                ] = index

            for index in indices:
                _submit(index)
            while futures:
                finished, _ = wait(
                    list(futures), return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index = futures.pop(future)
                    spec = specs[index]
                    track = f"worker:{lanes[index]}"
                    error = future.exception()
                    if error is None:
                        result = future.result()
                        results[index] = result
                        self.stats.simulations += 1
                        telemetry.emit_wall(
                            CELL_DONE,
                            track=track,
                            ts=submitted_at[index],
                            dur=telemetry.now_us() - submitted_at[index],
                            benchmark=spec.benchmark_name,
                            scheme=spec.scheme,
                        )
                        telemetry.metrics.counter(
                            "engine.simulations"
                        ).inc()
                        self._record(spec, result)
                        self._notify(spec, SOURCE_SIMULATED)
                        continue
                    if isinstance(error, CellTimeout):
                        self.stats.timeouts += 1
                        telemetry.emit_wall(
                            TIMEOUT,
                            track=track,
                            benchmark=spec.benchmark_name,
                            scheme=spec.scheme,
                        )
                        telemetry.metrics.counter("engine.timeouts").inc()
                    if attempts[index] > self.max_retries:
                        for other in futures:
                            other.cancel()
                        raise CellExecutionError(
                            spec, attempts[index], error
                        ) from error
                    self.stats.retries += 1
                    telemetry.emit_wall(
                        RETRY,
                        track=track,
                        benchmark=spec.benchmark_name,
                        scheme=spec.scheme,
                        attempt=attempts[index],
                    )
                    telemetry.metrics.counter("engine.retries").inc()
                    _submit(index)
