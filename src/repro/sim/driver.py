"""Single-run driver: one benchmark, one adaptation scheme.

Wires together workload, machine, VM, and policy, runs to the instruction
budget, and packages everything the evaluation needs into a
:class:`RunResult`.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.core.policy import HotspotACEPolicy, HotspotPolicyStats
from repro.core.prediction import install_program_for_prediction
from repro.phases.policy import BBVACEPolicy, BBVPolicyStats
from repro.sim.config import SIM_KERNELS, ExperimentConfig, build_machine
from repro.vm.fastvm import FastVirtualMachine
from repro.vm.vm import AdaptationHooks, VMConfig, VirtualMachine
from repro.workloads.specjvm import BuiltBenchmark, build_benchmark

SCHEMES = ("baseline", "bbv", "hotspot")


@dataclass
class RunSpec:
    """One experiment cell: everything needed to execute a single run.

    This replaces the ``run_benchmark(benchmark, scheme, config, policy,
    max_instructions, preload_database)`` parameter sprawl — a cell is one
    value that the driver, the engine, and the sweeps all accept.
    ``policy`` and ``preload_database`` make a cell *non-cacheable* (their
    state is not captured by the configuration fingerprint).
    """

    benchmark: Union[str, BuiltBenchmark]
    scheme: str = "hotspot"
    config: ExperimentConfig = field(default_factory=ExperimentConfig)
    policy: Optional[AdaptationHooks] = None
    max_instructions: Optional[int] = None
    preload_database: Optional[object] = None

    @property
    def benchmark_name(self) -> str:
        if isinstance(self.benchmark, str):
            return self.benchmark
        return self.benchmark.name

    @property
    def cacheable(self) -> bool:
        """True when the cell is fully described by (name, scheme, config).

        A prebuilt ``BuiltBenchmark`` object, an explicit ``policy``, or a
        ``preload_database`` all carry state outside the fingerprint, so
        such cells always execute.
        """
        return (
            isinstance(self.benchmark, str)
            and self.policy is None
            and self.preload_database is None
        )

    def effective_fingerprint(self) -> str:
        """Configuration fingerprint with ``max_instructions`` folded in."""
        if self.max_instructions is None:
            return self.config.fingerprint()
        config = copy.deepcopy(self.config)
        config.max_instructions = self.max_instructions
        return config.fingerprint()

    def cache_key(self) -> Tuple[str, str, str]:
        """Identity of this cell in both cache layers."""
        return (
            self.benchmark_name,
            self.scheme,
            self.effective_fingerprint(),
        )


@dataclass
class HotspotSummary:
    """Per-hotspot data extracted from the DO database (Table 4)."""

    name: str
    invocations: int
    mean_size: float
    detected_at: Optional[int]
    pre_hot_instructions: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HotspotSummary":
        return cls(**payload)


@dataclass
class RunResult:
    """Everything measured in one run."""

    benchmark: str
    scheme: str
    instructions: int
    cycles: float
    ipc: float
    l1d_energy_nj: float
    l2_energy_nj: float
    l1d_breakdown: Dict[str, float]
    l2_breakdown: Dict[str, float]
    memory_nj: float
    l1d_miss_rate: float
    l2_miss_rate: float
    branch_mispredict_rate: float
    n_hotspots: int
    instructions_in_hotspots: int
    hotspot_summaries: Dict[str, HotspotSummary] = field(default_factory=dict)
    hotspot_stats: Optional[HotspotPolicyStats] = None
    bbv_stats: Optional[BBVPolicyStats] = None
    applied_reconfigurations: Dict[str, int] = field(default_factory=dict)
    denied_reconfigurations: Dict[str, int] = field(default_factory=dict)
    gc_invocations: int = 0

    @property
    def hotspot_coverage(self) -> float:
        """Fraction of dynamic instructions inside detected hotspots."""
        if self.instructions == 0:
            return 0.0
        return self.instructions_in_hotspots / self.instructions

    @property
    def identification_latency(self) -> float:
        """Fraction of execution spent in not-yet-hot invocations of
        methods that eventually became hotspots (Table 4's last row)."""
        if self.instructions == 0:
            return 0.0
        pre = sum(
            h.pre_hot_instructions for h in self.hotspot_summaries.values()
        )
        return min(1.0, pre / self.instructions)

    @property
    def avg_hotspot_size(self) -> float:
        sizes = [h.mean_size for h in self.hotspot_summaries.values()]
        return sum(sizes) / len(sizes) if sizes else 0.0

    @property
    def avg_invocations_per_hotspot(self) -> float:
        invs = [h.invocations for h in self.hotspot_summaries.values()]
        return sum(invs) / len(invs) if invs else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (store schema v1); nested dataclasses recurse."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunResult":
        """Inverse of :meth:`to_dict`; raises on unknown/missing fields."""
        payload = dict(payload)
        payload["hotspot_summaries"] = {
            name: HotspotSummary.from_dict(summary)
            for name, summary in payload["hotspot_summaries"].items()
        }
        if payload.get("hotspot_stats") is not None:
            payload["hotspot_stats"] = HotspotPolicyStats.from_dict(
                payload["hotspot_stats"]
            )
        if payload.get("bbv_stats") is not None:
            payload["bbv_stats"] = BBVPolicyStats.from_dict(
                payload["bbv_stats"]
            )
        return cls(**payload)


def make_policy(scheme: str, config: ExperimentConfig) -> AdaptationHooks:
    """Instantiate the adaptation policy for a scheme name."""
    if scheme == "baseline":
        return AdaptationHooks()
    if scheme == "bbv":
        return BBVACEPolicy(bbv=config.bbv, tuning=config.tuning)
    if scheme == "hotspot":
        return HotspotACEPolicy(tuning=config.tuning)
    raise ValueError(f"unknown scheme {scheme!r}; known: {SCHEMES}")


def _load_reference_kernel():
    return VirtualMachine


def _load_fast_kernel():
    return FastVirtualMachine


def _load_turbo_kernel():
    try:
        from repro.vm.turbovm import TurboVirtualMachine
    except ImportError as exc:  # numpy missing
        raise RuntimeError(
            "sim_kernel='turbo' requires numpy (the turbo kernel "
            "vectorizes cache simulation and RNG draws); install numpy "
            "or use sim_kernel='fast'"
        ) from exc
    return TurboVirtualMachine


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry for one ``sim_kernel`` value.

    ``bit_identical`` records the kernel's correctness contract:
    bit-identical kernels must reproduce the reference interpreter's
    results byte for byte (and share golden traces); non-bit-identical
    kernels are gated by the statistical equivalence harness instead and
    are excluded from golden traces and default paths.
    """

    name: str
    loader: object  # () -> vm class; lazy so optional deps import on use
    bit_identical: bool
    description: str = ""

    def load(self):
        return self.loader()


#: Authoritative kernel registry.  Tests parametrize from this mapping so
#: new kernels are covered (or explicitly excluded) automatically; keys
#: must match :data:`repro.sim.config.SIM_KERNELS`.
KERNEL_REGISTRY: Dict[str, KernelSpec] = {
    "reference": KernelSpec(
        name="reference",
        loader=_load_reference_kernel,
        bit_identical=True,
        description="readable interpreter loop (the semantics oracle)",
    ),
    "fast": KernelSpec(
        name="fast",
        loader=_load_fast_kernel,
        bit_identical=True,
        description="pre-decoded fused kernel, bit-identical to reference",
    ),
    "turbo": KernelSpec(
        name="turbo",
        loader=_load_turbo_kernel,
        bit_identical=False,
        description=(
            "opt-in vectorized kernel; statistically equivalent under "
            "tests/stat_equivalence.py, never selected by default"
        ),
    ),
}


def make_vm_class(kernel: str):
    """Resolve a ``sim_kernel`` name to the interpreter class."""
    spec = KERNEL_REGISTRY.get(kernel)
    if spec is None:
        raise ValueError(
            f"unknown sim_kernel {kernel!r}; known: {SIM_KERNELS}"
        )
    return spec.load()


def run_benchmark(
    benchmark: Union[str, BuiltBenchmark, RunSpec],
    scheme: str = "hotspot",
    config: Optional[ExperimentConfig] = None,
    policy: Optional[AdaptationHooks] = None,
    max_instructions: Optional[int] = None,
    preload_database=None,
) -> RunResult:
    """Run one benchmark under one scheme; returns the result bundle.

    .. deprecated::
        The keyword form is a compatibility shim; describe cells with a
        :class:`RunSpec` and call :func:`execute` (or route batches
        through :class:`repro.sim.engine.Engine`) instead.

    ``policy`` overrides the scheme's default policy object (used by the
    ablation benches to pass customised policies while keeping the same
    plumbing).
    """
    if isinstance(benchmark, RunSpec):
        return execute(benchmark)
    return execute(
        RunSpec(
            benchmark=benchmark,
            scheme=scheme,
            config=config or ExperimentConfig(),
            policy=policy,
            max_instructions=max_instructions,
            preload_database=preload_database,
        )
    )


def execute(spec: RunSpec, telemetry=None, fault_plan=None) -> RunResult:
    """Execute one :class:`RunSpec` cell (always simulates; no caching).

    ``telemetry`` is an optional :class:`repro.obs.Telemetry` session;
    when given, the VM, the machine model, and the adaptation policy all
    emit their decision timeline into it.  The result bundle itself is
    unchanged — telemetry stays on the side channel, never in
    :class:`RunResult` (cached results must not depend on whether a run
    was traced).

    ``fault_plan`` is an optional :class:`repro.faults.FaultPlan`; when
    given, the machine model consults it for injected reconfiguration
    denials and both policies for profiling noise/drift.  The engine
    refuses to cache results produced under a simulation-perturbing plan
    (see ``Engine._cell_cacheable``).
    """
    config = spec.config or ExperimentConfig()
    scheme = spec.scheme
    policy = spec.policy
    benchmark = spec.benchmark
    max_instructions = spec.max_instructions
    preload_database = spec.preload_database
    built = (
        build_benchmark(benchmark) if isinstance(benchmark, str) else benchmark
    )
    machine = build_machine(config.machine)
    if policy is None:
        policy = make_policy(scheme, config)
    if fault_plan is not None:
        machine.fault_plan = fault_plan
        if hasattr(policy, "fault_plan"):
            policy.fault_plan = fault_plan
    if isinstance(policy, HotspotACEPolicy) and policy.predictor is not None:
        install_program_for_prediction(machine, built.program)
    vm_config = VMConfig(
        hot_threshold=config.hot_threshold,
        seed=config.seed,
        gc_method="gc_sweep" if built.spec.gc else "",
        gc_period_instructions=built.spec.gc_period if built.spec.gc else 0,
        decider_stream=getattr(config, "decider_stream", "shared"),
    )
    vm_class = make_vm_class(getattr(config, "sim_kernel", "fast"))
    vm = vm_class(
        built.program,
        machine,
        policy=policy,
        config=vm_config,
        thread_entries=built.thread_entries,
        preload_database=preload_database,
        telemetry=telemetry,
    )
    vm.run(max_instructions or config.max_instructions)

    if telemetry is not None:
        # Mirror the process-wide blockjit code-cache counters (compiles,
        # hits, evictions, size) into the session's metrics registry so a
        # traced run shows whether it ran warm or had to re-fuse.
        from repro.vm.blockjit import publish_metrics

        publish_metrics(telemetry.metrics)

    hotspot_stats = (
        policy.finalize() if isinstance(policy, HotspotACEPolicy) else None
    )
    bbv_stats = (
        policy.finalize() if isinstance(policy, BBVACEPolicy) else None
    )
    summaries = {
        name: HotspotSummary(
            name=name,
            invocations=info.profile.invocations,
            mean_size=info.mean_size,
            detected_at=info.profile.detected_at,
            pre_hot_instructions=info.profile.pre_hot_instructions,
        )
        for name, info in vm.database.hotspots.items()
    }
    l1 = machine.hierarchy.l1d.stats
    l2 = machine.hierarchy.l2.stats
    return RunResult(
        benchmark=built.name,
        scheme=policy.name,
        instructions=machine.instructions,
        cycles=machine.cycles,
        ipc=machine.ipc,
        l1d_energy_nj=machine.energy.l1d.total_nj,
        l2_energy_nj=machine.energy.l2.total_nj,
        l1d_breakdown=machine.energy.l1d.breakdown(),
        l2_breakdown=machine.energy.l2.breakdown(),
        memory_nj=machine.energy.memory_nj,
        l1d_miss_rate=l1.miss_rate,
        l2_miss_rate=l2.miss_rate,
        branch_mispredict_rate=machine.predictor.misprediction_rate,
        n_hotspots=len(vm.database.hotspots),
        instructions_in_hotspots=vm.stats.instructions_in_hotspots,
        hotspot_summaries=summaries,
        hotspot_stats=hotspot_stats,
        bbv_stats=bbv_stats,
        applied_reconfigurations=dict(machine.applied_reconfigurations),
        denied_reconfigurations=dict(machine.denied_reconfigurations),
        gc_invocations=vm.stats.gc_invocations,
    )
