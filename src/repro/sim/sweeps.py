"""Parameter sweep utilities.

The ablation benches sweep framework knobs (performance threshold,
hot_threshold, scales); this module gives that a first-class API so users
can run their own sensitivity studies::

    from repro.sim.sweeps import sweep_parameter

    points = sweep_parameter(
        "tuning.performance_threshold", [0.01, 0.02, 0.05],
        benchmark="db", scheme="hotspot",
    )
    for p in points:
        print(p.value, p.l1d_energy_reduction, p.slowdown)
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunResult, RunSpec
from repro.sim.engine import Engine


@dataclass
class SweepPoint:
    """One sweep sample: the knob value and the runs it produced."""

    parameter: str
    value: object
    result: RunResult
    baseline: RunResult

    def _epi(self, run: RunResult, attr: str) -> float:
        return getattr(run, attr) / run.instructions

    @property
    def l1d_energy_reduction(self) -> float:
        base = self._epi(self.baseline, "l1d_energy_nj")
        return 1 - self._epi(self.result, "l1d_energy_nj") / base

    @property
    def l2_energy_reduction(self) -> float:
        base = self._epi(self.baseline, "l2_energy_nj")
        return 1 - self._epi(self.result, "l2_energy_nj") / base

    @property
    def slowdown(self) -> float:
        base_cpi = self.baseline.cycles / self.baseline.instructions
        cpi = self.result.cycles / self.result.instructions
        return cpi / base_cpi - 1.0


def set_config_path(config: ExperimentConfig, path: str, value) -> None:
    """Set a dotted attribute path on an ExperimentConfig.

    Frozen dataclasses along the path (TuningConfig, BBVConfig,
    ScaledParameters) are rebuilt with the field replaced.
    """
    parts = path.split(".")
    target = config
    for part in parts[:-1]:
        target = getattr(target, part)
    leaf = parts[-1]
    try:
        setattr(target, leaf, value)
        return
    except AttributeError:  # frozen dataclass: rebuild and reattach
        pass
    import dataclasses

    rebuilt = dataclasses.replace(target, **{leaf: value})
    owner = config
    for part in parts[:-2]:
        owner = getattr(owner, part)
    setattr(owner, parts[-2], rebuilt)


def sweep_parameter(
    parameter: str,
    values: Sequence[object],
    benchmark: str = "db",
    scheme: str = "hotspot",
    base_config: Optional[ExperimentConfig] = None,
    max_instructions: Optional[int] = None,
    jobs: int = 1,
    use_cache: bool = True,
    engine: Optional[Engine] = None,
) -> List[SweepPoint]:
    """Run ``scheme`` (plus a baseline) at each value of ``parameter``.

    ``parameter`` is a dotted path into :class:`ExperimentConfig`, e.g.
    ``"tuning.performance_threshold"``, ``"hot_threshold"``, or
    ``"bbv.similarity_threshold"``.

    The whole sweep is one engine batch: pass ``jobs`` to fan the points
    out across worker processes, or an explicit ``engine`` to control the
    cache/store layers (the default engine reuses the shared memory cache
    and persistent store, so repeated sweeps are free).
    """
    if not values:
        raise ValueError("need at least one sweep value")
    if engine is None:
        from repro.sim.experiment import make_engine

        engine = make_engine(jobs=jobs, use_cache=use_cache)
    cells: List[RunSpec] = []
    for value in values:
        config = copy.deepcopy(base_config or ExperimentConfig())
        if max_instructions is not None:
            config.max_instructions = max_instructions
        set_config_path(config, parameter, value)
        cells.append(RunSpec(benchmark, scheme, config))
        cells.append(RunSpec(benchmark, "baseline", config))
    runs = engine.run(cells).values()
    return [
        SweepPoint(parameter, value, runs[2 * i], runs[2 * i + 1])
        for i, value in enumerate(values)
    ]
