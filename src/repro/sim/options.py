"""One dataclass for every execution knob (docs/API.md "Execution
backends" has the mapping table).

The engine's scattered execution parameters — ``--jobs``,
``--backend``, ``--store-dir``, ``--no-store``, ``chunk_size``,
``max_pool_rebuilds`` — are consolidated here: the CLI registers and
parses them once (:meth:`ExecutionOptions.add_arguments` /
:meth:`ExecutionOptions.from_args`), and :class:`repro.sim.engine
.Engine` consumes the whole object via ``Engine(options=...)``.

Backend resolution: an explicit ``backend`` spec wins; otherwise
``jobs > 1`` means ``local:<jobs>`` and anything else means ``serial``
— so the historical ``--jobs N`` contract is unchanged.  The backend
is an execution *location*, never part of a result's identity:
``ExperimentConfig.fingerprint()`` does not see any of these knobs, so
a result computed over ssh, in a local pool, or serially lands under
the same store key (asserted by the conformance suite).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.pools import Pool, make_pool
from repro.sim.store import ResultStore


@dataclass
class ExecutionOptions:
    """Where and how cells execute; never *what* they compute."""

    #: Backend spec (``serial``, ``local[:N]``, ``ssh:HOSTFILE``, …);
    #: ``None`` derives one from ``jobs``.
    backend: Optional[str] = None
    #: Worker processes when no explicit backend spec is given.
    jobs: int = 1
    #: Persistent store directory (``None`` = ``results/store`` or
    #: ``$REPRO_STORE_DIR``).
    store_dir: Optional[str] = None
    #: Disable the persistent store entirely (memory cache only).
    no_store: bool = False
    #: Cells per pool submission (``None`` = auto-size).
    chunk_size: Optional[int] = None
    #: Pool rebuilds per batch before degrading to serial.
    max_pool_rebuilds: int = 3
    #: Straggler mitigation: speculatively re-submit a chunk running
    #: longer than this multiple of the robust runtime estimate
    #: (``None`` = disabled; docs/INTERNALS.md §16).
    straggler_factor: Optional[float] = None
    #: Chunk-planning mode (docs/INTERNALS.md §18): ``"lpt"`` (default)
    #: packs chunks by estimated cost, longest first, once the cost
    #: model has history — with none it degrades to exactly the
    #: ``"fifo"`` behaviour (submission order, count-based chunks).
    #: Never affects results, only wall-clock.
    schedule: str = "lpt"
    #: Directory for the cost model's persistent snapshot
    #: (``cost_model.json``); ``None`` keeps estimates in memory (the
    #: result store's entry metadata still warm-boots them).
    cost_model_dir: Optional[str] = None

    def resolved_backend(self) -> str:
        if self.backend is not None:
            return self.backend
        return f"local:{self.jobs}" if self.jobs > 1 else "serial"

    def make_pool(self) -> Pool:
        return make_pool(self.resolved_backend())

    def make_store(self) -> Optional[ResultStore]:
        """The persistent layer these options ask for (None = disabled)."""
        if self.no_store:
            return None
        if self.store_dir is not None:
            return ResultStore(self.store_dir)
        return ResultStore()

    # -- argparse integration ----------------------------------------------

    @classmethod
    def add_arguments(cls, parser) -> None:
        """Register every execution flag on an argparse parser."""
        parser.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for simulations (default: 1, serial; "
            "results are identical for any value)",
        )
        parser.add_argument(
            "--backend",
            default=None,
            metavar="SPEC",
            help="execution backend: 'serial', 'local[:N]', "
            "'ssh:HOSTFILE' (one host[:slots] per line), or "
            "'ssh-loopback[:N]'; overrides --jobs, results are "
            "bit-identical on every backend",
        )
        parser.add_argument(
            "--store-dir",
            default=None,
            metavar="PATH",
            help="persistent result-store directory (default: "
            "results/store, or $REPRO_STORE_DIR)",
        )
        parser.add_argument(
            "--no-store",
            action="store_true",
            help="disable the persistent result store (in-memory cache "
            "only)",
        )
        parser.add_argument(
            "--chunk-size",
            type=int,
            default=None,
            metavar="N",
            help="cells per pool submission (default: auto-sized)",
        )
        parser.add_argument(
            "--max-pool-rebuilds",
            type=int,
            default=3,
            metavar="N",
            help="worker-crash pool rebuilds per batch before degrading "
            "to serial execution (default: 3)",
        )
        parser.add_argument(
            "--straggler-factor",
            type=float,
            default=None,
            metavar="X",
            help="speculatively re-submit a chunk running longer than X "
            "times the robust per-chunk runtime estimate; first result "
            "wins, results stay bit-identical (default: disabled)",
        )
        parser.add_argument(
            "--schedule",
            choices=("lpt", "fifo"),
            default="lpt",
            help="chunk planning: 'lpt' packs chunks by estimated cost "
            "(longest first, host-speed weighted) once runtime history "
            "exists; 'fifo' keeps submission-order count-based chunks. "
            "Results are bit-identical either way (default: lpt)",
        )
        parser.add_argument(
            "--cost-model-dir",
            default=None,
            metavar="PATH",
            help="persist the scheduler's runtime cost model to "
            "PATH/cost_model.json across processes (default: in-memory, "
            "warm-booted from result-store metadata)",
        )

    @classmethod
    def from_args(cls, args) -> "ExecutionOptions":
        return cls(
            backend=getattr(args, "backend", None),
            jobs=getattr(args, "jobs", 1) or 1,
            store_dir=getattr(args, "store_dir", None),
            no_store=bool(getattr(args, "no_store", False)),
            chunk_size=getattr(args, "chunk_size", None),
            max_pool_rebuilds=getattr(args, "max_pool_rebuilds", 3),
            straggler_factor=getattr(args, "straggler_factor", None),
            schedule=getattr(args, "schedule", "lpt") or "lpt",
            cost_model_dir=getattr(args, "cost_model_dir", None),
        )
