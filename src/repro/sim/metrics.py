"""Statistical helpers used across the evaluation.

The paper reports coefficient-of-variation (CoV = population standard
deviation / mean, as a percentage) for per-phase and inter-phase IPC
(Table 5); these helpers centralise that arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def population_std(values: Sequence[float]) -> float:
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return (sum((v - m) ** 2 for v in values) / len(values)) ** 0.5


def coefficient_of_variation(values: Sequence[float]) -> Optional[float]:
    """Population CoV; None when undefined (fewer than 2 values or
    non-positive mean)."""
    if len(values) < 2:
        return None
    m = mean(values)
    if m <= 0:
        return None
    return population_std(values) / m


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        if v <= 0:
            raise ValueError(f"geometric mean needs positive values: {v}")
        product *= v
    return product ** (1.0 / len(values))


def percent(x: float, digits: int = 1) -> str:
    """Format a fraction as the paper's tables do (e.g. '47.3%')."""
    return f"{x * 100:.{digits}f}%"


def safe_ratio(num: float, den: float, default: float = 0.0) -> float:
    return num / den if den else default


def running_cov(values: Iterable[float]) -> Optional[float]:
    """One-pass CoV over an iterable (population variance)."""
    n = 0
    total = 0.0
    total_sq = 0.0
    for v in values:
        n += 1
        total += v
        total_sq += v * v
    if n < 2:
        return None
    m = total / n
    if m <= 0:
        return None
    variance = max(0.0, total_sq / n - m * m)
    return (variance ** 0.5) / m
