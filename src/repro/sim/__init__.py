"""Simulation driver: configuration, single runs, experiments, metrics.

``driver`` and ``experiment`` are imported lazily (PEP 562): they depend on
the policy packages, which themselves import :mod:`repro.sim.config`, and
eager imports here would close an import cycle.
"""

from repro.sim.config import (
    BBVConfig,
    CacheConfig,
    ExperimentConfig,
    MachineConfig,
    ScaledParameters,
    TuningConfig,
    build_machine,
)
from repro.sim.metrics import (
    coefficient_of_variation,
    mean,
    population_std,
)

__all__ = [
    "BBVConfig",
    "BenchmarkComparison",
    "CacheConfig",
    "Engine",
    "EngineStats",
    "ExperimentConfig",
    "MachineConfig",
    "ResultStore",
    "RunResult",
    "RunSpec",
    "ScaledParameters",
    "SuiteResults",
    "TuningConfig",
    "build_machine",
    "coefficient_of_variation",
    "compare_schemes",
    "execute",
    "mean",
    "population_std",
    "run_benchmark",
    "run_suite",
    "sweep_parameter",
]

_LAZY = {
    "RunResult": ("repro.sim.driver", "RunResult"),
    "RunSpec": ("repro.sim.driver", "RunSpec"),
    "run_benchmark": ("repro.sim.driver", "run_benchmark"),
    "execute": ("repro.sim.driver", "execute"),
    "Engine": ("repro.sim.engine", "Engine"),
    "EngineStats": ("repro.sim.engine", "EngineStats"),
    "ResultStore": ("repro.sim.store", "ResultStore"),
    "BenchmarkComparison": ("repro.sim.experiment", "BenchmarkComparison"),
    "SuiteResults": ("repro.sim.experiment", "SuiteResults"),
    "compare_schemes": ("repro.sim.experiment", "compare_schemes"),
    "run_suite": ("repro.sim.experiment", "run_suite"),
    "sweep_parameter": ("repro.sim.sweeps", "sweep_parameter"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
