"""Simulation driver: configuration, single runs, experiments, metrics.

``driver`` and ``experiment`` are imported lazily (PEP 562): they depend on
the policy packages, which themselves import :mod:`repro.sim.config`, and
eager imports here would close an import cycle.
"""

from repro.sim.config import (
    BBVConfig,
    CacheConfig,
    ExperimentConfig,
    MachineConfig,
    ScaledParameters,
    TuningConfig,
    build_machine,
)
from repro.sim.metrics import (
    coefficient_of_variation,
    mean,
    population_std,
)

__all__ = [
    "BBVConfig",
    "BenchmarkComparison",
    "CacheConfig",
    "ExperimentConfig",
    "MachineConfig",
    "RunResult",
    "ScaledParameters",
    "SuiteResults",
    "TuningConfig",
    "build_machine",
    "coefficient_of_variation",
    "compare_schemes",
    "mean",
    "population_std",
    "run_benchmark",
    "run_suite",
]

_LAZY = {
    "RunResult": ("repro.sim.driver", "RunResult"),
    "run_benchmark": ("repro.sim.driver", "run_benchmark"),
    "BenchmarkComparison": ("repro.sim.experiment", "BenchmarkComparison"),
    "SuiteResults": ("repro.sim.experiment", "SuiteResults"),
    "compare_schemes": ("repro.sim.experiment", "compare_schemes"),
    "run_suite": ("repro.sim.experiment", "run_suite"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
