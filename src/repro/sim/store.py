"""Persistent, content-addressed result store (schema v1, sharded).

Every cell the engine executes can be persisted as one JSON file under a
store directory (default ``results/store/``), addressed by the cell's
``(benchmark, scheme, ExperimentConfig.fingerprint())`` identity.  A
fresh process — another CLI invocation, another pytest worker, another
*host* feeding the same shared directory — that asks for the same cell
gets the stored :class:`~repro.sim.driver.RunResult` back instead of
re-simulating.

Directory layout (docs/INTERNALS.md §14): entries live in
**content-hash shards** — two-hex-character directories named by the
fingerprint prefix — so concurrent writers (a multi-host ``ssh``
backend, parallel pytest workers) spread their directory traffic and
their lease contention across 256 buckets instead of one flat dir::

    results/store/
      3f/db__hotspot__3fa89c....json
      3f/.lease                       # transient per-shard writer lease
      a0/jess__baseline__a01b42....json

Entries written by older checkouts into the flat root are still read
(and migrated into their shard on first hit), so an existing store
keeps working after an upgrade.

Entry layout (schema version 1)::

    {
      "schema": 1,
      "fingerprint": "<64-hex sha256 of the canonical config>",
      "benchmark": "db",
      "scheme": "hotspot",
      "created": 1754000000.0,
      "repro_version": "1.0.0",
      "result": { ... RunResult.to_dict() ... },
      "meta": {                       # optional execution metadata
        "v": 1,                       #   (its own schema version)
        "elapsed_s": 0.41,            # measured cell wall-clock
        "executed_by": "host#pid",    # executor identity
        "cost_key": ["db", "hotspot", "fast", 20]
      }
    }

The ``meta`` block is additive and independently versioned: entries
without it (written by older checkouts) read fine, and readers ignore a
``meta`` whose ``v`` they don't understand.  It never participates in
result identity — it exists so the scheduler's cost model
(:mod:`repro.sim.costmodel`) can warm-boot runtime estimates across
processes via :meth:`ResultStore.iter_meta`.

Robustness rules:

* reads that fail are treated as cache misses — the cell simply
  re-simulates and the entry is rewritten.  *Corrupt* entries (invalid
  JSON, undecodable result payloads) are additionally **quarantined**:
  renamed to ``<entry>.corrupt`` with a ``<entry>.corrupt.reason``
  sidecar recording why, so damaged files are preserved as evidence and
  surfaced by ``tools/store_gc.py`` instead of being silently
  overwritten.  Entries with a merely *unknown schema version* (left by
  older/newer checkouts) stay in place untouched — they are someone
  else's valid data, not corruption;
* commits are atomic (temp file in the shard + ``os.replace``), so a
  crashed or concurrent writer can never leave a truncated entry
  behind — two processes ``put()``-ing the same key concurrently both
  leave a valid entry (last replace wins);
* writers additionally take a **per-shard lease** (``.lease``, created
  ``O_CREAT | O_EXCL``) around a batch of commits.  The lease is an
  optimisation and an observability hook, not a correctness
  requirement: it serialises same-shard batches so rename storms don't
  interleave, a crashed writer's lease goes *stale* after
  ``LEASE_STALE_S`` and is taken over, and a writer that cannot acquire
  a lease within ``LEASE_WAIT_S`` proceeds anyway (counted in
  :attr:`ResultStore.lease_timeouts`) because the rename commit is
  already safe without it;
* ``STORE_SCHEMA_VERSION`` must be bumped whenever the serialised shape
  of :class:`RunResult` changes, and the *fingerprint* version
  (:data:`repro.sim.config.FINGERPRINT_VERSION`) whenever simulator
  behaviour changes meaning under an unchanged config — see
  docs/INTERNALS.md §9.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.sim.driver import RunResult

#: Version of the on-disk entry layout.  Entries with any other value are
#: ignored on read (and reported by ``tools/store_gc.py``).
STORE_SCHEMA_VERSION = 1

#: Default location, overridable with the ``REPRO_STORE_DIR`` environment
#: variable (the CLI's ``--store-dir`` wins over both).
DEFAULT_STORE_DIR = "results/store"

#: Hex characters of the fingerprint naming a shard directory.
SHARD_WIDTH = 2

#: Per-shard writer-lease file name (never matches the entry globs).
LEASE_NAME = ".lease"

#: A lease untouched for this long belongs to a dead writer: take it over.
LEASE_STALE_S = 30.0

#: How long a writer waits for a shard lease before proceeding without
#: one (commits are atomic either way; the overrun is only counted).
LEASE_WAIT_S = 10.0


def default_store_dir() -> Path:
    return Path(os.environ.get("REPRO_STORE_DIR", DEFAULT_STORE_DIR))


@dataclass(frozen=True)
class ClearStats:
    """What :meth:`ResultStore.clear` removed, by file kind."""

    entries: int = 0
    tmp: int = 0
    corrupt: int = 0

    @property
    def total(self) -> int:
        return self.entries + self.tmp + self.corrupt


@dataclass(frozen=True)
class StoreEntryInfo:
    """Metadata of one store file (for listings and GC)."""

    path: Path
    benchmark: Optional[str]
    scheme: Optional[str]
    fingerprint: Optional[str]
    schema: Optional[int]
    created: Optional[float]
    corrupt: bool = False
    #: On-disk size (0 when the file vanished mid-listing).
    size_bytes: int = 0
    #: File mtime (LRU axis for ``store_gc --max-bytes``; 0.0 unknown).
    mtime: float = 0.0

    @property
    def known_schema(self) -> bool:
        return self.schema == STORE_SCHEMA_VERSION

    def age_days(self, now: Optional[float] = None) -> float:
        if self.created is None:
            return float("inf")
        now = time.time() if now is None else now
        return max(0.0, (now - self.created) / 86_400.0)


class _ShardLease:
    """Advisory per-shard writer lease (``O_CREAT | O_EXCL`` file).

    ``acquire()`` loops until the exclusive create succeeds, taking over
    leases whose mtime is older than ``stale_after`` (a crashed writer
    never releases).  Two takeover racers both unlink; exactly one wins
    the re-create.  On timeout the caller proceeds *without* the lease —
    commits stay atomic regardless — and the overrun is reported through
    the return value.
    """

    def __init__(
        self,
        shard: Path,
        stale_after: float = LEASE_STALE_S,
        timeout: float = LEASE_WAIT_S,
    ):
        self.path = shard / LEASE_NAME
        self.stale_after = stale_after
        self.timeout = timeout
        self.held = False

    def acquire(self) -> bool:
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                if self._steal_if_stale():
                    continue
                if time.monotonic() >= deadline:
                    return False
                time.sleep(0.02)
                continue
            except OSError:
                # Unwritable shard (permissions, read-only mount): the
                # commit itself will surface the real error.
                return False
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"pid={os.getpid()} ts={time.time():.0f}\n")
            self.held = True
            return True

    def _steal_if_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return True  # holder released between our create and stat
        if age <= self.stale_after:
            return False
        try:
            self.path.unlink()
        except OSError:
            pass  # the other racer's unlink won; retry the create
        return True

    def release(self) -> None:
        if not self.held:
            return
        self.held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "_ShardLease":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultStore:
    """On-disk result cache, one JSON file per experiment cell."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_store_dir()
        #: Entries this instance quarantined (renamed to ``*.corrupt``).
        self.quarantined = 0
        #: Batches committed without a shard lease (waited past
        #: ``LEASE_WAIT_S``); nonzero means heavy same-shard contention.
        self.lease_timeouts = 0

    # -- addressing --------------------------------------------------------

    def shard_for(self, fingerprint: str) -> Path:
        """The content-hash shard directory an entry lives in."""
        return self.root / fingerprint[:SHARD_WIDTH]

    def path_for(
        self, benchmark: str, scheme: str, fingerprint: str
    ) -> Path:
        """Content address: shard + readable prefix + fingerprint excerpt."""
        return self.shard_for(fingerprint) / (
            f"{benchmark}__{scheme}__{fingerprint[:24]}.json"
        )

    def _legacy_path_for(
        self, benchmark: str, scheme: str, fingerprint: str
    ) -> Path:
        """Flat pre-shard location (read-only compatibility)."""
        return self.root / f"{benchmark}__{scheme}__{fingerprint[:24]}.json"

    # -- read/write --------------------------------------------------------

    def get(
        self, benchmark: str, scheme: str, fingerprint: str
    ) -> Optional[RunResult]:
        """Stored result for a cell, or None on miss/corruption/mismatch.

        A *corrupt* entry (undecodable JSON or result payload) is
        quarantined on the spot — renamed to ``<entry>.corrupt`` with a
        ``.reason`` sidecar — so the damage is preserved and visible
        (``tools/store_gc.py``) instead of being silently rewritten by
        the re-simulation that follows the miss.  Flat entries left by
        the pre-shard layout are found too, and migrated into their
        shard on first hit.
        """
        path = self.path_for(benchmark, scheme, fingerprint)
        result = self._read_entry(path, fingerprint)
        if result is not None:
            return result
        legacy = self._legacy_path_for(benchmark, scheme, fingerprint)
        result = self._read_entry(legacy, fingerprint)
        if result is not None:
            self._migrate(legacy, path)
        return result

    def _read_entry(
        self, path: Path, fingerprint: str
    ) -> Optional[RunResult]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError) as error:
            self._quarantine(path, f"unreadable entry: {error!r}")
            return None
        # An unknown schema version or foreign fingerprint is valid data
        # that simply isn't ours to decode — a miss, not corruption.
        if payload.get("schema") != STORE_SCHEMA_VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        try:
            return RunResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as error:
            self._quarantine(path, f"undecodable result: {error!r}")
            return None

    def _migrate(self, legacy: Path, target: Path) -> None:
        """Atomically move a flat pre-shard entry into its shard."""
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(legacy, target)
        except OSError:
            pass  # a concurrent reader migrated it (or the FS refused)

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a damaged entry aside as ``*.corrupt`` + reason sidecar."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        self.quarantined += 1
        try:
            target.with_name(target.name + ".reason").write_text(
                f"{reason}\nquarantined: {time.time():.0f}\n",
                encoding="utf-8",
            )
        except OSError:
            pass
        return target

    def put(
        self,
        benchmark: str,
        scheme: str,
        fingerprint: str,
        result: RunResult,
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        """Atomically persist one cell's result; returns the entry path."""
        return self.put_many(
            [(benchmark, scheme, fingerprint, result, meta)]
        )[0]

    def put_many(
        self,
        entries: Iterable[Tuple],
    ) -> List[Path]:
        """Persist a batch of ``(benchmark, scheme, fingerprint, result)``
        — optionally ``(..., result, meta)`` — entries; returns their
        paths in order.

        ``meta`` is the optional execution-metadata block (see the
        module docstring); a 4-tuple writes an entry without one,
        exactly as before.

        Entries are grouped **per shard**: each shard is created once,
        its writer lease taken once, and its entries committed under it
        back to back.  Each commit is still an independent atomic
        rename (a crash mid-batch leaves a valid prefix, never a
        truncated file), so a lease that could not be acquired in time
        degrades to plain unserialised commits, counted in
        :attr:`lease_timeouts`.
        """
        entries = list(entries)
        if not entries:
            return []
        by_shard: Dict[Path, List[int]] = {}
        keyed = []
        for position, entry in enumerate(entries):
            benchmark, scheme, fingerprint, result = entry[:4]
            meta = entry[4] if len(entry) > 4 else None
            shard = self.shard_for(fingerprint)
            by_shard.setdefault(shard, []).append(position)
            keyed.append((benchmark, scheme, fingerprint, result, meta))
        paths: List[Optional[Path]] = [None] * len(entries)
        for shard, positions in by_shard.items():
            shard.mkdir(parents=True, exist_ok=True)
            lease = _ShardLease(shard)
            if not lease.acquire():
                self.lease_timeouts += 1
            try:
                for position in positions:
                    paths[position] = self._put_one(*keyed[position])
            finally:
                lease.release()
        return paths  # type: ignore[return-value]

    def _put_one(
        self,
        benchmark: str,
        scheme: str,
        fingerprint: str,
        result: RunResult,
        meta: Optional[Dict[str, object]] = None,
    ) -> Path:
        path = self.path_for(benchmark, scheme, fingerprint)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "benchmark": benchmark,
            "scheme": scheme,
            "created": time.time(),
            "repro_version": _repro_version(),
            "result": result.to_dict(),
        }
        if meta:
            payload["meta"] = meta
        # The temp file lives in the shard so the commit rename never
        # crosses a filesystem boundary.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance -------------------------------------------------------

    def _glob_both(self, pattern: str) -> List[Path]:
        """Matches in the flat root (legacy) and in every shard."""
        if not self.root.is_dir():
            return []
        return sorted(
            list(self.root.glob(pattern))
            + list(self.root.glob(f"*/{pattern}"))
        )

    def entries(self) -> Iterator[StoreEntryInfo]:
        """Metadata for every ``*.json`` entry (all shards + flat root)."""
        for path in self._glob_both("*.json"):
            try:
                stat = path.stat()
                size, mtime = stat.st_size, stat.st_mtime
            except OSError:
                size, mtime = 0, 0.0
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                yield StoreEntryInfo(
                    path=path,
                    benchmark=payload.get("benchmark"),
                    scheme=payload.get("scheme"),
                    fingerprint=payload.get("fingerprint"),
                    schema=payload.get("schema"),
                    created=payload.get("created"),
                    size_bytes=size,
                    mtime=mtime,
                )
            except (OSError, ValueError):
                yield StoreEntryInfo(
                    path=path,
                    benchmark=None,
                    scheme=None,
                    fingerprint=None,
                    schema=None,
                    created=None,
                    corrupt=True,
                    size_bytes=size,
                    mtime=mtime,
                )

    def iter_meta(self) -> Iterator[Dict[str, object]]:
        """The ``meta`` block of every known-schema entry that has one.

        This is the cost model's warm-boot feed
        (:meth:`repro.sim.costmodel.CostModel.bootstrap_from_store`):
        entries written before metadata existed, corrupt files, and
        foreign schema versions are all skipped silently.
        """
        for path in self._glob_both("*.json"):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError):
                continue
            if payload.get("schema") != STORE_SCHEMA_VERSION:
                continue
            meta = payload.get("meta")
            if isinstance(meta, dict):
                yield meta

    def stale_tmp_files(self) -> List[Path]:
        """Leftover atomic-write temp files (a crashed writer's debris)."""
        return self._glob_both("*.tmp")

    def corrupt_files(self) -> List[Path]:
        """Quarantined entries (``*.corrupt``), excluding reason sidecars."""
        return [
            path
            for path in self._glob_both("*.corrupt")
            if path.suffix == ".corrupt"
        ]

    def stale_lease_files(self, now: Optional[float] = None) -> List[Path]:
        """Shard leases older than ``LEASE_STALE_S`` (dead writers).

        Live writers take these over on contact; this listing exists so
        ``tools/store_gc.py`` can surface (and sweep) them even when no
        writer ever comes back to that shard.
        """
        now = time.time() if now is None else now
        stale = []
        for path in self._glob_both(LEASE_NAME):
            try:
                if now - path.stat().st_mtime > LEASE_STALE_S:
                    stale.append(path)
            except OSError:
                continue
        return stale

    def quarantine_reason(self, path: Path) -> Optional[str]:
        """First line of a quarantined entry's reason sidecar, if any."""
        try:
            text = path.with_name(path.name + ".reason").read_text(
                encoding="utf-8"
            )
        except OSError:
            return None
        return text.splitlines()[0] if text else None

    def clear(self) -> ClearStats:
        """Delete every entry, stale temp file, and quarantined file.

        Returns per-kind counts (entries / tmp / corrupt) rather than one
        conflated number — a large ``tmp`` count means crashed writers,
        a large ``corrupt`` count means quarantined damage, and neither
        should masquerade as cache size.  Shard directories (and any
        leases in them) are removed too.
        """
        if not self.root.is_dir():
            return ClearStats()
        entries = tmp = corrupt = 0
        for path in self._glob_both("*.json"):
            entries += self._unlink(path)
        for path in self._glob_both("*.tmp"):
            tmp += self._unlink(path)
        for path in self.corrupt_files():
            corrupt += self._unlink(path)
            self._unlink(path.with_name(path.name + ".reason"))
        for path in self._glob_both(LEASE_NAME):
            self._unlink(path)
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()
                except OSError:
                    pass  # still holds someone else's files
        return ClearStats(entries=entries, tmp=tmp, corrupt=corrupt)

    @staticmethod
    def _unlink(path: Path) -> int:
        try:
            path.unlink()
            return 1
        except OSError:
            return 0

    def __len__(self) -> int:
        return len(self._glob_both("*.json"))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"


def _repro_version() -> str:
    try:
        import repro

        return getattr(repro, "__version__", "unknown")
    except Exception:
        return "unknown"
