"""Persistent, content-addressed result store (schema v1).

Every cell the engine executes can be persisted as one JSON file under a
store directory (default ``results/store/``), addressed by the cell's
``(benchmark, scheme, ExperimentConfig.fingerprint())`` identity.  A
fresh process — another CLI invocation, another pytest worker — that asks
for the same cell gets the stored :class:`~repro.sim.driver.RunResult`
back instead of re-simulating.

Entry layout (schema version 1)::

    {
      "schema": 1,
      "fingerprint": "<64-hex sha256 of the canonical config>",
      "benchmark": "db",
      "scheme": "hotspot",
      "created": 1754000000.0,
      "repro_version": "1.0.0",
      "result": { ... RunResult.to_dict() ... }
    }

Robustness rules:

* reads that fail are treated as cache misses — the cell simply
  re-simulates and the entry is rewritten.  *Corrupt* entries (invalid
  JSON, undecodable result payloads) are additionally **quarantined**:
  renamed to ``<entry>.corrupt`` with a ``<entry>.corrupt.reason``
  sidecar recording why, so damaged files are preserved as evidence and
  surfaced by ``tools/store_gc.py`` instead of being silently
  overwritten.  Entries with a merely *unknown schema version* (left by
  older/newer checkouts) stay in place untouched — they are someone
  else's valid data, not corruption;
* writes are atomic (temp file + ``os.replace``), so a crashed or
  concurrent writer can never leave a truncated entry behind — two
  processes ``put()``-ing the same key concurrently both leave a valid
  entry (last replace wins);
* ``STORE_SCHEMA_VERSION`` must be bumped whenever the serialised shape
  of :class:`RunResult` changes, and the *fingerprint* version
  (:data:`repro.sim.config.FINGERPRINT_VERSION`) whenever simulator
  behaviour changes meaning under an unchanged config — see
  docs/INTERNALS.md §9.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.sim.driver import RunResult

#: Version of the on-disk entry layout.  Entries with any other value are
#: ignored on read (and reported by ``tools/store_gc.py``).
STORE_SCHEMA_VERSION = 1

#: Default location, overridable with the ``REPRO_STORE_DIR`` environment
#: variable (the CLI's ``--store-dir`` wins over both).
DEFAULT_STORE_DIR = "results/store"


def default_store_dir() -> Path:
    return Path(os.environ.get("REPRO_STORE_DIR", DEFAULT_STORE_DIR))


@dataclass(frozen=True)
class ClearStats:
    """What :meth:`ResultStore.clear` removed, by file kind."""

    entries: int = 0
    tmp: int = 0
    corrupt: int = 0

    @property
    def total(self) -> int:
        return self.entries + self.tmp + self.corrupt


@dataclass(frozen=True)
class StoreEntryInfo:
    """Metadata of one store file (for listings and GC)."""

    path: Path
    benchmark: Optional[str]
    scheme: Optional[str]
    fingerprint: Optional[str]
    schema: Optional[int]
    created: Optional[float]
    corrupt: bool = False

    @property
    def known_schema(self) -> bool:
        return self.schema == STORE_SCHEMA_VERSION

    def age_days(self, now: Optional[float] = None) -> float:
        if self.created is None:
            return float("inf")
        now = time.time() if now is None else now
        return max(0.0, (now - self.created) / 86_400.0)


class ResultStore:
    """On-disk result cache, one JSON file per experiment cell."""

    def __init__(self, root: Union[str, Path, None] = None):
        self.root = Path(root) if root is not None else default_store_dir()
        #: Entries this instance quarantined (renamed to ``*.corrupt``).
        self.quarantined = 0

    # -- addressing --------------------------------------------------------

    def path_for(
        self, benchmark: str, scheme: str, fingerprint: str
    ) -> Path:
        """Content address: readable prefix + fingerprint excerpt."""
        return self.root / f"{benchmark}__{scheme}__{fingerprint[:24]}.json"

    # -- read/write --------------------------------------------------------

    def get(
        self, benchmark: str, scheme: str, fingerprint: str
    ) -> Optional[RunResult]:
        """Stored result for a cell, or None on miss/corruption/mismatch.

        A *corrupt* entry (undecodable JSON or result payload) is
        quarantined on the spot — renamed to ``<entry>.corrupt`` with a
        ``.reason`` sidecar — so the damage is preserved and visible
        (``tools/store_gc.py``) instead of being silently rewritten by
        the re-simulation that follows the miss.
        """
        path = self.path_for(benchmark, scheme, fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError) as error:
            self._quarantine(path, f"unreadable entry: {error!r}")
            return None
        # An unknown schema version or foreign fingerprint is valid data
        # that simply isn't ours to decode — a miss, not corruption.
        if payload.get("schema") != STORE_SCHEMA_VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        try:
            return RunResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError) as error:
            self._quarantine(path, f"undecodable result: {error!r}")
            return None

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move a damaged entry aside as ``*.corrupt`` + reason sidecar."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:
            return None
        self.quarantined += 1
        try:
            target.with_name(target.name + ".reason").write_text(
                f"{reason}\nquarantined: {time.time():.0f}\n",
                encoding="utf-8",
            )
        except OSError:
            pass
        return target

    def put(
        self,
        benchmark: str,
        scheme: str,
        fingerprint: str,
        result: RunResult,
    ) -> Path:
        """Atomically persist one cell's result; returns the entry path."""
        self.root.mkdir(parents=True, exist_ok=True)
        return self._put_one(benchmark, scheme, fingerprint, result)

    def put_many(
        self,
        entries: Iterable[Tuple[str, str, str, RunResult]],
    ) -> List[Path]:
        """Persist a batch of ``(benchmark, scheme, fingerprint, result)``
        entries; returns their paths in order.

        Each entry is still an independent atomic write (a crash mid-batch
        leaves a valid prefix, never a truncated file), but the directory
        creation and the call overhead are paid once per batch instead of
        once per cell — the engine flushes a whole batch's simulated
        results through here.
        """
        entries = list(entries)
        if not entries:
            return []
        self.root.mkdir(parents=True, exist_ok=True)
        return [
            self._put_one(benchmark, scheme, fingerprint, result)
            for benchmark, scheme, fingerprint, result in entries
        ]

    def _put_one(
        self,
        benchmark: str,
        scheme: str,
        fingerprint: str,
        result: RunResult,
    ) -> Path:
        path = self.path_for(benchmark, scheme, fingerprint)
        payload = {
            "schema": STORE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "benchmark": benchmark,
            "scheme": scheme,
            "created": time.time(),
            "repro_version": _repro_version(),
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -- maintenance -------------------------------------------------------

    def entries(self) -> Iterator[StoreEntryInfo]:
        """Metadata for every ``*.json`` entry under the store root."""
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                yield StoreEntryInfo(
                    path=path,
                    benchmark=payload.get("benchmark"),
                    scheme=payload.get("scheme"),
                    fingerprint=payload.get("fingerprint"),
                    schema=payload.get("schema"),
                    created=payload.get("created"),
                )
            except (OSError, ValueError):
                yield StoreEntryInfo(
                    path=path,
                    benchmark=None,
                    scheme=None,
                    fingerprint=None,
                    schema=None,
                    created=None,
                    corrupt=True,
                )

    def stale_tmp_files(self) -> List[Path]:
        """Leftover atomic-write temp files (a crashed writer's debris)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.tmp"))

    def corrupt_files(self) -> List[Path]:
        """Quarantined entries (``*.corrupt``), excluding reason sidecars."""
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.glob("*.corrupt")
            if path.suffix == ".corrupt"
        )

    def quarantine_reason(self, path: Path) -> Optional[str]:
        """First line of a quarantined entry's reason sidecar, if any."""
        try:
            text = path.with_name(path.name + ".reason").read_text(
                encoding="utf-8"
            )
        except OSError:
            return None
        return text.splitlines()[0] if text else None

    def clear(self) -> ClearStats:
        """Delete every entry, stale temp file, and quarantined file.

        Returns per-kind counts (entries / tmp / corrupt) rather than one
        conflated number — a large ``tmp`` count means crashed writers,
        a large ``corrupt`` count means quarantined damage, and neither
        should masquerade as cache size.
        """
        if not self.root.is_dir():
            return ClearStats()
        entries = tmp = corrupt = 0
        for path in self.root.glob("*.json"):
            entries += self._unlink(path)
        for path in self.root.glob("*.tmp"):
            tmp += self._unlink(path)
        for path in self.corrupt_files():
            corrupt += self._unlink(path)
            self._unlink(path.with_name(path.name + ".reason"))
        return ClearStats(entries=entries, tmp=tmp, corrupt=corrupt)

    @staticmethod
    def _unlink(path: Path) -> int:
        try:
            path.unlink()
            return 1
        except OSError:
            return 0

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r}, entries={len(self)})"


def _repro_version() -> str:
    try:
        import repro

        return getattr(repro, "__version__", "unknown")
    except Exception:
        return "unknown"
