"""Makespan-aware batch scheduler: LPT ordering + cost-balanced chunks.

The engine's historical dispatch was submission-order with size-blind
chunking: ``ceil(cells / (workers * 4))`` consecutive cells per chunk,
capped at 8.  That is optimal when every cell costs the same and every
worker runs at the same speed — and pathological otherwise: a 10×
cell landing in the last chunk idles every other worker while one
grinds (the classic makespan tail).

This module plans one pool round from the cost model's estimates
(:mod:`repro.sim.costmodel`):

* **LPT ordering** — cells are packed longest-estimated-first (the
  Longest Processing Time heuristic, a 4/3-approximation of optimal
  makespan), ties broken deterministically by ascending cell index;
* **cost-balanced packing** — the round is split into the same number
  of chunks the legacy rule would produce, but greedily balanced by
  *estimated seconds* instead of by count, so every chunk represents
  roughly equal work;
* **host-speed weighting** — when the cost model has observed per-host
  throughput (``host#incarnation`` EWMA cells/sec), packing targets
  are scaled per slot, so a 2× faster host's chunks carry ~2× the
  estimated work;
* **chunk-level LPT dispatch** — planned chunks are submitted in
  descending estimated-cost order, so the heaviest work starts first
  and the tail of the round is made of light chunks.

Planning is **semantics-free by construction**: a plan only permutes
*which cells share a pickled payload* and *the order payloads enter the
queue*.  Results land by batch index, every cell still runs exactly
once (per attempt), and ``BatchResult`` ordering is positional — so the
conformance grid (tests/test_schedule.py) proves bit-identical values
for ``schedule=fifo|lpt`` across every backend.

Cold-start contract: with no usable estimates (or ``schedule="fifo"``)
:func:`plan_round` returns **exactly** the legacy partition, verified
by a regression test — enabling the scheduler on a fresh machine
changes nothing until history exists.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Planner modes (``ExecutionOptions.schedule``).
SCHEDULE_MODES = ("lpt", "fifo")

#: Fraction of a round's cells that must have estimates before the
#: planner trusts them; below this it falls back to the legacy plan
#: (median-filling a mostly-unknown round would be noise, not signal).
MIN_ESTIMATE_COVERAGE = 0.5


def legacy_chunks(
    indices: List[int],
    workers: int,
    chunk_size: Optional[int] = None,
) -> List[List[int]]:
    """The engine's historical partition, bit-for-bit.

    ``chunk_size=None`` auto-sizes to ``ceil(n / (workers * 4))`` capped
    at 8; cells stay in submission order, sliced consecutively.  This is
    the planner's cold-start behaviour, so it must never drift from
    what ``Engine._chunks`` always did (regression-tested).
    """
    size = chunk_size
    if size is None:
        workers = max(1, workers)
        size = min(8, max(1, math.ceil(len(indices) / (workers * 4))))
    size = max(1, int(size))
    return [
        indices[start:start + size]
        for start in range(0, len(indices), size)
    ]


@dataclass
class RoundPlan:
    """One planned pool round: chunks in dispatch order plus forecast."""

    #: Chunks in dispatch order; members ascending by cell index.
    chunks: List[List[int]] = field(default_factory=list)
    #: Estimated seconds per chunk (parallel to :attr:`chunks`; 0.0 in
    #: legacy mode where no estimates exist).
    chunk_costs: List[float] = field(default_factory=list)
    #: ``"lpt"`` (cost-balanced), ``"fifo"`` (requested legacy), or
    #: ``"cold"`` (lpt requested but insufficient history).
    mode: str = "cold"
    #: Cells that had a usable estimate.
    estimated_cells: int = 0
    #: LPT makespan forecast in seconds (0.0 in legacy mode).
    predicted_makespan_s: float = 0.0
    #: Per-slot speed weights used (None = unweighted).
    slot_weights: Optional[List[float]] = None

    @property
    def cells(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)


def predict_makespan(
    chunk_costs: Sequence[float],
    workers: int,
    slot_weights: Optional[Sequence[float]] = None,
) -> float:
    """Greedy-simulated finish time of a round's chunks on the fleet.

    Chunks are taken in the given (dispatch) order; each goes to the
    slot that would finish it earliest, at ``cost / weight`` seconds.
    This mirrors how an idle-worker queue actually drains a round, so
    the forecast is comparable to the measured round wall-clock
    (``schedule_planned`` telemetry reports both).
    """
    workers = max(1, workers)
    if slot_weights and len(slot_weights) >= 1:
        weights = [max(0.05, float(w)) for w in slot_weights[:workers]]
        while len(weights) < workers:
            weights.append(1.0)
    else:
        weights = [1.0] * workers
    finish = [0.0] * workers
    for cost in chunk_costs:
        slot = min(range(workers), key=lambda s: (finish[s], s))
        finish[slot] += max(0.0, float(cost)) / weights[slot]
    return max(finish) if finish else 0.0


def plan_round(
    indices: List[int],
    estimates: Dict[int, Optional[float]],
    workers: int,
    chunk_size: Optional[int] = None,
    schedule: str = "lpt",
    slot_weights: Optional[Sequence[float]] = None,
) -> RoundPlan:
    """Partition one round's cell indices into dispatch-ordered chunks.

    ``estimates`` maps cell index to predicted seconds (None = unknown).
    Falls back to the legacy count-based plan when ``schedule="fifo"``,
    when the round is trivial, or when fewer than
    :data:`MIN_ESTIMATE_COVERAGE` of the cells have estimates; unknown
    cells in an otherwise known round are filled with the round's
    median estimate.
    """
    indices = list(indices)
    known = {
        i: float(estimates[i])
        for i in indices
        if estimates.get(i) is not None and estimates[i] > 0
    }
    if schedule not in SCHEDULE_MODES:
        raise ValueError(
            f"schedule must be one of {SCHEDULE_MODES}, got {schedule!r}"
        )
    lpt = schedule == "lpt"
    coverage = (len(known) / len(indices)) if indices else 0.0
    if (
        not lpt
        or len(indices) <= 1
        or not known
        or coverage < MIN_ESTIMATE_COVERAGE
    ):
        chunks = legacy_chunks(indices, workers, chunk_size)
        return RoundPlan(
            chunks=chunks,
            chunk_costs=[0.0] * len(chunks),
            mode="fifo" if not lpt else "cold",
            estimated_cells=len(known),
        )

    fill = statistics.median(known.values())
    cost = {i: known.get(i, fill) for i in indices}

    # Same chunk *count* as the legacy rule (explicit chunk_size still
    # honoured), so enabling the scheduler changes packing, not payload
    # pressure or crash-retry granularity.
    n_chunks = len(legacy_chunks(indices, workers, chunk_size))

    # Per-bin weights: bin b drains at roughly slot (b % workers)'s
    # speed (dispatch order below interleaves bins across the fleet).
    workers = max(1, workers)
    if slot_weights:
        weights = [max(0.05, float(w)) for w in slot_weights[:workers]]
        while len(weights) < workers:
            weights.append(1.0)
    else:
        weights = None

    # LPT greedy packing: heaviest cell first (ties by ascending index,
    # fully deterministic) into the bin with the lowest weighted load.
    order = sorted(indices, key=lambda i: (-cost[i], i))
    bins: List[List[int]] = [[] for _ in range(n_chunks)]
    loads = [0.0] * n_chunks

    def _weighted(b: int) -> float:
        if weights is None:
            return loads[b]
        return loads[b] / weights[b % workers]

    for i in order:
        b = min(range(n_chunks), key=lambda b: (_weighted(b), b))
        bins[b].append(i)
        loads[b] += cost[i]

    # Dispatch heaviest chunk first; members ascend by index so the
    # payload ordering (and any per-cell fault keying) is deterministic.
    ranked = sorted(
        range(n_chunks),
        key=lambda b: (-loads[b], bins[b][0] if bins[b] else -1),
    )
    chunks = [sorted(bins[b]) for b in ranked if bins[b]]
    chunk_costs = [loads[b] for b in ranked if bins[b]]
    return RoundPlan(
        chunks=chunks,
        chunk_costs=chunk_costs,
        mode="lpt",
        estimated_cells=len(known),
        predicted_makespan_s=predict_makespan(
            chunk_costs, workers, slot_weights
        ),
        slot_weights=list(slot_weights) if slot_weights else None,
    )


def straggler_budget(
    factor: float,
    baseline_per_cell: float,
    chunk: Sequence[int],
    estimates: Dict[int, Optional[float]],
) -> float:
    """Estimate-relative speculation budget for one in-flight chunk.

    The legacy budget was flat: ``factor * baseline * len(chunk)`` with
    ``baseline`` the median+3×MAD of *completed* per-cell durations —
    which flags any cell predicted to run long as a straggler the
    moment it exceeds ~the median.  Here the flat budget is scaled by
    the chunk's predicted cost relative to the round's median estimate,
    so a chunk of 10×-predicted cells gets a ~10× budget.

    The scale is clamped at ≥ 1.0: estimates may *extend* a budget
    (fewer pointless speculations — pure wall-clock win) but never
    shrink it below the legacy value, so a wildly wrong low estimate
    cannot make speculation fire earlier than it ever did.  Speculation
    itself remains result-safe regardless (first-result-wins,
    bit-identity asserted — docs/INTERNALS.md §16).
    """
    flat = factor * baseline_per_cell * len(chunk)
    known = [
        float(estimates[i])
        for i in estimates
        if estimates[i] is not None and estimates[i] > 0
    ]
    if not known or not chunk:
        return flat
    median = statistics.median(known)
    if median <= 0:
        return flat
    chunk_est = sum(
        float(estimates[i])
        if estimates.get(i) is not None and estimates[i] > 0
        else median
        for i in chunk
    )
    relative = chunk_est / (median * len(chunk))
    return flat * max(1.0, relative)
