"""Runtime cost model: per-cell wall-clock estimates learned from history.

The paper's thesis — steer optimization decisions with *measured*
runtime behaviour instead of static heuristics — applied to our own
execution layer.  Every cell the engine runs leaves an observation
(wall-clock seconds); this module turns those observations into
estimates the scheduler (:mod:`repro.sim.schedule`) packs chunks with,
and into per-host speed weights so heterogeneous ``SSHPool`` fleets
receive proportionally sized work.

Estimates are EWMA means keyed on the cell's **cost key**::

    (benchmark, scheme, sim_kernel, max_instructions bucket)

The bucket is ``int(log2(effective max_instructions))``, so a 300k-
instruction cell and a 310k one share an estimate while a 3M one does
not.  The key deliberately excludes the full configuration fingerprint:
runtime cost is dominated by kernel choice and instruction budget, and
a coarser key means a *new* configuration is predicted from the history
of similar ones already measured — the cross-configuration prediction
idea of the paper's related work.

Three history sources feed one model:

* **online** — the engine calls :meth:`CostModel.observe` with each
  completed cell's measured seconds (worker-side timing when available,
  parent-side chunk time otherwise);
* **store bootstrap** — :meth:`CostModel.bootstrap_from_store` replays
  the ``meta`` blocks (``elapsed_s`` + cost key) that
  :class:`repro.sim.store.ResultStore` persists with each entry, so a
  fresh process warm-boots from every run that ever hit the store;
* **snapshot file** — :meth:`load_dir`/:meth:`save_dir` round-trip the
  model through ``<dir>/cost_model.json`` (atomic replace), for
  store-less runs that still want cross-process estimates
  (``ExecutionOptions.cost_model_dir``).

Estimates never influence *results* — only chunk packing, dispatch
order, and straggler budgets.  A wildly wrong estimate can cost wall
clock, never correctness (docs/INTERNALS.md §18).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

#: Version stamp of the snapshot file and of store ``meta`` blocks this
#: model understands; unknown versions are skipped, never errors.
COST_MODEL_VERSION = 1

#: Snapshot file name under ``cost_model_dir``.
SNAPSHOT_NAME = "cost_model.json"

#: EWMA weight of the newest observation.  0.3 tracks drift (a machine
#: that warms up, a kernel change) within a few batches while smoothing
#: per-run noise.
EWMA_ALPHA = 0.3

#: A cost key: (benchmark, scheme, sim_kernel, instruction bucket).
CostKey = Tuple[str, str, str, int]


def instruction_bucket(max_instructions: Optional[int]) -> int:
    """Log2 bucket of an instruction budget (0 for unknown/absurd)."""
    if not max_instructions or max_instructions <= 0:
        return 0
    return int(max_instructions).bit_length()


def cost_key(spec) -> CostKey:
    """The estimate bucket a :class:`~repro.sim.driver.RunSpec` maps to."""
    config = spec.config
    budget = spec.max_instructions
    if budget is None:
        budget = getattr(config, "max_instructions", None)
    return (
        spec.benchmark_name,
        spec.scheme,
        getattr(config, "sim_kernel", "fast"),
        instruction_bucket(budget),
    )


class CostModel:
    """EWMA per-cell runtime estimates plus per-host speed weights."""

    def __init__(self, alpha: float = EWMA_ALPHA):
        self.alpha = float(alpha)
        #: cost key -> [ewma seconds, observation count]
        self._estimates: Dict[CostKey, List[float]] = {}
        #: ``host#incarnation`` (or ``host#pid``) -> [ewma cells/s, count]
        self._hosts: Dict[str, List[float]] = {}
        #: Observations folded in since the last :meth:`save_dir`.
        self.dirty = False

    # -- cell estimates ----------------------------------------------------

    def estimate(self, spec) -> Optional[float]:
        """Predicted wall-clock seconds for a cell; None when unknown."""
        entry = self._estimates.get(cost_key(spec))
        return None if entry is None else entry[0]

    def observe(self, spec, elapsed_s: float) -> None:
        """Fold one measured cell runtime into its bucket's EWMA."""
        if elapsed_s is None or elapsed_s < 0:
            return
        self._observe_key(cost_key(spec), float(elapsed_s))

    def _observe_key(self, key: CostKey, elapsed_s: float) -> None:
        entry = self._estimates.get(key)
        if entry is None:
            self._estimates[key] = [elapsed_s, 1]
        else:
            entry[0] += self.alpha * (elapsed_s - entry[0])
            entry[1] += 1
        self.dirty = True

    @property
    def known_keys(self) -> int:
        return len(self._estimates)

    @property
    def observations(self) -> int:
        return sum(int(c) for _, c in self._estimates.values())

    # -- host speeds -------------------------------------------------------

    def observe_host(
        self, host_id: Optional[str], cells: int, elapsed_s: float
    ) -> None:
        """Fold one chunk's measured throughput into a host's EWMA.

        ``host_id`` is the executor identity a chunk reply carries —
        ``host#incarnation`` for ssh workers, ``host#pid`` otherwise.
        Throughput (cells/second) rather than seconds/cell, so hosts
        serving differently sized chunks stay comparable.
        """
        if not host_id or cells <= 0 or elapsed_s is None or elapsed_s <= 0:
            return
        speed = cells / float(elapsed_s)
        entry = self._hosts.get(host_id)
        if entry is None:
            self._hosts[host_id] = [speed, 1]
        else:
            entry[0] += self.alpha * (speed - entry[0])
            entry[1] += 1
        self.dirty = True

    def host_speed(self, host_id: Optional[str]) -> Optional[float]:
        """EWMA cells/second of one executor; None when never observed."""
        if not host_id:
            return None
        entry = self._hosts.get(host_id)
        return None if entry is None else entry[0]

    def host_weights(self, host_slots: Dict[str, int]) -> Optional[List[float]]:
        """Per-slot relative speed weights for a pool's live hosts.

        ``host_slots`` maps executor identity to its slot count (see
        :meth:`repro.sim.pools.base.Pool.host_slots`).  Each slot of a
        host gets the host's speed normalised by the mean observed
        speed; hosts never observed get weight 1.0 (assumed average).
        Returns None when no host has been observed at all — uniform
        weights carry no information, and the scheduler skips weighting
        entirely.
        """
        if not host_slots:
            return None
        speeds = {
            host: self.host_speed(host) for host in host_slots
        }
        known = [s for s in speeds.values() if s]
        if not known:
            return None
        mean = sum(known) / len(known)
        if mean <= 0:
            return None
        weights: List[float] = []
        for host, slots in host_slots.items():
            weight = (speeds[host] / mean) if speeds[host] else 1.0
            weights.extend([max(0.05, weight)] * max(1, int(slots)))
        return weights

    # -- persistence -------------------------------------------------------

    def store_meta(self, spec, elapsed_s: float, executed_by: Optional[str]):
        """The ``meta`` block persisted with a store entry (schema v1)."""
        return {
            "v": COST_MODEL_VERSION,
            "elapsed_s": round(float(elapsed_s), 6),
            "executed_by": executed_by,
            "cost_key": list(cost_key(spec)),
        }

    def bootstrap_from_store(self, store) -> int:
        """Warm-boot from a :class:`~repro.sim.store.ResultStore`'s entry
        metadata; returns the number of observations replayed.

        Entries written before metadata existed (or by a newer meta
        version) are skipped silently — bootstrap degrades to cold
        start, never to an error.  Host speeds are *not* replayed: a
        prior process's worker pids/incarnations never match this one's.
        """
        replayed = 0
        if store is None:
            return replayed
        try:
            metas = list(store.iter_meta())
        except Exception:
            return replayed
        for meta in metas:
            replayed += self._replay_meta(meta)
        self.dirty = False  # replayed history is already persisted
        return replayed

    def _replay_meta(self, meta) -> int:
        if not isinstance(meta, dict) or meta.get("v") != COST_MODEL_VERSION:
            return 0
        key = meta.get("cost_key")
        elapsed = meta.get("elapsed_s")
        if (
            not isinstance(key, (list, tuple))
            or len(key) != 4
            or not isinstance(elapsed, (int, float))
            or elapsed < 0
        ):
            return 0
        try:
            self._observe_key(
                (str(key[0]), str(key[1]), str(key[2]), int(key[3])),
                float(elapsed),
            )
        except (TypeError, ValueError):
            return 0
        return 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "v": COST_MODEL_VERSION,
            "saved": time.time(),
            "estimates": [
                [list(key), mean, count]
                for key, (mean, count) in sorted(self._estimates.items())
            ],
            "hosts": [
                [host, speed, count]
                for host, (speed, count) in sorted(self._hosts.items())
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CostModel":
        model = cls()
        if not isinstance(payload, dict):
            return model
        if payload.get("v") != COST_MODEL_VERSION:
            return model
        for row in payload.get("estimates") or ():
            try:
                key, mean, count = row
                model._estimates[
                    (str(key[0]), str(key[1]), str(key[2]), int(key[3]))
                ] = [float(mean), int(count)]
            except (TypeError, ValueError, IndexError):
                continue
        for row in payload.get("hosts") or ():
            try:
                host, speed, count = row
                model._hosts[str(host)] = [float(speed), int(count)]
            except (TypeError, ValueError):
                continue
        return model

    @classmethod
    def load_dir(cls, directory: Union[str, Path]) -> "CostModel":
        """Model from ``<dir>/cost_model.json``; empty model on any miss."""
        path = Path(directory) / SNAPSHOT_NAME
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        except (OSError, ValueError):
            return cls()

    def save_dir(self, directory: Union[str, Path]) -> Optional[Path]:
        """Atomically snapshot to ``<dir>/cost_model.json`` (best effort).

        Concurrent writers each commit a complete file (temp + replace);
        last writer wins, which is fine for an advisory model.
        """
        directory = Path(directory)
        path = directory / SNAPSHOT_NAME
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(directory), prefix=SNAPSHOT_NAME, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(self.to_dict(), handle, separators=(",", ":"))
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return None
        self.dirty = False
        return path

    def merge_observations(
        self, rows: Iterable[Tuple[CostKey, float]]
    ) -> None:
        """Fold raw ``(cost key, seconds)`` pairs in (testing/tools)."""
        for key, elapsed in rows:
            self._observe_key(tuple(key), float(elapsed))

    def __repr__(self) -> str:
        return (
            f"CostModel({self.known_keys} keys, "
            f"{len(self._hosts)} hosts)"
        )
