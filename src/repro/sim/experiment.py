"""Experiment runner: baseline vs. BBV vs. hotspot across the suite.

This is the layer the table/figure benches and the CLI drive.  Since the
engine redesign it is a thin facade over
:class:`repro.sim.engine.Engine`: every run is cached per
``(benchmark, scheme, ExperimentConfig.fingerprint())`` — in process
memory *and*, by default, in the persistent on-disk store
(``results/store/``), so fresh processes reuse previous runs.  The old
``cached_run``/``compare_schemes``/``run_suite`` signatures are kept as
shims routing through one ``Engine.run(cells)`` entry point.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunResult, RunSpec, SCHEMES
from repro.sim.engine import (
    BatchExecutionError,
    Engine,
    ProgressCallback,
    clear_memory_cache,
)
from repro.sim.store import ResultStore
from repro.workloads.specjvm import BENCHMARK_NAMES

#: Persistent layer used by the module-level helpers.  ``None`` disables
#: persistence (memory-only), which is what ``--no-store`` sets.  The
#: initial store points at ``results/store`` (or ``$REPRO_STORE_DIR``).
_UNSET = object()
_DEFAULT_STORE = _UNSET


def get_default_store() -> Optional[ResultStore]:
    """The store new engines use; created lazily on first access."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is _UNSET:
        _DEFAULT_STORE = ResultStore()
    return _DEFAULT_STORE


def set_default_store(store: Optional[ResultStore]) -> None:
    """Replace (or, with ``None``, disable) the persistent layer."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def make_engine(
    jobs: int = 1,
    use_cache: bool = True,
    progress: Optional[ProgressCallback] = None,
    failure_policy: str = "raise",
    fault_plan=None,
    options=None,
    telemetry=None,
    recorder=None,
    resume=None,
) -> Engine:
    """An engine wired to the shared memory cache and default store.

    ``options`` (an :class:`repro.sim.options.ExecutionOptions`) carries
    the backend spec, chunking, and straggler knobs; the persistent
    layer stays the module default unless the options disable it
    (``no_store``) or point elsewhere (``store_dir`` — applied via
    :func:`set_default_store` by the CLI before this is called).
    ``telemetry``, ``recorder``, and ``resume`` (a prior run's
    flight-recorder manifest) pass straight through to :class:`Engine`
    (the CLI's ``--trace`` / ``--record`` / ``--resume`` plumbing).
    """
    return Engine(
        jobs=jobs,
        store=get_default_store(),
        use_cache=use_cache,
        progress=progress,
        failure_policy=failure_policy,
        fault_plan=fault_plan,
        pool=None if options is None else options.resolved_backend(),
        chunk_size=None if options is None else options.chunk_size,
        max_pool_rebuilds=(
            3 if options is None else options.max_pool_rebuilds
        ),
        straggler_factor=(
            None if options is None else options.straggler_factor
        ),
        schedule=None if options is None else options.schedule,
        cost_model_dir=(
            None if options is None else options.cost_model_dir
        ),
        telemetry=telemetry,
        recorder=recorder,
        resume=resume,
    )


def cached_run(
    benchmark: str,
    scheme: str,
    config: ExperimentConfig,
    use_cache: bool = True,
) -> RunResult:
    """Run (or fetch from either cache layer) one benchmark+scheme.

    Shim over :meth:`Engine.run_one`; ``use_cache=False`` bypasses both
    the in-process cache and the persistent store, in both directions.
    """
    engine = make_engine(use_cache=use_cache)
    return engine.run_one(RunSpec(benchmark, scheme, config))


def clear_cache(include_store: bool = True) -> None:
    """Invalidate cached results.

    Clears the in-process memory cache and, unless ``include_store=False``,
    also wipes the persistent on-disk store — the two layers stay
    consistent by default (stale on-disk entries cannot resurrect results
    the caller just invalidated).
    """
    clear_memory_cache()
    if include_store:
        store = get_default_store()
        if store is not None:
            store.clear()


@dataclass
class BenchmarkComparison:
    """Baseline/BBV/hotspot results for one benchmark (Figures 3–4)."""

    benchmark: str
    baseline: RunResult
    bbv: RunResult
    hotspot: RunResult

    def _per_insn(self, result: RunResult, value: float) -> float:
        return value / result.instructions if result.instructions else 0.0

    def energy_reduction(self, scheme: str, cache: str) -> float:
        """Energy-per-instruction reduction of ``scheme`` vs. baseline."""
        result = getattr(self, scheme)
        if cache == "L1D":
            adaptive = self._per_insn(result, result.l1d_energy_nj)
            base = self._per_insn(self.baseline, self.baseline.l1d_energy_nj)
        elif cache == "L2":
            adaptive = self._per_insn(result, result.l2_energy_nj)
            base = self._per_insn(self.baseline, self.baseline.l2_energy_nj)
        else:
            raise ValueError(f"unknown cache {cache!r}")
        return 1.0 - adaptive / base if base > 0 else 0.0

    def slowdown(self, scheme: str) -> float:
        """Relative CPI increase of ``scheme`` vs. baseline (Figure 4)."""
        result = getattr(self, scheme)
        adaptive_cpi = (
            result.cycles / result.instructions if result.instructions else 0
        )
        base_cpi = (
            self.baseline.cycles / self.baseline.instructions
            if self.baseline.instructions
            else 0
        )
        return adaptive_cpi / base_cpi - 1.0 if base_cpi > 0 else 0.0


@dataclass
class SuiteResults:
    """All comparisons, keyed by benchmark, plus suite averages."""

    comparisons: Dict[str, BenchmarkComparison] = field(default_factory=dict)

    def benchmarks(self) -> List[str]:
        return list(self.comparisons)

    def average_energy_reduction(self, scheme: str, cache: str) -> float:
        values = [
            c.energy_reduction(scheme, cache)
            for c in self.comparisons.values()
        ]
        return sum(values) / len(values) if values else 0.0

    def average_slowdown(self, scheme: str) -> float:
        values = [c.slowdown(scheme) for c in self.comparisons.values()]
        return sum(values) / len(values) if values else 0.0


def compare_schemes(
    benchmark: str,
    config: Optional[ExperimentConfig] = None,
    use_cache: bool = True,
    engine: Optional[Engine] = None,
) -> BenchmarkComparison:
    """Run all three schemes on one benchmark (one engine batch)."""
    config = config or ExperimentConfig()
    engine = engine or make_engine(use_cache=use_cache)
    cells = [RunSpec(benchmark, scheme, config) for scheme in SCHEMES]
    batch = engine.run(cells)
    if batch.degraded:
        # The comparison needs all three schemes; under "skip"/"partial"
        # a missing cell makes it meaningless, so refuse cleanly rather
        # than hand the caller None results.
        failed = ", ".join(
            f"{o.spec.scheme} ({o.status})" for o in batch.failures
        )
        raise BatchExecutionError(
            batch,
            f"cannot compare schemes for {benchmark!r}; "
            f"failed cell(s): {failed}",
        )
    baseline, bbv, hotspot = batch.values()
    return BenchmarkComparison(
        benchmark=benchmark,
        baseline=baseline,
        bbv=bbv,
        hotspot=hotspot,
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    use_cache: bool = True,
    jobs: int = 1,
    engine: Optional[Engine] = None,
    progress: Optional[ProgressCallback] = None,
) -> SuiteResults:
    """Run the three-scheme comparison over the whole suite (or subset).

    The full ``benchmarks × schemes`` grid is handed to the engine as one
    batch, so with ``jobs > 1`` the cells that actually need simulating
    fan out across worker processes; cached cells (memory or store) never
    re-simulate.  Output is identical for any ``jobs`` value.

    When the engine runs with a non-``"raise"`` failure policy, a
    benchmark whose three scheme cells did not *all* succeed is dropped
    from the suite (with a stderr note) rather than aborting the whole
    comparison — the degraded-batch contract of docs/INTERNALS.md §11.
    """
    config = config or ExperimentConfig()
    engine = engine or make_engine(
        jobs=jobs, use_cache=use_cache, progress=progress
    )
    names = list(names or BENCHMARK_NAMES)
    cells = [
        RunSpec(name, scheme, config)
        for name in names
        for scheme in SCHEMES
    ]
    batch = engine.run(cells)
    runs = batch.values()
    results = SuiteResults()
    for position, name in enumerate(names):
        baseline, bbv, hotspot = runs[3 * position:3 * position + 3]
        if baseline is None or bbv is None or hotspot is None:
            print(
                f"warning: dropping benchmark {name!r} from the suite "
                "(one or more scheme cells failed)",
                file=sys.stderr,
            )
            continue
        results.comparisons[name] = BenchmarkComparison(
            benchmark=name,
            baseline=baseline,
            bbv=bbv,
            hotspot=hotspot,
        )
    if names and not results.comparisons:
        # An exhibit over zero benchmarks would render all-zero averages
        # and look like a (meaningless) clean result.
        raise BatchExecutionError(
            batch,
            "no benchmark survived the suite: every requested benchmark "
            "had at least one failed scheme cell",
        )
    return results
