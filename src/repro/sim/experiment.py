"""Experiment runner: baseline vs. BBV vs. hotspot across the suite.

This is the layer the table/figure benches and the CLI drive.  Suite runs
are cached per (config fingerprint, benchmark, scheme) within the process,
because several exhibits are different projections of the same three runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunResult, run_benchmark
from repro.workloads.specjvm import BENCHMARK_NAMES, build_benchmark

_CACHE: Dict[Tuple, RunResult] = {}


def _fingerprint(config: ExperimentConfig) -> Tuple:
    machine = config.machine
    return (
        config.max_instructions,
        config.hot_threshold,
        config.seed,
        machine.params.scale,
        machine.enable_pipeline_cus,
        machine.resize_policy,
        config.tuning.objective,
        config.tuning.performance_threshold,
        config.tuning.sampling_period_invocations,
        config.tuning.retune_ipc_delta,
        config.bbv.similarity_threshold,
        config.bbv.n_buckets,
        config.bbv.stable_min_intervals,
    )


def cached_run(
    benchmark: str,
    scheme: str,
    config: ExperimentConfig,
    use_cache: bool = True,
) -> RunResult:
    """Run (or fetch from the in-process cache) one benchmark+scheme."""
    key = (benchmark, scheme, _fingerprint(config))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    result = run_benchmark(build_benchmark(benchmark), scheme, config)
    if use_cache:
        _CACHE[key] = result
    return result


def clear_cache() -> None:
    _CACHE.clear()


@dataclass
class BenchmarkComparison:
    """Baseline/BBV/hotspot results for one benchmark (Figures 3–4)."""

    benchmark: str
    baseline: RunResult
    bbv: RunResult
    hotspot: RunResult

    def _per_insn(self, result: RunResult, value: float) -> float:
        return value / result.instructions if result.instructions else 0.0

    def energy_reduction(self, scheme: str, cache: str) -> float:
        """Energy-per-instruction reduction of ``scheme`` vs. baseline."""
        result = getattr(self, scheme)
        if cache == "L1D":
            adaptive = self._per_insn(result, result.l1d_energy_nj)
            base = self._per_insn(self.baseline, self.baseline.l1d_energy_nj)
        elif cache == "L2":
            adaptive = self._per_insn(result, result.l2_energy_nj)
            base = self._per_insn(self.baseline, self.baseline.l2_energy_nj)
        else:
            raise ValueError(f"unknown cache {cache!r}")
        return 1.0 - adaptive / base if base > 0 else 0.0

    def slowdown(self, scheme: str) -> float:
        """Relative CPI increase of ``scheme`` vs. baseline (Figure 4)."""
        result = getattr(self, scheme)
        adaptive_cpi = (
            result.cycles / result.instructions if result.instructions else 0
        )
        base_cpi = (
            self.baseline.cycles / self.baseline.instructions
            if self.baseline.instructions
            else 0
        )
        return adaptive_cpi / base_cpi - 1.0 if base_cpi > 0 else 0.0


@dataclass
class SuiteResults:
    """All comparisons, keyed by benchmark, plus suite averages."""

    comparisons: Dict[str, BenchmarkComparison] = field(default_factory=dict)

    def benchmarks(self) -> List[str]:
        return list(self.comparisons)

    def average_energy_reduction(self, scheme: str, cache: str) -> float:
        values = [
            c.energy_reduction(scheme, cache)
            for c in self.comparisons.values()
        ]
        return sum(values) / len(values) if values else 0.0

    def average_slowdown(self, scheme: str) -> float:
        values = [c.slowdown(scheme) for c in self.comparisons.values()]
        return sum(values) / len(values) if values else 0.0


def compare_schemes(
    benchmark: str,
    config: Optional[ExperimentConfig] = None,
    use_cache: bool = True,
) -> BenchmarkComparison:
    """Run all three schemes on one benchmark."""
    config = config or ExperimentConfig()
    return BenchmarkComparison(
        benchmark=benchmark,
        baseline=cached_run(benchmark, "baseline", config, use_cache),
        bbv=cached_run(benchmark, "bbv", config, use_cache),
        hotspot=cached_run(benchmark, "hotspot", config, use_cache),
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    config: Optional[ExperimentConfig] = None,
    use_cache: bool = True,
) -> SuiteResults:
    """Run the three-scheme comparison over the whole suite (or subset)."""
    config = config or ExperimentConfig()
    results = SuiteResults()
    for name in names or BENCHMARK_NAMES:
        results.comparisons[name] = compare_schemes(name, config, use_cache)
    return results
