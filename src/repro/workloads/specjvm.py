"""The seven SPECjvm98 stand-in benchmarks (paper §4.3, Table 3).

Each stand-in is a synthetic program whose *structure* is calibrated to the
per-benchmark characteristics the paper publishes:

========= ==================================================================
compress  few, large, streaming hotspots; long stable phases
db        a handful of hot methods with small working sets dominate misses
          (paper §5.2.2 / [25]) — the strongest L1D saver
jack      many small hotspots (Table 4: smallest mean size, most
          invocations); pointer-heavy parsing
javac     heterogeneous hotspots, many transitional phases (Figure 1's
          worst stable coverage), GC activity
jess      rule-engine mix of working-set and chase behaviour
mpegaudio streaming decode loops, long stable phases, high L2 coverage
mtrt      dual-threaded pointer chasing over a shared scene graph
========= ==================================================================

The generators are deterministic in the spec's seed; sizes target the
*scaled* hotspot bands (DESIGN.md §2): mids land in the L1D band, drivers
in the L2 band, leaves below the managed range.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.isa.program import DataRegion, Program
from repro.workloads.patterns import (
    MixedBehavior,
    WanderingWindowBehavior,
    PointerChaseBehavior,
    StackBehavior,
    StridedBehavior,
    WorkingSetBehavior,
)
from repro.workloads.templates import (
    MethodSpec,
    TemplateLibrary,
    driver_method,
    jittered_trips,
    leaf_method,
    loop_method,
    phased_driver_method,
)

KB = 1024

#: Working-set tiers, in scaled bytes (multiply by STRUCTURE_SCALE for the
#: paper-scale equivalent).  Each tier sits comfortably (~60 %) inside one
#: cache size, so a candidate configuration either fits it (negligible
#: penalty) or clearly misses — the regime in which a 2 % performance
#: threshold is meaningful despite measurement noise.
WS_A, WS_B, WS_C, WS_D = 600, 1_200, 2_500, 5_000      # L1D: 1/2/4/8 KB
DRV_A, DRV_B, DRV_C, DRV_D = (                          # L2: 16/32/64/128 KB
    10 * KB, 20 * KB, 40 * KB, 80 * KB,
)

#: Paper Table 3 descriptions.
SPECJVM_DESCRIPTIONS: Dict[str, str] = {
    "compress": "A popular LZW compression program.",
    "db": "Data management benchmarking software written by IBM.",
    "jack": "A real parser-generator from Sun Microsystems.",
    "javac": "The JDK 1.0.2 Java compiler.",
    "jess": "A Java version of NASA's popular CLIPS rule-based expert "
            "systems.",
    "mpegaudio": "The core algorithm for software that decodes an MPEG-3 "
                 "audio stream.",
    "mtrt": "A dual-threaded program that ray traces an image file.",
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(SPECJVM_DESCRIPTIONS)

#: Short names as the paper's tables print them.
SHORT_NAMES: Dict[str, str] = {
    "compress": "comp",
    "db": "db",
    "jack": "jack",
    "javac": "javac",
    "jess": "jess",
    "mpegaudio": "mpeg",
    "mtrt": "mtrt",
}


@dataclass(frozen=True)
class BenchmarkSpec:
    """All generator knobs for one stand-in benchmark."""

    name: str
    description: str
    seed: int
    threads: int = 1
    # Drivers (L2-band hotspots).
    n_drivers: int = 4
    driver_spans: Tuple[int, ...] = (DRV_B, DRV_C)
    driver_size_range: Tuple[int, int] = (6_000, 20_000)
    mids_per_driver: Tuple[int, int] = (1, 1)
    # Mids (L1D-band hotspots).  ``mid_spans`` is (span, weight) pairs.
    n_mids: int = 10
    mid_spans: Tuple[Tuple[int, float], ...] = (
        (WS_A, 0.55),
        (WS_B, 0.30),
        (WS_C, 0.15),
    )
    mid_size_range: Tuple[int, int] = (700, 4_200)
    #: Weights of memory behaviour kinds for mids: ws / stride / chase.
    mid_kind_weights: Tuple[float, float, float] = (0.65, 0.20, 0.15)
    locality: float = 0.55
    # Leaves (unmanaged tiny hotspots).
    n_leaves: int = 8
    leaf_insns: Tuple[int, int] = (30, 110)
    leaves_per_mid: Tuple[int, int] = (0, 2)
    # Phase script.
    n_segments: int = 12
    burst_range: Tuple[int, int] = (4, 10)
    short_burst_prob: float = 0.15
    # Instruction mix.
    load_frac: float = 0.18
    store_frac: float = 0.07
    trip_jitter: float = 0.10
    # GC service.
    gc: bool = False
    gc_period: int = 400_000

    @property
    def short_name(self) -> str:
        return SHORT_NAMES.get(self.name, self.name)


@dataclass
class BuiltBenchmark:
    """A generated benchmark ready to run."""

    spec: BenchmarkSpec
    program: Program
    thread_entries: Tuple[str, ...]
    library: TemplateLibrary = field(default_factory=TemplateLibrary)

    @property
    def name(self) -> str:
        return self.spec.name


# ---------------------------------------------------------------------------
# Tuned per-benchmark specs
# ---------------------------------------------------------------------------

_SPECS: Dict[str, BenchmarkSpec] = {
    "compress": BenchmarkSpec(
        name="compress",
        description=SPECJVM_DESCRIPTIONS["compress"],
        seed=101,
        n_drivers=3,
        driver_spans=(DRV_A, DRV_B),
        driver_size_range=(7_000, 18_000),
        n_mids=7,
        mid_spans=((WS_B, 0.50), (WS_C, 0.40), (WS_D, 0.10)),
        mid_kind_weights=(0.25, 0.65, 0.10),
        locality=0.50,
        n_leaves=6,
        n_segments=8,
        burst_range=(10, 22),
        short_burst_prob=0.08,
        load_frac=0.16,
    ),
    "db": BenchmarkSpec(
        name="db",
        description=SPECJVM_DESCRIPTIONS["db"],
        seed=102,
        n_drivers=3,
        driver_spans=(DRV_A, DRV_A, DRV_B),
        driver_size_range=(6_000, 16_000),
        n_mids=8,
        mid_spans=((WS_A, 0.70), (WS_B, 0.20), (WS_C, 0.10)),
        mid_kind_weights=(0.85, 0.05, 0.10),
        locality=0.75,
        n_leaves=7,
        n_segments=10,
        burst_range=(8, 18),
        short_burst_prob=0.08,
        load_frac=0.22,
        store_frac=0.06,
    ),
    "jack": BenchmarkSpec(
        name="jack",
        description=SPECJVM_DESCRIPTIONS["jack"],
        seed=103,
        n_drivers=4,
        driver_spans=(DRV_B, DRV_C),
        driver_size_range=(5_500, 12_000),
        n_mids=16,
        mids_per_driver=(1, 2),
        mid_spans=((WS_A, 0.50), (WS_B, 0.30), (WS_C, 0.20)),
        mid_size_range=(550, 2_200),
        mid_kind_weights=(0.50, 0.20, 0.30),
        locality=0.55,
        n_leaves=14,
        n_segments=12,
        burst_range=(5, 12),
        short_burst_prob=0.18,
    ),
    "javac": BenchmarkSpec(
        name="javac",
        description=SPECJVM_DESCRIPTIONS["javac"],
        seed=104,
        n_drivers=6,
        driver_spans=(DRV_B, DRV_C, DRV_C),
        driver_size_range=(6_000, 16_000),
        n_mids=14,
        mids_per_driver=(1, 2),
        mid_spans=((WS_A, 0.25), (WS_B, 0.35), (WS_C, 0.25), (WS_D, 0.15)),
        mid_kind_weights=(0.60, 0.15, 0.25),
        locality=0.50,
        n_leaves=10,
        n_segments=16,
        burst_range=(2, 7),
        short_burst_prob=0.35,
        gc=True,
        gc_period=400_000,
    ),
    "jess": BenchmarkSpec(
        name="jess",
        description=SPECJVM_DESCRIPTIONS["jess"],
        seed=105,
        n_drivers=5,
        driver_spans=(DRV_A, DRV_C),
        driver_size_range=(6_000, 18_000),
        n_mids=12,
        mid_spans=((WS_A, 0.45), (WS_B, 0.35), (WS_C, 0.20)),
        mid_kind_weights=(0.65, 0.15, 0.20),
        n_leaves=9,
        n_segments=12,
        burst_range=(4, 11),
        short_burst_prob=0.20,
    ),
    "mpegaudio": BenchmarkSpec(
        name="mpegaudio",
        description=SPECJVM_DESCRIPTIONS["mpegaudio"],
        seed=106,
        n_drivers=4,
        driver_spans=(DRV_A, DRV_B),
        driver_size_range=(7_000, 20_000),
        n_mids=9,
        mid_spans=((WS_B, 0.60), (WS_C, 0.30), (WS_D, 0.10)),
        mid_kind_weights=(0.30, 0.60, 0.10),
        locality=0.50,
        n_leaves=7,
        n_segments=9,
        burst_range=(9, 20),
        short_burst_prob=0.05,
        load_frac=0.14,
        store_frac=0.05,
    ),
    "mtrt": BenchmarkSpec(
        name="mtrt",
        description=SPECJVM_DESCRIPTIONS["mtrt"],
        seed=107,
        threads=2,
        n_drivers=4,
        driver_spans=(DRV_B, DRV_C),
        driver_size_range=(6_000, 16_000),
        n_mids=10,
        mid_spans=((WS_A, 0.25), (WS_B, 0.45), (WS_C, 0.20), (WS_D, 0.10)),
        mid_kind_weights=(0.35, 0.15, 0.50),
        locality=0.50,
        n_leaves=8,
        n_segments=10,
        burst_range=(5, 12),
        short_burst_prob=0.15,
    ),
}


def benchmark_spec(name: str) -> BenchmarkSpec:
    """The tuned spec of one stand-in (KeyError with guidance otherwise)."""
    try:
        return _SPECS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(_SPECS)}"
        ) from None


def benchmark_names() -> Tuple[str, ...]:
    """All stand-in benchmark names, sorted (the full-suite iteration
    order used by sweeps, the equivalence grid, and the bench tool)."""
    return tuple(sorted(_SPECS))


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


def _weighted_choice(rng: random.Random, pairs: Sequence[Tuple[object, float]]):
    total = sum(w for _, w in pairs)
    x = rng.random() * total
    for value, weight in pairs:
        x -= weight
        if x <= 0:
            return value
    return pairs[-1][0]


class _Allocator:
    """Hands out non-overlapping data regions, 64 KB-aligned."""

    def __init__(self, base: int = 0x1000_0000):
        self._cursor = base

    def region(self, span: int) -> DataRegion:
        base = self._cursor
        self._cursor += (span + 0xFFFF) & ~0xFFFF
        return DataRegion(base, span)


def _mid_memory(kind: str, span: int, locality: float):
    if kind == "ws":
        return WorkingSetBehavior(span, locality=locality)
    if kind == "stride":
        return StridedBehavior(span, stride=64)
    if kind == "chase":
        return PointerChaseBehavior(span)
    raise ValueError(f"unknown memory kind {kind!r}")


def build_benchmark(
    spec_or_name: Union[str, BenchmarkSpec],
    seed_override: Optional[int] = None,
    size_scale: float = 1.0,
) -> BuiltBenchmark:
    """Generate one stand-in benchmark program.

    ``size_scale`` multiplies the hotspot size targets (mid/driver
    dynamic sizes and the GC period).  It exists for scale-validity
    studies: when the machine's interval scale is changed from the
    calibrated 1/100, the workload's hotspot sizes must track the shifted
    CU bands (paper §3.2.1 ties hotspot sizes to reconfiguration
    intervals, so the two scale together by construction).
    """
    spec = (
        benchmark_spec(spec_or_name)
        if isinstance(spec_or_name, str)
        else spec_or_name
    )
    if size_scale <= 0:
        raise ValueError(f"size_scale must be positive: {size_scale}")
    if size_scale != 1.0:
        from dataclasses import replace as _replace

        def scaled(pair):
            return (
                max(2, int(pair[0] * size_scale)),
                max(4, int(pair[1] * size_scale)),
            )

        spec = _replace(
            spec,
            mid_size_range=scaled(spec.mid_size_range),
            driver_size_range=scaled(spec.driver_size_range),
            gc_period=max(1, int(spec.gc_period * size_scale)),
        )
    rng = random.Random(
        spec.seed if seed_override is None else seed_override
    )
    lib = TemplateLibrary()
    alloc = _Allocator()

    # -- leaves ---------------------------------------------------------
    leaf_names: List[str] = []
    leaf_sizes: Dict[str, int] = {}
    for i in range(spec.n_leaves):
        name = f"leaf{i}"
        insns = rng.randint(*spec.leaf_insns)
        loads = max(1, round(insns * spec.load_frac * 0.6))
        stores = max(0, round(insns * spec.store_frac * 0.6))
        method = leaf_method(
            name, insns, memory=StackBehavior(span=192),
            loads=loads, stores=stores,
        )
        lib.add(method, MethodSpec(name, "leaf", target_size=insns))
        leaf_names.append(name)
        leaf_sizes[name] = insns

    # -- mids (L1D-band hotspots) -----------------------------------------
    kind_pairs = list(
        zip(("ws", "stride", "chase"), spec.mid_kind_weights)
    )
    mid_names: List[str] = []
    mid_sizes: Dict[str, int] = {}
    for j in range(spec.n_mids):
        name = f"mid{j}"
        span = _weighted_choice(rng, list(spec.mid_spans))
        kind = _weighted_choice(rng, kind_pairs)
        body = rng.randint(28, 56)
        loads = max(1, round(body * spec.load_frac))
        stores = max(1, round(body * spec.store_frac))
        n_callees = rng.randint(*spec.leaves_per_mid)
        callees = rng.sample(leaf_names, k=min(n_callees, len(leaf_names)))
        per_iter = body + sum(leaf_sizes[c] for c in callees) + 4
        entry_insns = rng.randint(4, 10)
        target = rng.randint(*spec.mid_size_range)
        trips_mean = max(2, round((target - entry_insns) / per_iter))
        method = loop_method(
            name,
            trips=jittered_trips(trips_mean, spec.trip_jitter),
            body_insns=body,
            loads=loads,
            stores=stores,
            memory=_mid_memory(kind, span, spec.locality),
            callees=callees,
            entry_insns=entry_insns,
            region=alloc.region(span),
            attributes={"kind": kind, "tier": "mid"},
        )
        actual = entry_insns + trips_mean * per_iter
        lib.add(
            method,
            MethodSpec(
                name, "mid", target_size=actual,
                trips_mean=trips_mean, span=span, callees=tuple(callees),
            ),
        )
        mid_names.append(name)
        mid_sizes[name] = actual

    # -- drivers (L2-band hotspots) -------------------------------------------
    # Mids are dealt to drivers round-robin from a shuffled rotation so
    # every generated mid is actually reachable (and can become a hotspot).
    rotation = list(mid_names)
    rng.shuffle(rotation)
    rotation_ptr = 0
    driver_names: List[str] = []
    for d in range(spec.n_drivers):
        name = f"driver{d}"
        span = rng.choice(spec.driver_spans)
        body = rng.randint(30, 60)
        loads = max(2, round(body * spec.load_frac))
        stores = max(1, round(body * spec.store_frac))
        k = min(rng.randint(*spec.mids_per_driver), len(rotation))
        driver_mids = [
            rotation[(rotation_ptr + i) % len(rotation)] for i in range(k)
        ]
        rotation_ptr += k
        # One mid runs per iteration; size the loop on the average mid.
        avg_mid = sum(mid_sizes[m] for m in driver_mids) / len(driver_mids)
        per_iter = body + avg_mid + 8
        target = rng.randint(*spec.driver_size_range)
        trips_mean = max(4, round(target / per_iter))
        # Driver-tier code is loop control over large data.  Its memory is
        # built so the L1D configuration the nested mids choose is
        # automatically right for the enclosing driver (the nesting
        # assumption of CU decoupling, §3.2.1), while the driver's span
        # still expresses a graded L2 appetite:
        #   * frame locals (hit everywhere);
        #   * a wrap-around stream over a window that exceeds every L1D
        #     size but fits every L2 size — 0 % L1D hits at *any* L1D
        #     setting, 100 % L2 hits at any L2 setting: pure constant cost;
        #   * sparse uniform traffic over the full span — this is what an
        #     under-sized L2 degrades, proportionally to the shortfall.
        # The streaming component walks sequentially through a region far
        # larger than the biggest L2, so its misses are compulsory at
        # *every* L1D and L2 setting — pure input streaming, the dominant
        # memory behaviour of s100 runs whose data dwarfs a 1 MB L2.  It
        # costs baseline and adaptive configurations identically.
        stream_region = 4 * 128 * KB
        # The L2-appetite component is the wandering window: resident on
        # the scale of one phase (so an adequate L2 earns its keep) but
        # drifted on by the next recurrence (so not even the maximum L2
        # retains it — the baseline cold-misses at phase boundaries too).
        region_span = span * 6
        # Layout within the driver's region: [window backing | stream].
        driver_memory = MixedBehavior(
            [
                (StackBehavior(span=256), 0.35),
                (
                    StridedBehavior(
                        stream_region, stride=32, offset=region_span
                    ),
                    0.40,
                ),
                (
                    WanderingWindowBehavior(
                        span, region_span, drift=max(64, span // 100)
                    ),
                    0.25,
                ),
            ]
        )
        method = driver_method(
            name,
            trips=jittered_trips(trips_mean, spec.trip_jitter),
            body_insns=body,
            loads=loads,
            stores=stores,
            memory=driver_memory,
            mids=driver_mids,
            alternation_period=rng.randint(30, 60),
            entry_insns=rng.randint(6, 12),
            region=alloc.region(region_span + stream_region),
            attributes={"tier": "driver"},
        )
        actual = int(trips_mean * per_iter)
        lib.add(
            method,
            MethodSpec(
                name, "driver", target_size=actual,
                trips_mean=trips_mean, span=span,
                callees=tuple(driver_mids),
            ),
        )
        driver_names.append(name)

    # -- GC service -------------------------------------------------------------
    methods = list(lib.methods)
    if spec.gc:
        gc_span = 64 * KB
        gc = loop_method(
            "gc_sweep",
            trips=60,
            body_insns=40,
            loads=4,
            stores=5,
            memory=StridedBehavior(gc_span, stride=512),
            entry_insns=8,
            region=alloc.region(gc_span),
            attributes={"tier": "gc"},
        )
        lib.add(gc, MethodSpec("gc_sweep", "gc", span=gc_span))
        methods.append(gc)

    # -- phase scripts / entry methods --------------------------------------------
    def make_script() -> List[Tuple[str, int]]:
        script = []
        for _ in range(spec.n_segments):
            driver = rng.choice(driver_names)
            if rng.random() < spec.short_burst_prob:
                repeat = rng.randint(1, 2)
            else:
                repeat = rng.randint(*spec.burst_range)
            script.append((driver, repeat))
        return script

    entries: List[str] = []
    if spec.threads == 1:
        main = phased_driver_method("main", make_script())
        lib.add(main, MethodSpec("main", "main"))
        methods.append(main)
        entries.append("main")
    else:
        for t in range(spec.threads):
            name = f"worker{t}"
            worker = phased_driver_method(name, make_script())
            lib.add(worker, MethodSpec(name, "main"))
            methods.append(worker)
            entries.append(name)

    program = Program(methods, entries[0]).validated()
    return BuiltBenchmark(
        spec=spec,
        program=program,
        thread_entries=tuple(entries),
        library=lib,
    )


def build_suite(
    names: Optional[Sequence[str]] = None,
) -> List[BuiltBenchmark]:
    """Generate all (or the named subset of) stand-in benchmarks."""
    return [build_benchmark(n) for n in (names or BENCHMARK_NAMES)]
