"""Random program generation for property-based tests.

Produces small, always-valid programs with bounded runtime: acyclic call
graphs, loop trip counts capped, and every block able to reach a return.
Hypothesis drives the seed; all structure derives deterministically from
it.
"""

from __future__ import annotations

import random
from typing import List

from repro.isa.builder import ProgramBuilder
from repro.isa.program import Program, RandomDecider
from repro.workloads.patterns import (
    StackBehavior,
    StridedBehavior,
    WorkingSetBehavior,
)

KB = 1024


def random_program(
    seed: int,
    max_methods: int = 6,
    max_blocks: int = 5,
    max_trips: int = 12,
    with_memory: bool = True,
) -> Program:
    """A random but well-formed, terminating program.

    Methods are generated in call-graph topological order: method ``i`` may
    only call methods ``j > i``, so recursion is impossible by
    construction.  Every method is a chain of blocks with optional
    self-loops and diamond branches, ending in a return.
    """
    rng = random.Random(seed)
    n_methods = rng.randint(1, max_methods)
    builder = ProgramBuilder(entry="m0")

    for i in range(n_methods):
        mb = builder.method(f"m{i}")
        if with_memory and rng.random() < 0.7:
            span = rng.choice([2 * KB, 8 * KB, 32 * KB])
            mb.region(0x2000_0000 + i * 0x10_0000, span)
        n_blocks = rng.randint(1, max_blocks)
        callable_methods = [f"m{j}" for j in range(i + 1, n_methods)]
        for b in range(n_blocks):
            bid = f"b{b}"
            last = b == n_blocks - 1
            insns = rng.randint(4, 40)
            loads = rng.randint(0, max(0, insns // 5))
            stores = rng.randint(0, max(0, insns // 8))
            memory = None
            if with_memory and (loads or stores):
                memory = rng.choice(
                    [
                        StackBehavior(span=128),
                        WorkingSetBehavior(4 * KB, locality=0.5),
                        StridedBehavior(8 * KB, stride=64),
                    ]
                )
            calls: List[str] = []
            if callable_methods and rng.random() < 0.4:
                calls.append(rng.choice(callable_methods))
            if last:
                mb.ret(bid, insns, loads=loads, stores=stores,
                       memory=memory, calls=calls)
            elif rng.random() < 0.4:
                mb.loop(
                    bid, insns, rng.randint(1, max_trips), f"b{b + 1}",
                    loads=loads, stores=stores, memory=memory, calls=calls,
                )
            elif rng.random() < 0.3 and b + 2 <= n_blocks - 1:
                # Forward diamond: both arms move strictly forward.
                mb.branch(
                    bid, insns, RandomDecider(rng.random()),
                    taken=f"b{b + 2}", fallthrough=f"b{b + 1}",
                    loads=loads, stores=stores, memory=memory, calls=calls,
                )
            else:
                mb.straight(
                    bid, insns, f"b{b + 1}",
                    loads=loads, stores=stores, memory=memory, calls=calls,
                )
        mb.done()
    return builder.build()
