"""Method templates used by the benchmark generators.

Three shapes cover the paper's hotspot taxonomy:

* *leaf* methods — tiny straight-line/short-loop procedures (below the L1D
  hotspot band; they become hotspots but stay unmanaged);
* *loop* methods — an entry block, a loop block with memory behaviour and
  optional callees, and an exit; trip counts are jittered per invocation,
  which is what gives hotspots their per-invocation IPC variation
  (Table 5's per-hotspot CoV);
* *phased drivers* — a main method executing a "phase script": a chain of
  segments, each invoking one driver method ``repeat`` times, the whole
  chain wrapped in an outer loop so the script (and hence every phase)
  recurs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.isa.builder import MethodBuilder
from repro.isa.program import DataRegion, MemoryBehavior, Method


@dataclass
class MethodSpec:
    """Record of a generated method's intent (tests and docs introspect it)."""

    name: str
    kind: str  # "leaf" | "mid" | "driver" | "main" | "gc"
    target_size: int = 0
    trips_mean: int = 0
    span: int = 0
    callees: Tuple[str, ...] = ()


class TemplateLibrary:
    """Accumulates generated methods + their specs for one benchmark."""

    def __init__(self) -> None:
        self.methods: List[Method] = []
        self.specs: List[MethodSpec] = []

    def add(self, method: Method, spec: MethodSpec) -> None:
        self.methods.append(method)
        self.specs.append(spec)

    def spec_of(self, name: str) -> MethodSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)


def jittered_trips(mean: int, jitter: float = 0.10) -> Callable:
    """Trip-count source: gaussian around ``mean`` with relative ``jitter``.

    Returns a callable suitable for :class:`~repro.isa.program.LoopDecider`.
    """
    if mean < 1:
        raise ValueError(f"mean trips must be >= 1, got {mean}")
    if jitter <= 0:
        return lambda rng: mean
    sigma = max(0.5, mean * jitter)

    def draw(rng) -> int:
        return max(1, int(round(rng.gauss(mean, sigma))))

    return draw


def leaf_method(
    name: str,
    insns: int,
    memory: Optional[MemoryBehavior] = None,
    loads: int = 0,
    stores: int = 0,
) -> Method:
    """A small straight-line method."""
    builder = MethodBuilder(name)
    builder.straight(
        "b0",
        max(2, insns - 1),
        "x",
        loads=loads,
        stores=stores,
        memory=memory,
    )
    builder.ret("x", 1)
    return builder.build()


def loop_method(
    name: str,
    *,
    trips,
    body_insns: int,
    loads: int,
    stores: int,
    memory: Optional[MemoryBehavior],
    callees: Sequence[str] = (),
    entry_insns: int = 6,
    exit_insns: int = 2,
    region: Optional[DataRegion] = None,
    attributes: Optional[dict] = None,
) -> Method:
    """Entry -> loop(body + callees) x trips -> exit."""
    builder = MethodBuilder(name)
    if region is not None:
        builder.region(region.base, region.size)
    for key, value in (attributes or {}).items():
        builder.attribute(key, value)
    builder.straight("e", entry_insns, "loop")
    builder.loop(
        "loop",
        body_insns,
        trips,
        "x",
        loads=loads,
        stores=stores,
        memory=memory,
        calls=list(callees),
    )
    builder.ret("x", exit_insns)
    return builder.build()


def driver_method(
    name: str,
    *,
    trips,
    body_insns: int,
    loads: int,
    stores: int,
    memory: Optional[MemoryBehavior],
    mids: Sequence[str],
    alternation_period: int = 10,
    entry_insns: int = 8,
    exit_insns: int = 2,
    region: Optional[DataRegion] = None,
    attributes: Optional[dict] = None,
) -> Method:
    """An L2-band driver that calls its mids in *runs*, not round-robin.

    Each loop iteration runs the header (the driver's own memory work),
    then a selection chain of alternating branches routes to one call
    block.  ``alternation_period`` controls run length: the same mid is
    invoked that many times in a row before control shifts to the next —
    this is the sub-phase structure that makes consecutive L1D hotspot
    invocations usually agree on a configuration (as the paper's
    phase-structured workloads do), instead of thrashing the L1D between
    two bests on every iteration.
    """
    if not mids:
        raise ValueError(f"driver {name!r} needs at least one mid")
    builder = MethodBuilder(name)
    if region is not None:
        builder.region(region.base, region.size)
    for key, value in (attributes or {}).items():
        builder.attribute(key, value)
    builder.straight("e", entry_insns, "h")
    k = len(mids)
    first = "c0" if k == 1 else "s0"
    builder.loop(
        "h", body_insns, trips, "x",
        loads=loads, stores=stores, memory=memory, body_bid=first,
    )
    from repro.isa.program import PersistentAlternatingDecider

    for i in range(k - 1):
        target_fall = f"s{i + 1}" if i + 1 < k - 1 else f"c{k - 1}"
        builder.branch(
            f"s{i}",
            2,
            # Persistent: the run position survives across invocations, so
            # short driver loops still rotate through every mid.
            PersistentAlternatingDecider(alternation_period * (i + 1)),
            taken=f"c{i}",
            fallthrough=target_fall,
        )
    for i in range(k):
        builder.straight(f"c{i}", 4, "h", calls=[mids[i]])
    builder.ret("x", exit_insns)
    return builder.build()


def phased_driver_method(
    name: str,
    script: Sequence[Tuple[str, int]],
    outer_trips: int = 1_000_000,
    segment_insns: int = 3,
) -> Method:
    """The main method: run the phase script ``outer_trips`` times.

    ``script`` is a list of ``(callee, repeat)`` segments.  Each segment is
    a self-looping block invoking its callee once per iteration; the final
    segment chains into a wrap block whose back edge restarts the script.
    """
    if not script:
        raise ValueError("phase script must be non-empty")
    builder = MethodBuilder(name)
    for i, (callee, repeat) in enumerate(script):
        if repeat < 1:
            raise ValueError(
                f"segment {i}: repeat must be >= 1, got {repeat}"
            )
        next_bid = f"seg{i + 1}" if i + 1 < len(script) else "wrap"
        builder.loop(
            f"seg{i}",
            segment_insns,
            repeat,
            next_bid,
            calls=[callee],
        )
    builder.loop("wrap", 2, outer_trips, "end", body_bid="seg0")
    builder.ret("end", 1)
    return builder.build()
