"""Memory-access behaviour generators.

Each behaviour implements :class:`repro.isa.program.MemoryBehavior` and
produces the data addresses one block execution touches.  The behaviours are
the knob that determines how a method responds to cache downsizing:

* :class:`StackBehavior` — frame-local accesses; hits in any L1D size.
* :class:`StridedBehavior` — streaming walk; miss rate set by
  ``stride / line_size`` and nearly independent of cache size (compress,
  mpegaudio inner loops).
* :class:`WorkingSetBehavior` — uniform reuse inside a span; hits as long as
  the span fits the cache, so the span *is* the method's cache appetite
  (db's handful of hot methods, javac's symbol tables).
* :class:`PointerChaseBehavior` — like a working set but flagged as
  dependence-serialised, which the timing model charges extra latency for
  (mtrt's scene-graph traversal).
* :class:`MixedBehavior` — weighted combination.

All behaviours are deterministic functions of the activation RNG, the frame
base, the method's region base, and the per-block iteration counter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.isa.program import MemoryBehavior

#: Alignment applied to generated addresses (word accesses).
WORD = 4


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def _u4(span: int) -> Tuple[int, int]:
    """Parameters of the ``randrange(0, span, WORD)`` draw.

    Returns ``(n, k)`` such that the draw equals ``WORD * r`` where ``r``
    is produced by CPython's ``_randbelow`` rejection loop: ``r =
    getrandbits(k)`` redrawn while ``r >= n``.  The ``compile_fast``
    generators below inline that loop, so they consume *exactly* the same
    underlying ``getrandbits`` sequence as the readable ``generate``
    paths — the property the kernel-equivalence harness depends on.  (The
    rejection loop has been CPython's ``Random._randbelow`` for every
    supported version; the differential tests would catch a change.)
    """
    n = (span + WORD - 1) // WORD
    return n, n.bit_length()


class StackBehavior(MemoryBehavior):
    """Accesses within the activation's stack frame.

    ``span`` bytes starting at the frame base are touched with uniform
    reuse; frames are small (default 256 B), so these accesses hit in every
    L1D configuration — they model locals/spills.
    """

    uses_iteration = False

    def __init__(self, span: int = 256):
        _require_positive("span", span)
        self.span = span

    @classmethod
    def from_kwargs(cls, span: int = 256) -> "StackBehavior":
        return cls(span=int(span))

    def generate(self, rng, frame_base, region_base, iteration, n_loads, n_stores):
        span = self.span
        randrange = rng.randrange
        loads = [
            frame_base + randrange(0, span, WORD) for _ in range(n_loads)
        ]
        stores = [
            frame_base + randrange(0, span, WORD) for _ in range(n_stores)
        ]
        return loads, stores

    def compile_fast(self, n_loads: int, n_stores: int):
        n, k = _u4(self.span)
        load_iter = range(n_loads)
        store_iter = range(n_stores)

        def fast(rng, frame_base, region_base, iteration):
            getrandbits = rng.getrandbits
            loads: List[int] = []
            append = loads.append
            for _ in load_iter:
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(frame_base + r * WORD)
            stores: List[int] = []
            append = stores.append
            for _ in store_iter:
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(frame_base + r * WORD)
            return loads, stores

        return fast

    def turbo_columns(self, n_loads: int, n_stores: int):
        n = (self.span + WORD - 1) // WORD
        return (("unif", "frame", 0, n),) * (n_loads + n_stores)

    def footprint(self) -> Optional[int]:
        return self.span

    def __repr__(self) -> str:
        return f"StackBehavior(span={self.span})"


class StridedBehavior(MemoryBehavior):
    """Streaming walk through ``span`` bytes at a fixed stride.

    The walk position advances with the block's iteration counter and wraps
    at the span, so long loops sweep the span repeatedly.  With
    ``stride >= line_size`` every access is a (compulsory/capacity) miss
    regardless of cache size; with small strides the pattern is spatially
    local.  ``offset`` displaces the walk inside the method's region.
    """

    def __init__(self, span: int, stride: int = WORD, offset: int = 0):
        _require_positive("span", span)
        _require_positive("stride", stride)
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.span = span
        self.stride = stride
        self.offset = offset

    @classmethod
    def from_kwargs(
        cls, span: int, stride: int = WORD, offset: int = 0
    ) -> "StridedBehavior":
        return cls(span=int(span), stride=int(stride), offset=int(offset))

    def generate(self, rng, frame_base, region_base, iteration, n_loads, n_stores):
        base = region_base + self.offset
        span = self.span
        stride = self.stride
        refs = n_loads + n_stores
        start = iteration * refs * stride
        addrs = [
            base + ((start + i * stride) % span) for i in range(refs)
        ]
        return addrs[:n_loads], addrs[n_loads:]

    def compile_fast(self, n_loads: int, n_stores: int):
        span = self.span
        stride = self.stride
        offset = self.offset
        refs = n_loads + n_stores
        load_iter = range(n_loads)
        store_iter = range(n_loads, refs)

        def fast(rng, frame_base, region_base, iteration):
            base = region_base + offset
            start = iteration * refs * stride
            loads = [
                base + ((start + i * stride) % span) for i in load_iter
            ]
            stores = [
                base + ((start + i * stride) % span) for i in store_iter
            ]
            return loads, stores

        return fast

    def turbo_columns(self, n_loads: int, n_stores: int):
        refs = n_loads + n_stores
        coef = refs * self.stride
        return tuple(
            ("det", "region", self.offset, coef, i * self.stride, self.span)
            for i in range(refs)
        )

    def footprint(self) -> Optional[int]:
        return self.span

    def __repr__(self) -> str:
        return (
            f"StridedBehavior(span={self.span}, stride={self.stride}, "
            f"offset={self.offset})"
        )


class WorkingSetBehavior(MemoryBehavior):
    """Uniform random reuse inside a span of the method's region.

    ``locality`` fraction of references go to a hot eighth of the span
    (temporal locality); the remainder spread over the whole span.  The span
    determines which cache sizes the method is happy with.
    """

    uses_iteration = False

    def __init__(self, span: int, locality: float = 0.5, offset: int = 0):
        _require_positive("span", span)
        if not 0.0 <= locality <= 1.0:
            raise ValueError(f"locality must be in [0, 1], got {locality}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.span = span
        self.locality = locality
        self.offset = offset
        self._hot_span = max(WORD, span // 8)

    @classmethod
    def from_kwargs(
        cls, span: int, locality: float = 0.5, offset: int = 0
    ) -> "WorkingSetBehavior":
        return cls(span=int(span), locality=float(locality), offset=int(offset))

    def _addresses(self, rng, base: int, count: int) -> List[int]:
        span = self.span
        hot = self._hot_span
        locality = self.locality
        random = rng.random
        randrange = rng.randrange
        out = []
        for _ in range(count):
            if random() < locality:
                out.append(base + randrange(0, hot, WORD))
            else:
                out.append(base + randrange(0, span, WORD))
        return out

    def generate(self, rng, frame_base, region_base, iteration, n_loads, n_stores):
        base = region_base + self.offset
        return (
            self._addresses(rng, base, n_loads),
            self._addresses(rng, base, n_stores),
        )

    def compile_fast(self, n_loads: int, n_stores: int):
        locality = self.locality
        offset = self.offset
        n_hot, k_hot = _u4(self._hot_span)
        n_span, k_span = _u4(self.span)
        load_iter = range(n_loads)
        store_iter = range(n_stores)

        def fast(rng, frame_base, region_base, iteration):
            base = region_base + offset
            random = rng.random
            getrandbits = rng.getrandbits
            loads: List[int] = []
            append = loads.append
            for _ in load_iter:
                if random() < locality:
                    r = getrandbits(k_hot)
                    while r >= n_hot:
                        r = getrandbits(k_hot)
                else:
                    r = getrandbits(k_span)
                    while r >= n_span:
                        r = getrandbits(k_span)
                append(base + r * WORD)
            stores: List[int] = []
            append = stores.append
            for _ in store_iter:
                if random() < locality:
                    r = getrandbits(k_hot)
                    while r >= n_hot:
                        r = getrandbits(k_hot)
                else:
                    r = getrandbits(k_span)
                    while r >= n_span:
                        r = getrandbits(k_span)
                append(base + r * WORD)
            return loads, stores

        return fast

    def turbo_columns(self, n_loads: int, n_stores: int):
        n_hot = (self._hot_span + WORD - 1) // WORD
        n_span = (self.span + WORD - 1) // WORD
        col = ("mix", "region", self.offset, self.locality, n_hot, n_span)
        return (col,) * (n_loads + n_stores)

    def footprint(self) -> Optional[int]:
        return self.span

    def __repr__(self) -> str:
        return (
            f"WorkingSetBehavior(span={self.span}, locality={self.locality}, "
            f"offset={self.offset})"
        )


class WanderingWindowBehavior(MemoryBehavior):
    """Uniform references inside a window that drifts through a larger
    backing region.

    The *window* size is the behaviour's live working set (what a cache
    must hold); the *region* is the total data touched over time.  Because
    the window moves, no cache retains the data indefinitely — the
    behaviour of a workload whose input is much larger than any cache
    (SPECjvm98's s100 heaps vastly exceed 1 MB), which is what keeps a
    statically-maximal cache from being an unrealistically perfect
    baseline.
    """

    def __init__(self, window: int, region_span: int, drift: int = 128):
        _require_positive("window", window)
        _require_positive("region_span", region_span)
        _require_positive("drift", drift)
        if region_span < window:
            raise ValueError(
                f"region_span ({region_span}) must be >= window ({window})"
            )
        self.window = window
        self.region_span = region_span
        self.drift = drift

    @classmethod
    def from_kwargs(
        cls, window: int, region_span: int, drift: int = 128
    ) -> "WanderingWindowBehavior":
        return cls(
            window=int(window),
            region_span=int(region_span),
            drift=int(drift),
        )

    def generate(self, rng, frame_base, region_base, iteration, n_loads, n_stores):
        position = (iteration * self.drift) % self.region_span
        window = self.window
        span = self.region_span
        randrange = rng.randrange
        base = region_base

        def address() -> int:
            offset = position + randrange(0, window, WORD)
            return base + offset % span

        loads = [address() for _ in range(n_loads)]
        stores = [address() for _ in range(n_stores)]
        return loads, stores

    def compile_fast(self, n_loads: int, n_stores: int):
        drift = self.drift
        span = self.region_span
        n, k = _u4(self.window)
        load_iter = range(n_loads)
        store_iter = range(n_stores)

        def fast(rng, frame_base, region_base, iteration):
            position = (iteration * drift) % span
            getrandbits = rng.getrandbits
            loads: List[int] = []
            append = loads.append
            for _ in load_iter:
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(region_base + (position + r * WORD) % span)
            stores: List[int] = []
            append = stores.append
            for _ in store_iter:
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(region_base + (position + r * WORD) % span)
            return loads, stores

        return fast

    def turbo_columns(self, n_loads: int, n_stores: int):
        n = (self.window + WORD - 1) // WORD
        col = ("wind", "region", 0, n, self.drift, self.region_span)
        return (col,) * (n_loads + n_stores)

    def footprint(self) -> Optional[int]:
        return self.window

    def __repr__(self) -> str:
        return (
            f"WanderingWindowBehavior(window={self.window}, "
            f"region={self.region_span}, drift={self.drift})"
        )


class PointerChaseBehavior(MemoryBehavior):
    """Dependence-serialised random traversal of a span.

    Address-wise identical to a working set with no hot subset, but marked
    ``serialized`` so the timing model cannot overlap its misses (models
    linked-structure walks: mtrt's scene graph, jack's parse trees).
    """

    serialized = True
    uses_iteration = False

    def __init__(self, span: int, offset: int = 0):
        _require_positive("span", span)
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.span = span
        self.offset = offset

    @classmethod
    def from_kwargs(cls, span: int, offset: int = 0) -> "PointerChaseBehavior":
        return cls(span=int(span), offset=int(offset))

    def generate(self, rng, frame_base, region_base, iteration, n_loads, n_stores):
        base = region_base + self.offset
        span = self.span
        randrange = rng.randrange
        loads = [base + randrange(0, span, WORD) for _ in range(n_loads)]
        stores = [base + randrange(0, span, WORD) for _ in range(n_stores)]
        return loads, stores

    def compile_fast(self, n_loads: int, n_stores: int):
        offset = self.offset
        n, k = _u4(self.span)
        load_iter = range(n_loads)
        store_iter = range(n_stores)

        def fast(rng, frame_base, region_base, iteration):
            base = region_base + offset
            getrandbits = rng.getrandbits
            loads: List[int] = []
            append = loads.append
            for _ in load_iter:
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(base + r * WORD)
            stores: List[int] = []
            append = stores.append
            for _ in store_iter:
                r = getrandbits(k)
                while r >= n:
                    r = getrandbits(k)
                append(base + r * WORD)
            return loads, stores

        return fast

    def turbo_columns(self, n_loads: int, n_stores: int):
        n = (self.span + WORD - 1) // WORD
        return (("unif", "region", self.offset, n),) * (n_loads + n_stores)

    def footprint(self) -> Optional[int]:
        return self.span

    def __repr__(self) -> str:
        return f"PointerChaseBehavior(span={self.span}, offset={self.offset})"


class MixedBehavior(MemoryBehavior):
    """Weighted combination of component behaviours.

    References are apportioned to components by weight (largest remainder,
    so counts always add up); each component generates its share.
    """

    def __init__(
        self,
        components: Sequence[Tuple[MemoryBehavior, float]],
    ):
        if not components:
            raise ValueError("MixedBehavior needs at least one component")
        total = sum(w for _, w in components)
        if total <= 0:
            raise ValueError("component weights must sum to a positive value")
        self.components = [(b, w / total) for b, w in components]
        self.uses_iteration = any(
            b.uses_iteration for b, _ in self.components
        )

    @classmethod
    def from_kwargs(
        cls,
        stack: float = 0.0,
        ws_span: int = 0,
        ws_weight: float = 0.0,
        stride_span: int = 0,
        stride_weight: float = 0.0,
        stride: int = 64,
        locality: float = 0.5,
    ) -> "MixedBehavior":
        """Assembler-friendly constructor from flat keyword arguments."""
        parts: List[Tuple[MemoryBehavior, float]] = []
        if stack > 0:
            parts.append((StackBehavior(), float(stack)))
        if ws_weight > 0:
            parts.append(
                (
                    WorkingSetBehavior(int(ws_span), locality=float(locality)),
                    float(ws_weight),
                )
            )
        if stride_weight > 0:
            parts.append(
                (
                    StridedBehavior(int(stride_span), stride=int(stride)),
                    float(stride_weight),
                )
            )
        return cls(parts)

    @staticmethod
    def _apportion(count: int, weights: List[float]) -> List[int]:
        raw = [w * count for w in weights]
        floors = [int(x) for x in raw]
        remainder = count - sum(floors)
        order = sorted(
            range(len(raw)), key=lambda i: raw[i] - floors[i], reverse=True
        )
        for i in order[:remainder]:
            floors[i] += 1
        return floors

    def generate(self, rng, frame_base, region_base, iteration, n_loads, n_stores):
        weights = [w for _, w in self.components]
        load_shares = self._apportion(n_loads, weights)
        store_shares = self._apportion(n_stores, weights)
        loads: List[int] = []
        stores: List[int] = []
        for (behavior, _), nl, ns in zip(
            self.components, load_shares, store_shares
        ):
            sub_loads, sub_stores = behavior.generate(
                rng, frame_base, region_base, iteration, nl, ns
            )
            loads.extend(sub_loads)
            stores.extend(sub_stores)
        return loads, stores

    def compile_fast(self, n_loads: int, n_stores: int):
        weights = [w for _, w in self.components]
        load_shares = self._apportion(n_loads, weights)
        store_shares = self._apportion(n_stores, weights)
        subs = []
        for (behavior, _), nl, ns in zip(
            self.components, load_shares, store_shares
        ):
            sub = behavior.compile_fast(nl, ns)
            if sub is None:
                def sub(rng, fb, rb, it, _b=behavior, _nl=nl, _ns=ns):
                    return _b.generate(rng, fb, rb, it, _nl, _ns)
            subs.append(sub)

        def fast(rng, frame_base, region_base, iteration):
            loads: List[int] = []
            stores: List[int] = []
            for sub in subs:
                sub_loads, sub_stores = sub(
                    rng, frame_base, region_base, iteration
                )
                loads.extend(sub_loads)
                stores.extend(sub_stores)
            return loads, stores

        return fast

    def turbo_columns(self, n_loads: int, n_stores: int):
        weights = [w for _, w in self.components]
        load_shares = self._apportion(n_loads, weights)
        store_shares = self._apportion(n_stores, weights)
        load_cols = []
        store_cols = []
        for (behavior, _), nl, ns in zip(
            self.components, load_shares, store_shares
        ):
            cols = behavior.turbo_columns(nl, ns)
            if cols is None:
                return None
            load_cols.extend(cols[:nl])
            store_cols.extend(cols[nl:])
        return tuple(load_cols) + tuple(store_cols)

    def footprint(self) -> Optional[int]:
        spans = [b.footprint() for b, _ in self.components]
        known = [s for s in spans if s is not None]
        return max(known) if known else None

    def __repr__(self) -> str:
        inner = ", ".join(
            f"({behavior!r}, {weight:.3f})"
            for behavior, weight in self.components
        )
        return f"MixedBehavior([{inner}])"
