"""Workload generation: memory-access patterns, method templates, and the
seven SPECjvm98 stand-in benchmarks.

The paper evaluates on SPECjvm98 with the s100 inputs (~10^10 dynamic
instructions per benchmark).  The reproduction substitutes parameterised
synthetic programs whose hotspot structure, working-set sizes, and phase
behaviour match the per-benchmark characteristics the paper publishes
(Table 4, Table 5, Figure 1) at 1/100 interval scale — see DESIGN.md §2.
"""

from repro.workloads.patterns import (
    MixedBehavior,
    PointerChaseBehavior,
    StackBehavior,
    StridedBehavior,
    WorkingSetBehavior,
)
from repro.workloads.templates import (
    MethodSpec,
    TemplateLibrary,
    leaf_method,
    loop_method,
    phased_driver_method,
)
from repro.workloads.specjvm import (
    BENCHMARK_NAMES,
    BenchmarkSpec,
    SPECJVM_DESCRIPTIONS,
    benchmark_spec,
    build_benchmark,
    build_suite,
)
from repro.workloads.synthetic import random_program

__all__ = [
    "BENCHMARK_NAMES",
    "BenchmarkSpec",
    "MethodSpec",
    "MixedBehavior",
    "PointerChaseBehavior",
    "SPECJVM_DESCRIPTIONS",
    "StackBehavior",
    "StridedBehavior",
    "TemplateLibrary",
    "WorkingSetBehavior",
    "benchmark_spec",
    "build_benchmark",
    "build_suite",
    "leaf_method",
    "loop_method",
    "phased_driver_method",
    "random_program",
]
