"""repro — reproduction of "Effective Adaptive Computing Environment
Management via Dynamic Optimization" (Hu, Valluri, John — CGO 2005).

The package implements, in pure Python, the paper's DO-based adaptive
computing environment (ACE) management framework together with every
substrate it needs: a mini-ISA and interpreter, a Jikes-style DO system
(hotspot detection, JIT patching), a trace-driven microarchitecture model
(resizable caches, branch prediction, analytic timing), a Wattch-style
energy model, the BBV temporal baseline, and synthetic SPECjvm98 stand-in
workloads.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart::

    from repro import ACEFramework, build_benchmark

    built = build_benchmark("db")
    report = ACEFramework().run(
        built.program, max_instructions=500_000,
        thread_entries=built.thread_entries,
    )
    print(report.summary())
"""

from repro.core import (
    ACEFramework,
    FootprintPredictor,
    HotspotACEPolicy,
    SizeClassifier,
)
from repro.core.framework import ACEReport
from repro.isa import MethodBuilder, Program, ProgramBuilder, assemble
from repro.phases import BBVACEPolicy
from repro.sim.config import (
    BBVConfig,
    ExperimentConfig,
    MachineConfig,
    ScaledParameters,
    TuningConfig,
    build_machine,
)
from repro.vm import VMConfig, VirtualMachine
from repro.workloads import (
    BENCHMARK_NAMES,
    benchmark_spec,
    build_benchmark,
    build_suite,
)

__version__ = "1.0.0"

__all__ = [
    "ACEFramework",
    "ACEReport",
    "BBVACEPolicy",
    "BBVConfig",
    "BENCHMARK_NAMES",
    "Engine",
    "ExperimentConfig",
    "FootprintPredictor",
    "HotspotACEPolicy",
    "MachineConfig",
    "MethodBuilder",
    "Program",
    "ProgramBuilder",
    "ResultStore",
    "RunSpec",
    "ScaledParameters",
    "SizeClassifier",
    "TuningConfig",
    "VMConfig",
    "VirtualMachine",
    "assemble",
    "benchmark_spec",
    "build_benchmark",
    "build_machine",
    "build_suite",
    "run_suite",
    "__version__",
]

#: Engine-layer names are imported lazily (PEP 562): the policy packages
#: they pull in would otherwise create an import cycle with sim.config.
_LAZY = {
    "Engine": ("repro.sim.engine", "Engine"),
    "ResultStore": ("repro.sim.store", "ResultStore"),
    "RunSpec": ("repro.sim.driver", "RunSpec"),
    "run_suite": ("repro.sim.experiment", "run_suite"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
