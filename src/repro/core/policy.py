"""The DO-based ACE management policy (paper §3, Figure 2).

Wires the framework into the VM:

* ``on_hotspot_detected`` — classify the hotspot's size, choose its CU
  subset (CU decoupling), create its configuration list, and patch *tuning
  code* at the entry and *profiling code* at the exits via the JIT.
* tuning code — apply the next configuration in the list (through the
  control registers; the hardware guard may deny too-frequent requests, in
  which case the same configuration is retried on the next invocation) and
  snapshot the machine.
* profiling code — measure the finished invocation (IPC + the CU subset's
  energy metric) and record the trial; on completion, the JIT replaces the
  stubs with *configuration code* and *sampling code*.
* configuration code — pin the hotspot's most energy-efficient
  configuration at every subsequent invocation (zero recurring-phase
  identification latency — Table 1).
* sampling code — track post-tuning IPC; large drift triggers a re-tune
  (§3.3; rare in practice, as the paper observes via [26]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.cu_assignment import SizeClassifier
from repro.core.prediction import FootprintPredictor
from repro.obs.events import (
    CONFIG_DEMOTED,
    CONFIG_PINNED,
    CONFIG_TRIED,
    HOTSPOT_UNMANAGED,
    NULL_TELEMETRY,
    SAMPLING_RETUNE,
    TUNING_STARTED,
)
from repro.core.tuning import (
    Config,
    HotspotTuningState,
    TuningConfig,
    TuningOutcome,
    TuningPhase,
    make_config_list,
)
from repro.trace.events import BlockEvent
from repro.vm.hotspot import HotspotInfo
from repro.vm.jit import EntryStub
from repro.vm.vm import AdaptationHooks, VirtualMachine


class _InvocationToken:
    """Per-invocation state the entry stub hands to the exit stub."""

    __slots__ = ("kind", "config", "snapshot", "covered_cus")

    def __init__(self, kind, config, snapshot, covered_cus=()):
        self.kind = kind
        self.config = config
        self.snapshot = snapshot
        self.covered_cus = covered_cus


class _IpcAccumulator:
    """Streaming mean/CoV of one hotspot's per-invocation IPC."""

    __slots__ = ("n", "total", "total_sq")

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0
        self.total_sq = 0.0

    def add(self, ipc: float) -> None:
        self.n += 1
        self.total += ipc
        self.total_sq += ipc * ipc

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @property
    def cov(self) -> Optional[float]:
        """Coefficient of variation; None with fewer than 2 samples."""
        if self.n < 2 or self.total <= 0:
            return None
        mean = self.total / self.n
        variance = max(0.0, self.total_sq / self.n - mean * mean)
        return (variance ** 0.5) / mean


@dataclass
class HotspotPolicyStats:
    """Final statistics of one hotspot-policy run (Tables 4–6 inputs)."""

    hotspots_by_kind: Dict[str, int] = field(default_factory=dict)
    managed_hotspots: int = 0
    tuned_hotspots: int = 0
    unmanaged_hotspots: int = 0
    tunings: Dict[str, int] = field(default_factory=dict)
    reconfigs: Dict[str, int] = field(default_factory=dict)
    denied: Dict[str, int] = field(default_factory=dict)
    coverage: Dict[str, float] = field(default_factory=dict)
    per_hotspot_ipc_cov: float = 0.0
    inter_hotspot_ipc_cov: float = 0.0
    retunes: int = 0
    early_aborts: int = 0
    kind_of: Dict[str, str] = field(default_factory=dict)
    hotspot_mean_ipc: Dict[str, float] = field(default_factory=dict)

    @property
    def total_managed_hotspot_count(self) -> int:
        return self.managed_hotspots

    @property
    def tuned_fraction(self) -> float:
        if self.managed_hotspots == 0:
            return 0.0
        return self.tuned_hotspots / self.managed_hotspots

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (result-store schema v1)."""
        import dataclasses

        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "HotspotPolicyStats":
        return cls(**payload)


class HotspotACEPolicy(AdaptationHooks):
    """Adaptation policy implementing the paper's framework."""

    name = "hotspot"

    #: ``on_block`` only consumes ``n_insns``/``thread_id`` — the fast
    #: kernel may keep its fused path and pass empty address lists.
    on_block_reads_addresses = False

    def __init__(
        self,
        tuning: Optional[TuningConfig] = None,
        classifier: Optional[SizeClassifier] = None,
        predictor: Optional[FootprintPredictor] = None,
        decoupling: bool = True,
        enable_retuning: bool = True,
        warm_start: Optional[Dict[str, Config]] = None,
    ):
        self.tuning = tuning or TuningConfig()
        self._classifier = classifier
        self.predictor = predictor
        self.decoupling = decoupling
        self.enable_retuning = enable_retuning
        #: Chosen configurations from a previous run of the same workload
        #: (see :meth:`chosen_configs`): hotspots found here skip tuning
        #: and go straight to configuration code — the persisted-profile
        #: counterpart of the paper's zero-latency recurring phases.  The
        #: inherited configuration is still A/B-verified by the sampling
        #: code, so a stale entry is walked back rather than trusted.
        self.warm_start: Dict[str, Config] = dict(warm_start or {})
        self.warm_started = 0
        self.states: Dict[str, HotspotTuningState] = {}
        self.kind_of: Dict[str, str] = {}
        self.ever_tuned: Dict[str, bool] = {}
        self.unmanaged: List[str] = []
        self.trial_count: Dict[str, int] = {}
        self.reconfig_count: Dict[str, int] = {}
        self.covered_insns: Dict[str, int] = {}
        self.total_insns = 0
        self.retunes = 0
        self.demotions = 0
        #: Tuning-code applications rejected by the hardware guard (the
        #: invocation retries later) — diagnostic for the no-decoupling
        #: ablation, where small hotspots keep requesting slow-CU changes.
        self.blocked_trials = 0
        self._ipc: Dict[str, _IpcAccumulator] = {}
        self._pending_measurements: Dict[str, list] = {}
        #: Measurement-driven deoptimisation (see
        #: :class:`repro.vm.vm.AdaptationHooks`): this policy decides
        #: discrete outcomes by *measuring* fine-grained trial and A/B
        #: verification windows whose (IPC, energy) depend on the exact
        #: cache state carried in from all earlier execution.  Any
        #: batched (address-relaxed) execution before the last such
        #: window can therefore flip a near-tie choice — and promotion,
        #: re-verification and retuning can open new windows at any
        #: point of the run.  The only sound rule is to keep the pause
        #: asserted for the whole run: under this policy the turbo
        #: kernel executes its exact scalar path, bit-identical to the
        #: fast kernel on the same configuration.
        self.bulk_pause_depth = 1
        self._warmups: Dict[str, int] = {}
        self._slow_cus: frozenset = frozenset()
        self._cov_depth: Dict[str, List[int]] = {}
        self.vm: Optional[VirtualMachine] = None
        self.machine = None
        self.telemetry = NULL_TELEMETRY
        #: Optional :class:`repro.faults.FaultPlan` — perturbs the
        #: measured (IPC, energy) samples the tuning walk and the
        #: sampling code consume (profiling noise + forced drift).
        self.fault_plan = None

    # -- VM lifecycle ----------------------------------------------------------

    def attach(self, vm: VirtualMachine) -> None:
        self.vm = vm
        self.machine = vm.machine
        self.telemetry = vm.telemetry
        if self._classifier is None:
            self._classifier = SizeClassifier.from_machine(vm.machine)
        n_threads = len(vm.threads)
        for cu_name in vm.machine.cus:
            self.trial_count.setdefault(cu_name, 0)
            self.reconfig_count.setdefault(cu_name, 0)
            self.covered_insns.setdefault(cu_name, 0)
            self._cov_depth.setdefault(cu_name, [0] * n_threads)
        max_interval = max(
            cu.reconfiguration_interval for cu in vm.machine.cus.values()
        )
        self._slow_cus = frozenset(
            name
            for name, cu in vm.machine.cus.items()
            if cu.reconfiguration_interval == max_interval
        )

    @property
    def classifier(self) -> SizeClassifier:
        assert self._classifier is not None, "policy not attached"
        return self._classifier

    def on_block(self, event: BlockEvent, machine) -> None:
        n = event.n_insns
        self.total_insns += n
        tid = event.thread_id
        for cu_name, depths in self._cov_depth.items():
            if depths[tid] > 0:
                self.covered_insns[cu_name] += n

    def on_block_counts(self, n_insns, block_pc, thread_id, machine) -> None:
        # Must mirror on_block exactly (see AdaptationHooks.on_block_counts).
        self.total_insns += n_insns
        for cu_name, depths in self._cov_depth.items():
            if depths[thread_id] > 0:
                self.covered_insns[cu_name] += n_insns

    def on_blocks_bulk(self, slots, total_insns, thread_id, machine) -> None:
        # Coverage depths only change at managed-hotspot entry/exit stubs,
        # which never run inside a turbo batch, so the depth test is
        # loop-invariant and the per-block sums collapse to one total.
        self.total_insns += total_insns
        for cu_name, depths in self._cov_depth.items():
            if depths[thread_id] > 0:
                self.covered_insns[cu_name] += total_insns

    # -- hotspot detection -------------------------------------------------------

    def on_hotspot_detected(
        self, hotspot: HotspotInfo, vm: VirtualMachine
    ) -> None:
        size = hotspot.mean_size
        if self.decoupling:
            cu_names = self.classifier.cus_for_size(size)
        else:
            # Ablation: no decoupling — any hotspot large enough for the
            # *smallest* CU tunes the combinatorial list of all CUs.
            cu_names = (
                tuple(self.classifier.intervals)
                if self.classifier.cus_for_size(size)
                else ()
            )
        self.kind_of[hotspot.name] = self.classifier.classify_kind(size)
        telemetry = self.telemetry
        if not cu_names:
            self.unmanaged.append(hotspot.name)
            if telemetry.enabled:
                telemetry.emit(
                    HOTSPOT_UNMANAGED,
                    ts=self.machine.instructions,
                    hotspot=hotspot.name,
                    kind=self.kind_of[hotspot.name],
                    mean_size=size,
                )
                telemetry.metrics.counter("policy.unmanaged").inc()
            return
        config_list, predicted = self._config_list(hotspot, cu_names)
        state = HotspotTuningState(
            hotspot.name, cu_names, config_list, predicted=predicted
        )
        self.states[hotspot.name] = state
        self.ever_tuned[hotspot.name] = False
        self._ipc.setdefault(hotspot.name, _IpcAccumulator())
        inherited = self.warm_start.get(hotspot.name)
        if inherited is not None and len(inherited) == len(cu_names):
            # Skip tuning: adopt the previous run's choice, pending the
            # sampling code's A/B verification.
            state.best = TuningOutcome(tuple(inherited), 0.0, 0.0, 0)
            state.phase = TuningPhase.CONFIGURED
            state.begin_verification()
            self.ever_tuned[hotspot.name] = True
            self.warm_started += 1
            if telemetry.enabled:
                telemetry.emit(
                    CONFIG_PINNED,
                    ts=self.machine.instructions,
                    hotspot=hotspot.name,
                    config=list(inherited),
                    source="warm_start",
                )
                telemetry.metrics.counter("policy.warm_starts").inc()
            self._install_configured(hotspot.name)
            return
        if telemetry.enabled:
            telemetry.emit(
                TUNING_STARTED,
                ts=self.machine.instructions,
                hotspot=hotspot.name,
                kind=self.kind_of[hotspot.name],
                cus=",".join(cu_names),
                n_configs=len(config_list),
            )
            telemetry.metrics.counter("policy.tunings_started").inc()
        self._install_tuning(hotspot.name)

    def _config_list(
        self, hotspot: HotspotInfo, cu_names: Tuple[str, ...]
    ) -> Tuple[List[Config], Optional[Config]]:
        counts = [
            self.machine.cus[name].n_settings for name in cu_names
        ]
        predicted = None
        if self.predictor is not None:
            predicted = self.predictor.predict(hotspot, cu_names, self.machine)
        return make_config_list(counts, predicted_first=predicted), predicted

    # -- stub installation -----------------------------------------------------------

    def _install_tuning(self, name: str) -> None:
        jit = self.vm.jit
        jit.patch_entry(name, EntryStub("tuning", self._tuning_entry))
        jit.patch_exit(name, EntryStub("profiling", self._profiling_exit))

    def _install_configured(self, name: str) -> None:
        jit = self.vm.jit
        jit.patch_entry(name, EntryStub("config", self._config_entry))
        jit.patch_exit(name, EntryStub("sampling", self._sampling_exit))

    # -- hardware requests ------------------------------------------------------------

    def _apply_config(
        self, state: HotspotTuningState, config: Config, actor: str
    ) -> Tuple[bool, frozenset]:
        """Set the CU subset to ``config``; all-or-nothing via the guard.

        Returns ``(applied, changed_cus)``: ``applied`` is False if the
        hardware denied a needed change (the caller retries on a later
        invocation, as the paper's tuning code does); ``changed_cus`` names
        the settings that actually moved — a changed cache starts cold, so
        measurement code inserts warm-up invocations.
        """
        machine = self.machine
        needed = []
        for cu_name, index in zip(state.cu_names, config):
            if machine.cus[cu_name].current_index != index:
                needed.append((cu_name, index))
        if not needed:
            return True, frozenset()
        now = machine.instructions
        for cu_name, _ in needed:
            if not machine.guard.would_grant(cu_name, now):
                return False, frozenset()
        counter = (
            self.trial_count if actor == "tuning" else self.reconfig_count
        )
        changed = set()
        for cu_name, index in needed:
            applied = machine.request_reconfiguration(cu_name, index, actor)
            if applied:
                counter[cu_name] += 1
                changed.add(cu_name)
        return True, frozenset(changed)

    def _needs_warmup(self, name: str, changed: frozenset) -> bool:
        """Warm-up budget after a reconfiguration, consumed per invocation.

        A slow (large-refill) CU change needs two warm-up invocations; a
        fast one needs one.  Returns True while warm-ups remain.
        """
        if changed:
            self._warmups[name] = 2 if (changed & self._slow_cus) else 1
        remaining = self._warmups.get(name, 0)
        if remaining > 0:
            self._warmups[name] = remaining - 1
            return True
        return False

    # -- tuning code (hotspot entry, TUNING phase) ---------------------------------------

    def _tuning_entry(self, hotspot: HotspotInfo, activation, vm) -> None:
        state = self.states.get(hotspot.name)
        if state is None or state.phase is not TuningPhase.TUNING:
            activation.policy_token = None
            return
        trial = state.current_trial
        if trial is None:
            activation.policy_token = None
            return
        applied, changed = self._apply_config(state, trial, actor="tuning")
        if not applied:
            self.blocked_trials += 1
        if not applied or self._needs_warmup(hotspot.name, changed):
            # Denied: retry next invocation.  Changed: the resized cache
            # starts (partly) cold — insert warm-up invocations and
            # measure under the settled configuration.
            activation.policy_token = None
            return
        activation.policy_token = _InvocationToken(
            "trial", trial, self.machine.snapshot()
        )

    # -- profiling code (hotspot exit, TUNING phase) ---------------------------------------

    def _profiling_exit(self, hotspot: HotspotInfo, activation, vm) -> None:
        token = activation.policy_token
        activation.policy_token = None
        if not isinstance(token, _InvocationToken) or token.kind != "trial":
            return
        state = self.states.get(hotspot.name)
        if state is None or state.phase is not TuningPhase.TUNING:
            return
        delta = self.machine.snapshot().delta(token.snapshot)
        if delta.instructions < self.tuning.min_measurable_instructions:
            return
        if delta.cycles <= 0:
            return
        ipc = delta.ipc
        energy = sum(
            delta.tuning_energy_metric(cu_name, self.machine)
            for cu_name in state.cu_names
        )
        plan = self.fault_plan
        if plan is not None and plan.perturbs_profiling:
            ipc, energy = plan.perturb_measurement(
                hotspot.name,
                token.config,
                ipc,
                energy,
                self.machine.instructions,
                self._ipc[hotspot.name].n,
            )
        self._ipc[hotspot.name].add(ipc)
        # Average several measured invocations per configuration before
        # committing the trial (see TuningConfig.measurements_per_trial).
        pending = self._pending_measurements.setdefault(hotspot.name, [])
        pending.append((ipc, energy, delta.instructions))
        if len(pending) < self.tuning.measurements_per_trial:
            return
        total_insns = sum(m[2] for m in pending)
        mean_ipc = sum(m[0] for m in pending) / len(pending)
        total_energy = sum(m[1] for m in pending)
        pending.clear()
        outcome = TuningOutcome(
            token.config, mean_ipc, total_energy / total_insns, total_insns
        )
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                CONFIG_TRIED,
                ts=self.machine.instructions,
                hotspot=hotspot.name,
                config=list(token.config),
                ipc=mean_ipc,
                energy_per_insn=total_energy / total_insns,
            )
            telemetry.metrics.counter("policy.configs_tried").inc()
        if state.record(
            outcome,
            self.tuning.performance_threshold,
            self.tuning.objective,
        ):
            self.ever_tuned[hotspot.name] = True
            if telemetry.enabled:
                telemetry.emit(
                    CONFIG_PINNED,
                    ts=self.machine.instructions,
                    hotspot=hotspot.name,
                    config=list(state.best.config) if state.best else [],
                    trials=len(state.outcomes),
                    aborted_early=state.aborted_early,
                )
                telemetry.metrics.counter("policy.configs_pinned").inc()
                detected_at = hotspot.profile.detected_at
                if detected_at is not None:
                    telemetry.metrics.histogram(
                        "policy.detect_to_pin_insns"
                    ).observe(self.machine.instructions - detected_at)
            self._install_configured(hotspot.name)

    # -- configuration code (hotspot entry, CONFIGURED phase) ------------------------------

    def _config_entry(self, hotspot: HotspotInfo, activation, vm) -> None:
        state = self.states.get(hotspot.name)
        if state is None or state.best is None:
            activation.policy_token = None
            return
        if state.verify_pending:
            target = state.verification_target()
            kind = "verify"
        else:
            target = state.best.config
            kind = "sample"
        applied, changed = self._apply_config(state, target, actor="config")
        depths = self._cov_depth
        tid = activation_thread_id(activation, vm)
        for cu_name in state.cu_names:
            depths[cu_name][tid] += 1
        if kind == "verify" and (
            not applied or self._needs_warmup(hotspot.name, changed)
        ):
            # Verification measurements need a settled configuration:
            # treat this invocation as warm-up (coverage still counted).
            kind = "warm"
        activation.policy_token = _InvocationToken(
            kind, target, self.machine.snapshot(),
            covered_cus=state.cu_names,
        )

    # -- sampling code (hotspot exit, CONFIGURED phase) --------------------------------------

    def _sampling_exit(self, hotspot: HotspotInfo, activation, vm) -> None:
        token = activation.policy_token
        activation.policy_token = None
        if not isinstance(token, _InvocationToken) or token.kind not in (
            "sample",
            "verify",
            "warm",
        ):
            return
        tid = activation_thread_id(activation, vm)
        for cu_name in token.covered_cus:
            self._cov_depth[cu_name][tid] -= 1
        if token.kind == "warm":
            return
        state = self.states.get(hotspot.name)
        if state is None or state.phase is not TuningPhase.CONFIGURED:
            return
        delta = self.machine.snapshot().delta(token.snapshot)
        if delta.instructions < self.tuning.min_measurable_instructions:
            return
        if delta.cycles <= 0:
            return
        ipc = delta.ipc
        plan = self.fault_plan
        if plan is not None and plan.perturbs_profiling:
            ipc, _ = plan.perturb_measurement(
                hotspot.name,
                token.config,
                ipc,
                0.0,
                self.machine.instructions,
                self._ipc[hotspot.name].n,
            )
        self._ipc[hotspot.name].add(ipc)
        if token.kind == "verify":
            outcome = state.record_verification(
                ipc,
                self.tuning.verify_invocations_per_stage,
                self.tuning.performance_threshold,
            )
            if outcome == "demoted":
                self.demotions += 1
                telemetry = self.telemetry
                if telemetry.enabled:
                    telemetry.emit(
                        CONFIG_DEMOTED,
                        ts=self.machine.instructions,
                        hotspot=hotspot.name,
                        config=(
                            list(state.best.config) if state.best else []
                        ),
                    )
                    telemetry.metrics.counter("policy.demotions").inc()
            return
        state.observe_configured_ipc(ipc)
        if not self.enable_retuning:
            return
        if (
            state.verify_passes < self.tuning.verify_passes_required
            and state.invocations_since_configured
            >= self.tuning.sampling_period_invocations
        ):
            # Not yet confirmed stable: run another A/B verification round.
            state.begin_verification()
            return
        if (
            state.invocations_since_configured
            >= self.tuning.sampling_period_invocations
            and state.drift_exceeds(self.tuning.retune_ipc_delta)
        ):
            self._retune(hotspot, state)

    def _retune(self, hotspot: HotspotInfo, state: HotspotTuningState) -> None:
        """Behaviour drifted: re-run the tuning process (paper §3.3)."""
        self.retunes += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                SAMPLING_RETUNE,
                ts=self.machine.instructions,
                hotspot=hotspot.name,
                configured_ipc=state.configured_ipc or 0.0,
                recent_ipc=state.recent_ipc or 0.0,
            )
            telemetry.metrics.counter("policy.retunes").inc()
        self._pending_measurements.pop(hotspot.name, None)
        size = hotspot.mean_size
        if self.decoupling:
            cu_names = self.classifier.cus_for_size(size)
        else:
            cu_names = state.cu_names
        self.kind_of[hotspot.name] = self.classifier.classify_kind(size)
        if not cu_names:
            # Hotspot drifted out of every CU band: stop managing it.
            del self.states[hotspot.name]
            self.unmanaged.append(hotspot.name)
            self.vm.jit.patch_entry(hotspot.name, None)
            self.vm.jit.patch_exit(hotspot.name, None)
            return
        config_list, predicted = self._config_list(hotspot, cu_names)
        if cu_names != state.cu_names:
            self.states[hotspot.name] = HotspotTuningState(
                hotspot.name, cu_names, config_list, predicted=predicted
            )
        else:
            state.restart(config_list)
            state.predicted = predicted
        self._install_tuning(hotspot.name)

    # -- finalisation ------------------------------------------------------------------

    def finalize(self) -> HotspotPolicyStats:
        stats = HotspotPolicyStats()
        stats.kind_of = dict(self.kind_of)
        for kind in self.kind_of.values():
            stats.hotspots_by_kind[kind] = (
                stats.hotspots_by_kind.get(kind, 0) + 1
            )
        stats.managed_hotspots = len(self.states)
        stats.unmanaged_hotspots = len(self.unmanaged)
        stats.tuned_hotspots = sum(
            1 for name, tuned in self.ever_tuned.items() if tuned
        )
        stats.tunings = dict(self.trial_count)
        stats.reconfigs = dict(self.reconfig_count)
        stats.denied = dict(self.machine.denied_reconfigurations)
        total = max(1, self.total_insns)
        stats.coverage = {
            cu_name: covered / total
            for cu_name, covered in self.covered_insns.items()
        }
        stats.retunes = self.retunes
        stats.early_aborts = sum(
            1 for s in self.states.values() if s.aborted_early
        )
        covs = [
            acc.cov
            for name, acc in self._ipc.items()
            if name in self.states and acc.cov is not None
        ]
        stats.per_hotspot_ipc_cov = (
            sum(covs) / len(covs) if covs else 0.0
        )
        means = [
            acc.mean
            for name, acc in self._ipc.items()
            if name in self.states and acc.n > 0
        ]
        stats.hotspot_mean_ipc = {
            name: acc.mean
            for name, acc in self._ipc.items()
            if name in self.states and acc.n > 0
        }
        if len(means) >= 2:
            mean = sum(means) / len(means)
            variance = sum((m - mean) ** 2 for m in means) / len(means)
            stats.inter_hotspot_ipc_cov = (
                (variance ** 0.5) / mean if mean > 0 else 0.0
            )
        return stats

    def chosen_configs(self) -> Dict[str, Config]:
        """Best configurations of every tuned hotspot (for warm-starting
        a later run of the same workload)."""
        return {
            name: state.best.config
            for name, state in self.states.items()
            if state.best is not None
        }

    def on_run_end(self, vm: VirtualMachine) -> None:
        self.final_stats = self.finalize()


def activation_thread_id(activation, vm: VirtualMachine) -> int:
    """Recover the thread id owning an activation (frame bases encode it:
    each thread's frames live in its own stack window)."""
    from repro.vm.activation import STACK_BASE, STACK_SPACING

    return (STACK_BASE - activation.frame_base) // STACK_SPACING
