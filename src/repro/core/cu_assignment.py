"""CU decoupling: matching hotspots with configurable-unit subsets.

Paper §3.2.1: the sampling-interval approaches must adapt every CU at the
pace of the *slowest* one; the DO-based framework instead adapts each CU at
hotspots whose dynamic size matches that CU's reconfiguration interval.
The paper's concrete bands — L1D (100 K-instruction interval) at hotspots
of 50 K–500 K instructions, L2 (1 M interval) at hotspots above 500 K —
generalise to ``[0.5 x interval, 5 x interval)`` per CU, with the
largest-interval CU unbounded above.  :class:`SizeClassifier` implements
that rule for any CU population, which is what makes the framework
"inherently scalable to a large number of configurable resources"
(paper §6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: Band bounds relative to a CU's reconfiguration interval.
LOWER_FACTOR = 0.5
UPPER_FACTOR = 5.0


@dataclass(frozen=True)
class CUAssignment:
    """The CU subset chosen for one hotspot."""

    hotspot: str
    size: float
    cu_names: Tuple[str, ...]

    @property
    def is_managed(self) -> bool:
        return bool(self.cu_names)


class SizeClassifier:
    """Maps hotspot sizes to CU subsets by reconfiguration interval.

    ``intervals`` maps CU name to its (scaled) reconfiguration interval in
    instructions.  CUs sharing an interval share a band and are tuned
    together at the same hotspots (their configuration lists are the
    cartesian product — paper §3.2.2 "a list of configuration combinations
    of the selected CUs").
    """

    def __init__(self, intervals: Dict[str, int]):
        if not intervals:
            raise ValueError("need at least one CU")
        for name, interval in intervals.items():
            if interval <= 0:
                raise ValueError(
                    f"CU {name!r}: interval must be positive, got {interval}"
                )
        self.intervals = dict(intervals)
        self._max_interval = max(intervals.values())

    def band(self, cu_name: str) -> Tuple[float, float]:
        """The hotspot-size band ``[lo, hi)`` in which ``cu_name`` is tuned."""
        interval = self.intervals[cu_name]
        lower = LOWER_FACTOR * interval
        if interval == self._max_interval:
            return lower, float("inf")
        return lower, UPPER_FACTOR * interval

    def cus_for_size(self, size: float) -> Tuple[str, ...]:
        """CU names whose band contains ``size`` (insertion order)."""
        chosen: List[str] = []
        for name in self.intervals:
            lower, upper = self.band(name)
            if lower <= size < upper:
                chosen.append(name)
        return tuple(chosen)

    def assign(self, hotspot_name: str, size: float) -> CUAssignment:
        return CUAssignment(hotspot_name, size, self.cus_for_size(size))

    def classify_kind(self, size: float) -> str:
        """Human-readable class for reporting: the smallest-interval CU in
        the hotspot's subset, or 'unmanaged'."""
        cus = self.cus_for_size(size)
        if not cus:
            return "unmanaged"
        return min(cus, key=lambda name: self.intervals[name])

    @classmethod
    def from_machine(cls, machine) -> "SizeClassifier":
        """Build from a machine model's registered CUs."""
        return cls(
            {
                name: cu.reconfiguration_interval
                for name, cu in machine.cus.items()
            }
        )

    def __repr__(self) -> str:
        bands = ", ".join(
            f"{name}: [{self.band(name)[0]:.0f}, {self.band(name)[1]:.0f})"
            for name in self.intervals
        )
        return f"SizeClassifier({bands})"
