"""Per-hotspot tuning state (paper §3.2.2).

After a hotspot is detected and JIT-optimised, a configuration list for its
CU subset is created in the DO database entry, with an index pointing at
the first item.  Tuning code at the hotspot entry applies the indexed
configuration and advances the index; profiling code at the exits measures
the invocation.  Tuning completes when every configuration has been tested
or performance falls below ``performance_threshold`` relative to the
reference (maximum) configuration; the most energy-efficient qualifying
configuration is then selected.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

Config = Tuple[int, ...]


@dataclass(frozen=True)
class TuningConfig:
    """Knobs of the tuning algorithms (both schemes share these)."""

    #: Abort tuning when IPC degrades more than this vs. the reference
    #: (maximum) configuration — paper §3.2.2 quotes 2 %.
    performance_threshold: float = 0.02
    #: Measured invocations averaged per configuration trial.  Hotspot
    #: invocations overlap with other hotspots' tuning, so a single
    #: invocation is a noisy estimate; averaging several stops transient
    #: interference from mis-ranking configurations.
    measurements_per_trial: int = 3
    #: Sampling-code verification: measured invocations per A/B stage when
    #: double-checking the chosen configuration against the maximum one.
    verify_invocations_per_stage: int = 5
    #: Consecutive A/B passes after which a configuration is considered
    #: stable and re-verification stops.
    verify_passes_required: int = 1
    #: Hotspot sampling code: check performance drift every N invocations
    #: after tuning completes (paper §3.3).
    sampling_period_invocations: int = 32
    #: Relative IPC change that triggers a re-tune.  Hotspots shared by
    #: several callers see caller-mix variation in their IPC; re-tuning is
    #: meant for genuine behaviour changes, so the bar is high (the paper
    #: observes re-tunings are rare).
    retune_ipc_delta: float = 0.40
    #: Ignore invocations shorter than this many instructions when
    #: measuring (too noisy to compare).
    min_measurable_instructions: int = 50
    #: Selection objective among qualifying configurations: "energy"
    #: (the paper's "most energy-efficient configuration") or "edp"
    #: (energy-delay product — energy/insn divided by IPC — the common
    #: alternative when performance matters as much as energy).
    objective: str = "energy"

    def __post_init__(self) -> None:
        if self.objective not in ("energy", "edp"):
            raise ValueError(
                f"objective must be 'energy' or 'edp', got "
                f"{self.objective!r}"
            )


class TuningPhase(enum.Enum):
    """Lifecycle of a managed hotspot (mirrors Figure 2's states)."""

    TUNING = "tuning"
    CONFIGURED = "configured"
    UNMANAGED = "unmanaged"


class TuningOutcome:
    """One measured configuration trial."""

    __slots__ = ("config", "ipc", "energy_per_insn", "instructions")

    def __init__(
        self,
        config: Config,
        ipc: float,
        energy_per_insn: float,
        instructions: int,
    ):
        self.config = config
        self.ipc = ipc
        self.energy_per_insn = energy_per_insn
        self.instructions = instructions

    def __repr__(self) -> str:
        return (
            f"TuningOutcome({self.config}, ipc={self.ipc:.3f}, "
            f"e/i={self.energy_per_insn:.4f})"
        )


def make_config_list(
    setting_counts: Sequence[int], predicted_first: Optional[Config] = None
) -> List[Config]:
    """Build the configuration list for a CU subset.

    Index 0 of every CU is its maximum setting, so the list starts at the
    all-maximum reference configuration and walks towards smaller settings
    (the last CU varies fastest).  With ``predicted_first`` (the JIT
    prediction extension), that configuration is hoisted to position 1 —
    right after the reference — so a correct prediction ends tuning after
    two trials via the early-exit rule.
    """
    configs = list(
        itertools.product(*(range(n) for n in setting_counts))
    )
    if predicted_first is not None and predicted_first in configs:
        configs.remove(predicted_first)
        position = 1 if configs and configs[0] == tuple([0] * len(setting_counts)) else 0
        configs.insert(position, predicted_first)
    return configs


def choose_best(
    outcomes: Sequence[TuningOutcome],
    reference_ipc: float,
    performance_threshold: float,
) -> Optional[TuningOutcome]:
    """Most energy-efficient configuration meeting the IPC constraint.

    The "2 % IPC degradation" floor (paper §3.2.2) is taken relative to the
    *best measured* IPC rather than the first (maximum-configuration)
    measurement: the first trial runs earliest in the hotspot's life, while
    surrounding hotspots are still tuning and caches are coldest, so its
    IPC is biased low — anchoring the floor there would let genuinely slow
    configurations qualify.  ``reference_ipc`` is folded into the floor as
    well so a spuriously *high* later measurement cannot disqualify the
    reference itself.  A result exists whenever any outcome was measured.
    """
    if not outcomes:
        return None
    anchor = max(reference_ipc, max(o.ipc for o in outcomes))
    floor = anchor * (1.0 - performance_threshold)
    qualifying = [o for o in outcomes if o.ipc >= floor]
    if not qualifying:
        qualifying = [max(outcomes, key=lambda o: o.ipc)]
    return min(qualifying, key=lambda o: o.energy_per_insn)


def verification_says_demote(
    chosen_samples: Sequence[float],
    max_samples: Sequence[float],
    performance_threshold: float,
) -> bool:
    """A/B verdict: is the chosen configuration significantly slower?

    The chosen configuration is demoted when it loses to the maximum one
    by more than the performance threshold *plus one standard error of the
    difference* — measurement noise at this scale is comparable to the
    threshold, and demoting on raw comparisons would walk good
    configurations back to the maximum on unlucky samples.
    """
    k_c = len(chosen_samples)
    k_m = len(max_samples)
    if k_c == 0 or k_m == 0:
        return False
    mean_c = sum(chosen_samples) / k_c
    mean_m = sum(max_samples) / k_m
    if mean_m <= 0:
        return False
    var_c = sum((x - mean_c) ** 2 for x in chosen_samples) / max(1, k_c - 1)
    var_m = sum((x - mean_m) ** 2 for x in max_samples) / max(1, k_m - 1)
    stderr = (var_c / k_c + var_m / k_m) ** 0.5
    return (mean_m - mean_c) > performance_threshold * mean_m + stderr


def median_ipc(outcomes: Sequence[TuningOutcome]) -> float:
    """Median measured IPC across outcomes (robust unimpaired-IPC estimate)."""
    ipcs = sorted(o.ipc for o in outcomes)
    mid = len(ipcs) // 2
    if len(ipcs) % 2:
        return ipcs[mid]
    return 0.5 * (ipcs[mid - 1] + ipcs[mid])


def selection_key(outcome: TuningOutcome, objective: str):
    """Ranking key for a tuning objective (lower is better)."""
    if objective == "edp":
        ipc = max(outcome.ipc, 1e-9)
        return outcome.energy_per_insn / ipc
    return outcome.energy_per_insn


def choose_best_robust(
    outcomes: Sequence[TuningOutcome],
    performance_threshold: float,
    objective: str = "energy",
) -> Optional[TuningOutcome]:
    """Median-anchored selection.

    Individual measurements carry intrinsic IPC noise comparable to the
    2 % threshold (the paper's Table 5 puts per-phase/per-hotspot IPC CoV
    at 4–10 %), so anchoring the degradation floor at the single best
    measurement systematically rejects acceptable small configurations,
    while anchoring at the earliest measurement (coldest caches, busiest
    tuning neighbourhood) accepts nearly everything.  The median over the
    tested configurations is robust in both directions: genuinely bad
    configurations sit tens of percent below it and fail, near-neutral
    ones pass, and the energy metric selects among the qualifiers.
    """
    if not outcomes:
        return None
    floor = median_ipc(outcomes) * (1.0 - performance_threshold)
    qualifying = [o for o in outcomes if o.ipc >= floor]
    if not qualifying:
        qualifying = [max(outcomes, key=lambda o: o.ipc)]
    return min(qualifying, key=lambda o: selection_key(o, objective))


class HotspotTuningState:
    """DO-database tuning entry of one managed hotspot."""

    __slots__ = (
        "hotspot",
        "cu_names",
        "config_list",
        "predicted",
        "next_index",
        "outcomes",
        "phase",
        "best",
        "reference_ipc",
        "unimpaired_ipc",
        "tuning_rounds",
        "aborted_early",
        "invocations_since_configured",
        "configured_ipc",
        "recent_ipc",
        "demotions",
        "verify_pending",
        "verify_stage",
        "verify_samples",
        "verify_passes",
    )

    def __init__(
        self,
        hotspot: str,
        cu_names: Tuple[str, ...],
        config_list: List[Config],
        predicted: Optional[Config] = None,
    ):
        if not config_list:
            raise ValueError("config list must be non-empty")
        self.hotspot = hotspot
        self.cu_names = cu_names
        self.config_list = config_list
        self.predicted = predicted
        self.next_index = 0
        self.outcomes: List[TuningOutcome] = []
        self.phase = TuningPhase.TUNING
        self.best: Optional[TuningOutcome] = None
        self.reference_ipc: Optional[float] = None
        self.unimpaired_ipc: Optional[float] = None
        self.tuning_rounds = 1
        self.aborted_early = False
        self.invocations_since_configured = 0
        self.configured_ipc: Optional[float] = None
        self.recent_ipc: Optional[float] = None
        self.demotions = 0
        self.verify_pending = False
        self.verify_stage: Optional[str] = None
        self.verify_samples: Dict[str, List[float]] = {}
        self.verify_passes = 0

    # -- tuning-code side -----------------------------------------------------

    @property
    def current_trial(self) -> Optional[Config]:
        """Configuration the tuning code should apply next, if tuning."""
        if self.phase is not TuningPhase.TUNING:
            return None
        if self.next_index >= len(self.config_list):
            return None
        return self.config_list[self.next_index]

    # -- profiling-code side ---------------------------------------------------

    def record(
        self,
        outcome: TuningOutcome,
        performance_threshold: float,
        objective: str = "energy",
    ) -> bool:
        """Record one measured trial; returns True if tuning completed.

        Implements the paper's completion rule: stop when all configurations
        are tested, or when the measured performance falls below the
        threshold (the remaining configurations are smaller still and are
        skipped).
        """
        if self.phase is not TuningPhase.TUNING:
            raise RuntimeError(
                f"{self.hotspot}: record() outside of tuning phase"
            )
        self.outcomes.append(outcome)
        if self.reference_ipc is None:
            self.reference_ipc = outcome.ipc
        self.next_index += 1
        done = self.next_index >= len(self.config_list)
        best_seen = max(o.ipc for o in self.outcomes)
        floor = best_seen * (1.0 - performance_threshold)
        if outcome.config == self.predicted and len(self.outcomes) > 1:
            # JIT-prediction extension (paper §6): a predicted
            # configuration that qualifies ends tuning on the spot —
            # "completely eliminate the tuning latency".  A failed
            # prediction just falls back to the normal walk; it must NOT
            # trip the early-exit below, because the prediction sits out
            # of the largest-to-smallest order that rule relies on.
            if outcome.ipc >= floor:
                done = True
        elif not done and outcome.ipc < floor and len(self.outcomes) > 1:
            # Early exit: configurations are ordered largest to smallest,
            # so everything after a too-slow one is smaller/slower still.
            self.aborted_early = True
            done = True
        if done:
            self._complete(performance_threshold, objective)
        return done

    def _complete(
        self, performance_threshold: float, objective: str = "energy"
    ) -> None:
        self.best = choose_best_robust(
            self.outcomes, performance_threshold, objective
        )
        self.unimpaired_ipc = median_ipc(self.outcomes)
        self.phase = TuningPhase.CONFIGURED
        self.configured_ipc = self.best.ipc if self.best else None
        self.recent_ipc = self.configured_ipc
        self.invocations_since_configured = 0
        if self.best is not None:
            self.begin_verification()

    # -- sampling-code side ------------------------------------------------------

    def observe_configured_ipc(self, ipc: float, alpha: float = 0.3) -> None:
        """EWMA of post-tuning invocation IPC (sampling code input)."""
        self.invocations_since_configured += 1
        if self.recent_ipc is None:
            self.recent_ipc = ipc
        else:
            self.recent_ipc += alpha * (ipc - self.recent_ipc)

    def drift_exceeds(self, retune_delta: float) -> bool:
        """Has behaviour drifted enough to warrant a re-tune (§3.3)?"""
        if self.configured_ipc is None or self.recent_ipc is None:
            return False
        if self.configured_ipc <= 0:
            return False
        change = abs(self.recent_ipc - self.configured_ipc)
        return change / self.configured_ipc > retune_delta

    # -- post-selection verification (sampling-code A/B check) -----------
    #
    # A trial measured optimistically (noise, quiet neighbourhood) can slip
    # a genuinely slow configuration through selection.  Absolute
    # comparisons against tuning-time estimates cannot detect this — the
    # whole machine's behaviour drifts between tuning and steady state —
    # so the sampling code runs a short *contemporaneous* A/B check:
    # measure a few invocations under the chosen configuration, a few
    # under the all-maximum one, and demote the choice one notch if it
    # loses by more than the performance threshold.  Repeats until the
    # choice survives (or reaches the maximum).

    def begin_verification(self) -> None:
        self.verify_pending = True
        self.verify_stage = "chosen"
        self.verify_samples = {"chosen": [], "max": []}

    def verification_target(self) -> Config:
        """Configuration the config code should apply while verifying."""
        assert self.best is not None
        if self.verify_stage == "max":
            return tuple(0 for _ in self.best.config)
        return self.best.config

    def record_verification(
        self,
        ipc: float,
        samples_per_stage: int,
        performance_threshold: float,
    ) -> str:
        """Feed one measured verification invocation.

        Returns "continue" while sampling, "demoted" when the chosen
        configuration lost the comparison and was stepped back (a new
        verification cycle begins), or "verified" when it survived.
        """
        if not self.verify_pending:
            return "verified"
        if all(i == 0 for i in self.best.config):
            # Chose (or was demoted to) the maximum: nothing to compare.
            self.verify_passes = 99
            self._finish_verification()
            return "verified"
        samples = self.verify_samples[self.verify_stage]
        samples.append(ipc)
        if len(samples) < samples_per_stage:
            return "continue"
        if self.verify_stage == "chosen":
            self.verify_stage = "max"
            return "continue"
        if verification_says_demote(
            self.verify_samples["chosen"],
            self.verify_samples["max"],
            performance_threshold,
        ):
            self.demote()
            self.verify_passes = 0
            self.begin_verification()
            return "demoted"
        self.verify_passes += 1
        self._finish_verification()
        return "verified"

    def _finish_verification(self) -> None:
        self.verify_pending = False
        self.verify_stage = None
        self.configured_ipc = self.recent_ipc or self.configured_ipc
        self.invocations_since_configured = 0

    def demote(self) -> bool:
        """Step the pinned configuration one notch toward larger settings.

        The CU downsized deepest is the likeliest culprit, so its index is
        decremented.  Returns False when already at the all-maximum
        configuration.
        """
        if self.best is None:
            return False
        config = list(self.best.config)
        position = max(range(len(config)), key=lambda i: config[i])
        if config[position] == 0:
            return False
        config[position] -= 1
        self.best = TuningOutcome(
            tuple(config),
            self.best.ipc,
            self.best.energy_per_insn,
            self.best.instructions,
        )
        self.demotions += 1
        # Re-arm the sampling comparison for the demoted configuration.
        self.recent_ipc = None
        self.invocations_since_configured = 0
        return True

    def restart(self, config_list: Optional[List[Config]] = None) -> None:
        """Begin a new tuning round (re-tune after drift)."""
        if config_list is not None:
            self.config_list = config_list
        self.next_index = 0
        self.outcomes = []
        self.phase = TuningPhase.TUNING
        self.best = None
        self.reference_ipc = None
        self.unimpaired_ipc = None
        self.aborted_early = False
        self.tuning_rounds += 1
        self.invocations_since_configured = 0
        self.configured_ipc = None
        self.recent_ipc = None
        self.verify_pending = False
        self.verify_stage = None
        self.verify_samples = {}
        self.verify_passes = 0

    def __repr__(self) -> str:
        return (
            f"HotspotTuningState({self.hotspot!r}, cus={self.cu_names}, "
            f"phase={self.phase.value}, trials={len(self.outcomes)}/"
            f"{len(self.config_list)}, best={self.best and self.best.config})"
        )
