"""High-level facade over the ACE management framework.

:class:`ACEFramework` bundles the pieces a user needs to run the paper's
scheme over their own program: it builds the machine, wires the hotspot
policy into a VM, runs it, and reports energy/performance against an
equivalent static-maximum baseline.  The examples and the quickstart use
this API; the benchmark harness drives the lower layers directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.policy import HotspotACEPolicy, HotspotPolicyStats
from repro.core.prediction import FootprintPredictor, install_program_for_prediction
from repro.isa.program import Program
from repro.sim.config import MachineConfig, TuningConfig, build_machine
from repro.vm.vm import AdaptationHooks, VMConfig, VirtualMachine


@dataclass
class ACEReport:
    """Outcome of one adaptive run vs. its static baseline.

    Both runs retire the same instruction budget (give or take one block at
    the stopping boundary), so energies and cycles are compared
    per-instruction.
    """

    instructions: int
    baseline_instructions: int
    adaptive_cycles: float
    baseline_cycles: float
    l1d_energy_nj: float
    l2_energy_nj: float
    baseline_l1d_energy_nj: float
    baseline_l2_energy_nj: float
    policy_stats: HotspotPolicyStats
    hotspots_detected: int

    def _per_insn_reduction(self, adaptive: float, baseline: float) -> float:
        if (
            baseline <= 0
            or self.instructions <= 0
            or self.baseline_instructions <= 0
        ):
            return 0.0
        adaptive_rate = adaptive / self.instructions
        baseline_rate = baseline / self.baseline_instructions
        return 1.0 - adaptive_rate / baseline_rate

    @property
    def l1d_energy_reduction(self) -> float:
        return self._per_insn_reduction(
            self.l1d_energy_nj, self.baseline_l1d_energy_nj
        )

    @property
    def l2_energy_reduction(self) -> float:
        return self._per_insn_reduction(
            self.l2_energy_nj, self.baseline_l2_energy_nj
        )

    @property
    def slowdown(self) -> float:
        """Relative CPI increase of the adaptive run over the baseline."""
        reduction = self._per_insn_reduction(
            self.adaptive_cycles, self.baseline_cycles
        )
        return -reduction

    def summary(self) -> str:
        return (
            f"L1D energy -{self.l1d_energy_reduction:.1%}, "
            f"L2 energy -{self.l2_energy_reduction:.1%}, "
            f"slowdown {self.slowdown:+.2%}, "
            f"{self.hotspots_detected} hotspots "
            f"({self.policy_stats.tuned_hotspots} tuned)"
        )


class ACEFramework:
    """Run a program under DO-based ACE management.

    Typical use::

        framework = ACEFramework()
        report = framework.run(program, max_instructions=1_000_000)
        print(report.summary())
    """

    def __init__(
        self,
        machine_config: Optional[MachineConfig] = None,
        tuning: Optional[TuningConfig] = None,
        vm_config: Optional[VMConfig] = None,
        use_prediction: bool = False,
        decoupling: bool = True,
    ):
        self.machine_config = machine_config or MachineConfig()
        self.tuning = tuning or TuningConfig()
        self.vm_config = vm_config or VMConfig()
        self.use_prediction = use_prediction
        self.decoupling = decoupling

    def _run_once(
        self,
        program: Program,
        policy: AdaptationHooks,
        max_instructions: int,
        thread_entries: Optional[Sequence[str]],
        with_prediction: bool = False,
    ) -> VirtualMachine:
        machine = build_machine(self.machine_config)
        if with_prediction:
            install_program_for_prediction(machine, program)
        vm = VirtualMachine(
            program,
            machine,
            policy=policy,
            config=self.vm_config,
            thread_entries=thread_entries,
        )
        vm.run(max_instructions)
        return vm

    def run(
        self,
        program: Program,
        max_instructions: int,
        thread_entries: Optional[Sequence[str]] = None,
    ) -> ACEReport:
        """Run adaptively and against the static baseline; return the report."""
        predictor = FootprintPredictor() if self.use_prediction else None
        policy = HotspotACEPolicy(
            tuning=self.tuning,
            predictor=predictor,
            decoupling=self.decoupling,
        )
        adaptive = self._run_once(
            program,
            policy,
            max_instructions,
            thread_entries,
            with_prediction=self.use_prediction,
        )
        baseline = self._run_once(
            program, AdaptationHooks(), max_instructions, thread_entries
        )
        stats = policy.finalize()
        return ACEReport(
            instructions=adaptive.machine.instructions,
            baseline_instructions=baseline.machine.instructions,
            adaptive_cycles=adaptive.machine.cycles,
            baseline_cycles=baseline.machine.cycles,
            l1d_energy_nj=adaptive.machine.energy.l1d.total_nj,
            l2_energy_nj=adaptive.machine.energy.l2.total_nj,
            baseline_l1d_energy_nj=baseline.machine.energy.l1d.total_nj,
            baseline_l2_energy_nj=baseline.machine.energy.l2.total_nj,
            policy_stats=stats,
            hotspots_detected=len(adaptive.database.hotspots),
        )

    def compare(
        self,
        program: Program,
        max_instructions: int,
        thread_entries: Optional[Sequence[str]] = None,
        schemes: Sequence[str] = ("hotspot", "bbv"),
    ) -> Dict[str, ACEReport]:
        """Run several adaptation schemes on one program.

        Each scheme is compared against the same static-maximum baseline;
        returns scheme name -> :class:`ACEReport`.  Recognised schemes:
        ``hotspot`` (the paper's framework), ``bbv`` (the temporal
        baseline), ``positional`` (large-procedure adaptation).
        """
        from repro.phases.policy import BBVACEPolicy
        from repro.phases.positional import PositionalACEPolicy

        def build_policy(scheme: str) -> AdaptationHooks:
            if scheme == "hotspot":
                return HotspotACEPolicy(
                    tuning=self.tuning, decoupling=self.decoupling
                )
            if scheme == "bbv":
                return BBVACEPolicy(tuning=self.tuning)
            if scheme == "positional":
                return PositionalACEPolicy(tuning=self.tuning)
            raise ValueError(
                f"unknown scheme {scheme!r}; expected one of "
                "'hotspot', 'bbv', 'positional'"
            )

        baseline = self._run_once(
            program, AdaptationHooks(), max_instructions, thread_entries
        )
        reports: Dict[str, ACEReport] = {}
        for scheme in schemes:
            policy = build_policy(scheme)
            adaptive = self._run_once(
                program, policy, max_instructions, thread_entries
            )
            stats = (
                policy.finalize()
                if hasattr(policy, "finalize")
                else HotspotPolicyStats()
            )
            if not isinstance(stats, HotspotPolicyStats):
                stats = HotspotPolicyStats()  # BBV stats differ in shape
            reports[scheme] = ACEReport(
                instructions=adaptive.machine.instructions,
                baseline_instructions=baseline.machine.instructions,
                adaptive_cycles=adaptive.machine.cycles,
                baseline_cycles=baseline.machine.cycles,
                l1d_energy_nj=adaptive.machine.energy.l1d.total_nj,
                l2_energy_nj=adaptive.machine.energy.l2.total_nj,
                baseline_l1d_energy_nj=baseline.machine.energy.l1d.total_nj,
                baseline_l2_energy_nj=baseline.machine.energy.l2.total_nj,
                policy_stats=stats,
                hotspots_detected=len(adaptive.database.hotspots),
            )
        return reports

    def describe(self) -> Dict[str, object]:
        """Human-readable configuration snapshot (docs/examples)."""
        params = self.machine_config.params
        return {
            "scale": params.scale,
            "l1d_interval": params.l1d_reconfig_interval,
            "l2_interval": params.l2_reconfig_interval,
            "l1d_hotspot_band": (
                params.l1d_hotspot_min, params.l1d_hotspot_max
            ),
            "l2_hotspot_min": params.l2_hotspot_min,
            "performance_threshold": self.tuning.performance_threshold,
            "hot_threshold": self.vm_config.hot_threshold,
            "prediction": self.use_prediction,
            "decoupling": self.decoupling,
        }
