"""JIT configuration prediction (the paper's future-work sketch, §6).

"One could use the JIT compiler in the DO system to provide a good estimate
for the resource configuration required for this hotspot through
appropriate code analysis.  Such a feature could potentially completely
eliminate the tuning latency and overhead."

The reproduction implements the natural concrete form of that idea: the
JIT statically inspects the hotspot method's declared memory behaviours
(their working-set footprints are visible in the IR) and predicts, per
cache CU, the smallest size comfortably holding the method's footprint.
The prediction is hoisted to the front of the tuning list
(:func:`repro.core.tuning.make_config_list`), so a correct prediction ends
tuning after two trials instead of four (or sixteen).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.vm.hotspot import HotspotInfo


class FootprintPredictor:
    """Predicts a per-CU setting from static memory-footprint analysis.

    ``headroom`` scales the analysed footprint before choosing a size
    (conflict misses make a cache exactly the size of the working set
    perform poorly); ``callee_depth`` controls how many call-graph levels
    of footprints are merged in (nested hotspots mean callees mostly tune
    their own caches, so the default is shallow).
    """

    def __init__(self, headroom: float = 1.5, callee_depth: int = 1):
        if headroom < 1.0:
            raise ValueError(f"headroom must be >= 1.0, got {headroom}")
        if callee_depth < 0:
            raise ValueError(f"callee_depth must be >= 0: {callee_depth}")
        self.headroom = headroom
        self.callee_depth = callee_depth
        self.predictions = 0

    # -- static analysis ----------------------------------------------------

    def analysed_footprint(self, method, program, depth: Optional[int] = None) -> int:
        """Bytes of data the method (and shallow callees) can touch."""
        if depth is None:
            depth = self.callee_depth
        footprint = 0
        for block in method.blocks.values():
            if block.memory is not None:
                span = block.memory.footprint()
                if span is not None:
                    footprint = max(footprint, span)
        if depth > 0:
            for callee_name in method.callees():
                callee = program.methods.get(callee_name)
                if callee is not None:
                    footprint = max(
                        footprint,
                        self.analysed_footprint(callee, program, depth - 1),
                    )
        return footprint

    # -- prediction -----------------------------------------------------------

    def predict(
        self, hotspot: HotspotInfo, cu_names: Tuple[str, ...], machine
    ) -> Optional[Tuple[int, ...]]:
        """Predicted configuration for the hotspot's CU subset.

        Returns None when nothing useful can be analysed (no declared
        memory behaviour), in which case tuning proceeds unseeded.
        """
        vm_program = getattr(machine, "_program_for_prediction", None)
        if vm_program is None:
            return None
        method = vm_program.methods.get(hotspot.name)
        if method is None:
            return None
        footprint = self.analysed_footprint(method, vm_program)
        if footprint <= 0:
            return None
        target = footprint * self.headroom
        prediction = []
        for cu_name in cu_names:
            cu = machine.cus[cu_name]
            sizes = cu.settings  # largest first
            index = 0
            for i, size in enumerate(sizes):
                if isinstance(size, int) and size >= target:
                    index = i
                else:
                    break
            prediction.append(index)
        self.predictions += 1
        return tuple(prediction)


def install_program_for_prediction(machine, program) -> None:
    """Expose the program IR to the predictor (the JIT sees the code it
    compiles; the machine object is just a convenient rendezvous)."""
    machine._program_for_prediction = program
