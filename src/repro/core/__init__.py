"""The paper's primary contribution: DO-based ACE management.

The framework (paper §3) manages multiple configurable units by exploiting
the DO system's hotspot machinery:

* :mod:`repro.core.cu_assignment` — CU decoupling (§3.2.1): each hotspot is
  matched with the subset of CUs whose reconfiguration interval is in the
  same range as the hotspot's dynamic size.
* :mod:`repro.core.tuning` — per-hotspot tuning state machines (§3.2.2):
  configuration lists, the performance-threshold early exit, and selection
  of the most energy-efficient configuration.
* :mod:`repro.core.policy` — the adaptation policy wiring it into the VM:
  tuning code at hotspot entries, profiling code at exits, configuration
  code after tuning, and sampling code for drift-triggered re-tuning
  (§3.3).
* :mod:`repro.core.prediction` — the conclusion's future-work sketch: JIT
  static analysis seeding the tuning list with a predicted configuration.
"""

from repro.core.cu_assignment import CUAssignment, SizeClassifier
from repro.core.tuning import (
    HotspotTuningState,
    TuningOutcome,
    TuningPhase,
    choose_best,
    make_config_list,
)
from repro.core.policy import HotspotACEPolicy, HotspotPolicyStats
from repro.core.prediction import FootprintPredictor
from repro.core.framework import ACEFramework

__all__ = [
    "ACEFramework",
    "CUAssignment",
    "FootprintPredictor",
    "HotspotACEPolicy",
    "HotspotPolicyStats",
    "HotspotTuningState",
    "SizeClassifier",
    "TuningOutcome",
    "TuningPhase",
    "choose_best",
    "make_config_list",
]
