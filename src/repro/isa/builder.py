"""Fluent builders for programs and methods.

Workload generators construct thousands of blocks; the builders keep that
terse while guaranteeing structural consistency (every block gets a
terminator, entry defaults to the first block, programs are validated and
laid out on ``build``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.isa.instructions import InstructionMix
from repro.isa.program import (
    BasicBlock,
    BranchDecider,
    CallSite,
    CondBranch,
    DataRegion,
    Goto,
    LoopDecider,
    MemoryBehavior,
    Method,
    Program,
    ProgramValidationError,
    Return,
    TripSource,
)


class MethodBuilder:
    """Builds one method block by block."""

    def __init__(self, name: str, program: Optional["ProgramBuilder"] = None):
        self.name = name
        self._program = program
        self._blocks: List[BasicBlock] = []
        self._entry: Optional[str] = None
        self._region: Optional[DataRegion] = None
        self._attributes: Dict[str, object] = {}

    # -- method-level configuration ------------------------------------

    def region(self, base: int, size: int) -> "MethodBuilder":
        """Declare the method's heap working-set region."""
        self._region = DataRegion(base, size)
        return self

    def attribute(self, key: str, value: object) -> "MethodBuilder":
        self._attributes[key] = value
        return self

    def entry(self, bid: str) -> "MethodBuilder":
        self._entry = bid
        return self

    # -- block constructors ---------------------------------------------

    def _add(self, block: BasicBlock) -> "MethodBuilder":
        self._blocks.append(block)
        if self._entry is None:
            self._entry = block.bid
        return self

    def block(
        self,
        bid: str,
        insns: int,
        terminator,
        loads: int = 0,
        stores: int = 0,
        memory: Optional[MemoryBehavior] = None,
        calls: Sequence[str] = (),
    ) -> "MethodBuilder":
        """Add a fully explicit block."""
        mix = InstructionMix(total=insns, loads=loads, stores=stores)
        sites = [CallSite(c) for c in calls]
        return self._add(BasicBlock(bid, mix, terminator, memory, sites))

    def straight(
        self,
        bid: str,
        insns: int,
        next_bid: str,
        loads: int = 0,
        stores: int = 0,
        memory: Optional[MemoryBehavior] = None,
        calls: Sequence[str] = (),
    ) -> "MethodBuilder":
        """Straight-line block falling through to ``next_bid``."""
        return self.block(
            bid, insns, Goto(next_bid), loads, stores, memory, calls
        )

    def loop(
        self,
        bid: str,
        insns: int,
        trips: TripSource,
        exit_bid: str,
        loads: int = 0,
        stores: int = 0,
        memory: Optional[MemoryBehavior] = None,
        calls: Sequence[str] = (),
        body_bid: Optional[str] = None,
    ) -> "MethodBuilder":
        """Self-loop block: repeats ``trips`` times then exits to ``exit_bid``.

        ``body_bid`` lets the back edge target another block (multi-block
        loop bodies); it defaults to ``bid`` itself.
        """
        term = CondBranch(body_bid or bid, exit_bid, LoopDecider(trips))
        return self.block(bid, insns, term, loads, stores, memory, calls)

    def branch(
        self,
        bid: str,
        insns: int,
        decider: BranchDecider,
        taken: str,
        fallthrough: str,
        loads: int = 0,
        stores: int = 0,
        memory: Optional[MemoryBehavior] = None,
        calls: Sequence[str] = (),
    ) -> "MethodBuilder":
        """General two-way conditional block."""
        term = CondBranch(taken, fallthrough, decider)
        return self.block(bid, insns, term, loads, stores, memory, calls)

    def ret(
        self,
        bid: str,
        insns: int = 1,
        loads: int = 0,
        stores: int = 0,
        memory: Optional[MemoryBehavior] = None,
        calls: Sequence[str] = (),
    ) -> "MethodBuilder":
        """Returning block."""
        return self.block(bid, insns, Return(), loads, stores, memory, calls)

    # -- finalization ----------------------------------------------------

    def build(self) -> Method:
        if not self._blocks:
            raise ProgramValidationError(
                f"method {self.name!r} has no blocks"
            )
        assert self._entry is not None
        return Method(
            self.name,
            self._blocks,
            self._entry,
            region=self._region,
            attributes=self._attributes,
        )

    def done(self) -> "ProgramBuilder":
        """Finish this method and return to the enclosing program builder."""
        if self._program is None:
            raise RuntimeError(
                "done() requires the builder to be created via "
                "ProgramBuilder.method()"
            )
        self._program.add(self.build())
        return self._program


class ProgramBuilder:
    """Builds a whole program; ``build`` validates and lays it out."""

    def __init__(self, entry: str = "main"):
        self._entry = entry
        self._methods: List[Method] = []

    def method(self, name: str) -> MethodBuilder:
        return MethodBuilder(name, program=self)

    def add(self, method: Method) -> "ProgramBuilder":
        self._methods.append(method)
        return self

    def build(self, base: int = Program.CODE_BASE) -> Program:
        return Program(self._methods, self._entry).validated(base)
