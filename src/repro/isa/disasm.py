"""Disassembly / pretty-printing of mini-ISA programs.

Round-trips the structural subset of the assembly format: the emitted text
re-assembles to a program with identical block structure and instruction
mixes (memory behaviours print as comments since they may be arbitrary
objects).
"""

from __future__ import annotations

from typing import List

from repro.isa.program import (
    AlternatingDecider,
    CondBranch,
    Goto,
    LoopDecider,
    Method,
    Program,
    RandomDecider,
    Return,
)


def _terminator_text(block) -> str:
    term = block.terminator
    if isinstance(term, Goto):
        return f"goto {term.target}"
    if isinstance(term, Return):
        return "ret"
    if isinstance(term, CondBranch):
        decider = term.decider
        if isinstance(decider, LoopDecider) and isinstance(decider.trips, int):
            if term.taken == block.bid:
                return f"loop trips={decider.trips} exit={term.fallthrough}"
            return (
                f"loop trips={decider.trips} exit={term.fallthrough} "
                f"body={term.taken}"
            )
        if isinstance(decider, AlternatingDecider):
            return (
                f"branch taken={term.taken} fall={term.fallthrough} "
                f"alt={decider.period}"
            )
        if isinstance(decider, RandomDecider):
            return (
                f"branch taken={term.taken} fall={term.fallthrough} "
                f"p={decider.p_taken}"
            )
        return (
            f"branch taken={term.taken} fall={term.fallthrough} "
            f"p=0.5  # decider: {decider!r}"
        )
    raise TypeError(f"unknown terminator {term!r}")


def disassemble_method(method: Method, listing: bool = False) -> str:
    """Render one method as assembly text.

    With ``listing=True``, the synthesized concrete instruction listing of
    each block is included as comments.
    """
    lines: List[str] = [f"method {method.name} {{"]
    if method.region is not None:
        lines.append(
            f"    region {method.region.base:#x} {method.region.size}"
        )
    if method.entry != next(iter(method.blocks)):
        lines.append(f"    entry {method.entry}")
    for key, value in sorted(method.attributes.items()):
        lines.append(f"    attr {key} {value}")
    for block in method.blocks.values():
        lines.append(f"    block {block.bid} {{")
        lines.append(f"        insns {block.mix.total}")
        if block.mix.loads:
            lines.append(f"        loads {block.mix.loads}")
        if block.mix.stores:
            lines.append(f"        stores {block.mix.stores}")
        if block.memory is not None:
            lines.append(f"        # mem {block.memory!r}")
        for site in block.calls:
            lines.append(f"        call {site.callee}")
        lines.append(f"        {_terminator_text(block)}")
        if listing:
            for instr in block.instructions():
                lines.append(f"        # {instr}")
        lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def disassemble_program(program: Program, listing: bool = False) -> str:
    """Render a whole program as assembly text."""
    parts = [f"entry {program.entry}", ""]
    parts.extend(
        disassemble_method(m, listing=listing)
        for m in program.methods.values()
    )
    return "\n\n".join(parts) + "\n"
