"""Instruction-level definitions for the mini ISA.

Instructions exist for fidelity and tooling: the interpreter executes blocks
from their aggregate profiles, but every block can be *lowered* to a concrete
instruction listing consistent with those aggregates
(:func:`synthesize_instructions`), and the assembler/disassembler round-trip
through this representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple


class Opcode(Enum):
    """Opcodes of the mini ISA.

    The set mirrors the functional-unit classes of the paper's baseline
    machine (Table 2): integer ALUs, integer multiply/divide, FP ALUs, FP
    multiply/divide, plus memory and control-flow operations.
    """

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FPALU = "fpalu"
    FPMUL = "fpmul"
    FPDIV = "fpdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    CALL = "call"
    RET = "ret"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (Opcode.LOAD, Opcode.STORE)

    @property
    def is_control(self) -> bool:
        return self in (Opcode.BRANCH, Opcode.JUMP, Opcode.CALL, Opcode.RET)


#: Default fractional mix of computational opcodes used when synthesizing a
#: concrete listing from an aggregate block profile.  Roughly mirrors the
#: integer-dominated mix of SPECjvm98 code.
DEFAULT_COMPUTE_MIX: Tuple[Tuple[Opcode, float], ...] = (
    (Opcode.ALU, 0.72),
    (Opcode.MUL, 0.06),
    (Opcode.DIV, 0.02),
    (Opcode.FPALU, 0.14),
    (Opcode.FPMUL, 0.05),
    (Opcode.FPDIV, 0.01),
)


@dataclass(frozen=True)
class Instruction:
    """A single mini-ISA instruction.

    ``pc`` is assigned when the enclosing program is laid out
    (:meth:`repro.isa.program.Program.layout`); before layout it is ``None``.
    """

    opcode: Opcode
    operands: Tuple[str, ...] = ()
    pc: Optional[int] = None

    def with_pc(self, pc: int) -> "Instruction":
        return Instruction(self.opcode, self.operands, pc)

    def __str__(self) -> str:
        ops = ", ".join(self.operands)
        text = self.opcode.value if not ops else f"{self.opcode.value} {ops}"
        if self.pc is not None:
            return f"{self.pc:#010x}: {text}"
        return text


@dataclass
class InstructionMix:
    """Aggregate instruction counts of a basic block.

    This is the profile the interpreter actually replays; a concrete listing
    is only a consistent expansion of it.
    """

    total: int
    loads: int = 0
    stores: int = 0
    branches: int = 0
    calls: int = 0
    compute_mix: Tuple[Tuple[Opcode, float], ...] = field(
        default=DEFAULT_COMPUTE_MIX
    )

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError(f"negative instruction count: {self.total}")
        for name in ("loads", "stores", "branches", "calls"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"negative {name} count: {value}")
        if self.non_compute > self.total:
            raise ValueError(
                "memory/control instructions "
                f"({self.non_compute}) exceed block total ({self.total})"
            )

    @property
    def non_compute(self) -> int:
        return self.loads + self.stores + self.branches + self.calls

    @property
    def compute(self) -> int:
        return self.total - self.non_compute

    @property
    def memory_refs(self) -> int:
        return self.loads + self.stores


def _compute_opcode_counts(
    mix: InstructionMix,
) -> List[Tuple[Opcode, int]]:
    """Split ``mix.compute`` instructions across compute opcodes.

    Uses largest-remainder apportionment so the counts always sum exactly to
    ``mix.compute``.
    """
    n = mix.compute
    if n == 0:
        return []
    raw = [(op, frac * n) for op, frac in mix.compute_mix]
    floors = [(op, int(x)) for op, x in raw]
    assigned = sum(c for _, c in floors)
    remainders = sorted(
        range(len(raw)),
        key=lambda i: raw[i][1] - floors[i][1],
        reverse=True,
    )
    counts = [c for _, c in floors]
    for i in remainders[: n - assigned]:
        counts[i] += 1
    return [
        (op, count)
        for (op, _), count in zip(floors, counts)
        if count > 0
    ]


def synthesize_instructions(mix: InstructionMix) -> List[Instruction]:
    """Expand an aggregate block profile into a concrete instruction listing.

    The listing interleaves memory and compute operations (memory operations
    spread through the block rather than clustered at one end) and places
    calls and the terminating branch last, matching how the interpreter
    sequences block side effects.
    """
    body: List[Instruction] = []
    for opcode, count in _compute_opcode_counts(mix):
        body.extend(Instruction(opcode) for _ in range(count))
    memory = [Instruction(Opcode.LOAD) for _ in range(mix.loads)]
    memory.extend(Instruction(Opcode.STORE) for _ in range(mix.stores))

    # Interleave memory references through the compute body at an even
    # stride so the listing looks like scheduled code, not two runs.
    listing: List[Instruction] = []
    if memory:
        stride = max(1, (len(body) + len(memory)) // len(memory))
        mem_iter = iter(memory)
        pending = next(mem_iter, None)
        for i, instr in enumerate(body):
            listing.append(instr)
            if pending is not None and (i + 1) % stride == 0:
                listing.append(pending)
                pending = next(mem_iter, None)
        if pending is not None:
            listing.append(pending)
        listing.extend(mem_iter)
    else:
        listing = body

    listing.extend(Instruction(Opcode.CALL) for _ in range(mix.calls))
    listing.extend(Instruction(Opcode.BRANCH) for _ in range(mix.branches))
    if len(listing) < mix.total:
        listing.extend(
            Instruction(Opcode.NOP) for _ in range(mix.total - len(listing))
        )
    return listing
