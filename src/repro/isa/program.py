"""Program representation: basic blocks, control flow, methods, programs.

Programs in the reproduction are block-structured CFGs.  Each basic block
carries an aggregate :class:`~repro.isa.instructions.InstructionMix`, an
optional :class:`MemoryBehavior` that generates the block's data addresses,
zero or more call sites, and a terminator describing control flow out of the
block.  Conditional terminators resolve their direction through a *decider*
object, which lets workloads express loops with data-dependent trip counts,
biased branches, and phase-alternating control flow deterministically.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.isa.instructions import Instruction, InstructionMix, synthesize_instructions

#: Byte size of one encoded instruction; PCs advance by this much.
INSTRUCTION_BYTES = 4


class ProgramValidationError(Exception):
    """Raised when a program's structure is inconsistent."""


@dataclass(frozen=True)
class DataRegion:
    """A contiguous data region owned by a method (its heap working set)."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"data region size must be positive: {self.size}")
        if self.base < 0:
            raise ValueError(f"data region base must be non-negative: {self.base}")

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class MemoryBehavior(abc.ABC):
    """Generates the data addresses a block touches on one execution.

    Implementations live in :mod:`repro.workloads.patterns`; the interpreter
    only relies on this interface.  ``generate`` returns two address lists —
    loads and stores — and must be deterministic given the supplied RNG
    state, so whole runs replay bit-identically from a seed.
    """

    #: True when ``generate`` depends on the per-block ``iteration``
    #: counter (streaming/windowed patterns).  Purely random patterns
    #: override this with False, which lets the fast kernel skip the
    #: counter's per-execution maintenance entirely — the value it
    #: would have passed is unobservable.
    uses_iteration = True

    @abc.abstractmethod
    def generate(
        self,
        rng,
        frame_base: int,
        region_base: int,
        iteration: int,
        n_loads: int,
        n_stores: int,
    ) -> Tuple[List[int], List[int]]:
        """Produce ``(load_addresses, store_addresses)`` for one execution.

        ``rng`` is the activation's private random stream, ``frame_base`` the
        activation's stack-frame address, ``region_base`` the enclosing
        method's heap-region base (0 if the method has none), and
        ``iteration`` a per-activation execution counter for this block
        (drives strided/streaming patterns).  ``n_loads``/``n_stores`` come
        from the block's instruction mix; implementations must return exactly
        that many addresses of each kind.
        """

    def footprint(self) -> Optional[int]:
        """Approximate byte working set, if statically known (for docs/tests)."""
        return None

    def compile_fast(self, n_loads: int, n_stores: int):
        """Optional specialised generator for the fast simulation kernel.

        Returns a callable ``(rng, frame_base, region_base, iteration) ->
        (loads, stores)`` that produces *exactly* the addresses (and the
        exact RNG draw sequence) :meth:`generate` would for the given
        fixed ``n_loads``/``n_stores``, or ``None`` when no
        specialisation exists (the fast kernel then falls back to
        :meth:`generate`).  Block reference counts are static, so the
        fast kernel compiles one specialised closure per block at decode
        time (see :class:`repro.vm.jit.DecodedBlock`).
        """
        return None

    def turbo_columns(self, n_loads: int, n_stores: int):
        """Optional static address-column description for the turbo kernel.

        Returns one descriptor tuple per address column, loads first then
        stores (``n_loads + n_stores`` entries), or ``None`` (the default)
        if the behaviour cannot be vectorized.  Each descriptor's first
        element names the column class; ``base`` is ``"frame"`` (the
        activation's frame base) or ``"region"`` (the method's region
        base), displaced by ``off`` bytes:

        - ``("unif", base, off, n)`` — ``BASE + off + U[0, n) * WORD``
        - ``("mix", base, off, locality, n_hot, n_span)`` — with
          probability ``locality`` the uniform draw spans ``n_hot`` words,
          otherwise ``n_span``
        - ``("wind", base, off, n, drift, span)`` —
          ``BASE + off + ((it * drift) % span + U[0, n) * WORD) % span``
        - ``("det", base, off, coef, step, span)`` —
          ``BASE + off + (it * coef + step) % span`` (no randomness)

        The turbo kernel pre-draws whole tables of column values from a
        numpy ``Generator``: same marginal *distribution* as
        :meth:`generate`, not the same sequence, so turbo results deviate
        statistically from fast/reference (the tolerance contract,
        docs/INTERNALS.md §17).
        """
        return None


# ---------------------------------------------------------------------------
# Branch deciders
# ---------------------------------------------------------------------------


class BranchDecider(abc.ABC):
    """Decides the direction of a conditional terminator.

    Deciders are *stateless descriptors*: per-activation state lives in the
    interpreter, keyed by block, so the same program object can execute in
    many activations (and threads) concurrently.  Subclasses that set
    ``persistent = True`` get state keyed per (thread, method, block)
    instead, surviving across invocations.
    """

    persistent = False

    @abc.abstractmethod
    def initial_state(self, rng) -> object:
        """Create per-activation decider state (called on first execution)."""

    @abc.abstractmethod
    def decide(self, state: object, rng) -> Tuple[bool, object]:
        """Return ``(taken, new_state)`` for one execution of the branch."""


TripSource = Union[int, Callable[[object], int]]


class LoopDecider(BranchDecider):
    """Back-edge decider: taken while the activation's trip budget remains.

    ``trips`` is either a fixed trip count or a callable drawing a trip count
    from the activation RNG each time the loop is (re-)entered.  The branch
    is *taken* (loops) ``trips - 1`` times, then falls through once and the
    budget re-arms, so re-entering the loop later in the same activation
    behaves like a fresh loop.
    """

    def __init__(self, trips: TripSource):
        if isinstance(trips, int) and trips < 1:
            raise ValueError(f"loop trip count must be >= 1, got {trips}")
        self.trips = trips

    def _draw(self, rng) -> int:
        if callable(self.trips):
            value = int(self.trips(rng))
            return max(1, value)
        return self.trips

    def initial_state(self, rng) -> int:
        return self._draw(rng)

    def decide(self, state: int, rng) -> Tuple[bool, int]:
        remaining = state - 1
        if remaining <= 0:
            return False, self._draw(rng)  # fall through; re-arm
        return True, remaining

    def __repr__(self) -> str:
        return f"LoopDecider(trips={self.trips!r})"


class RandomDecider(BranchDecider):
    """Takes the branch with fixed probability (models data-dependent code)."""

    def __init__(self, p_taken: float):
        if not 0.0 <= p_taken <= 1.0:
            raise ValueError(f"p_taken must be in [0, 1], got {p_taken}")
        self.p_taken = p_taken

    def initial_state(self, rng) -> None:
        return None

    def decide(self, state: None, rng) -> Tuple[bool, None]:
        return rng.random() < self.p_taken, None

    def __repr__(self) -> str:
        return f"RandomDecider(p_taken={self.p_taken})"


class AlternatingDecider(BranchDecider):
    """Taken for ``period`` executions, then not taken for ``period``, etc.

    Produces perfectly periodic control flow — the easiest prey for the
    2-bit predictor and a building block for phase-alternating workloads.
    """

    #: Where the decider's counter lives: per-activation by default, or —
    #: for subclasses with ``persistent = True`` — per (thread, method,
    #: block), surviving across invocations.
    persistent = False

    def __init__(self, period: int = 1):
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        self.period = period

    def initial_state(self, rng) -> int:
        return 0

    def decide(self, state: int, rng) -> Tuple[bool, int]:
        taken = (state // self.period) % 2 == 0
        return taken, state + 1

    def __repr__(self) -> str:
        return f"{type(self).__name__}(period={self.period})"


class PersistentAlternatingDecider(AlternatingDecider):
    """Alternating decider whose counter survives across invocations.

    A method invoked for a handful of loop iterations at a time still
    alternates through its branch targets in long runs — the pattern of a
    worker that processes a few items per call from a progressing
    workload.  State is kept per (thread, method, block) by the
    interpreter.
    """

    persistent = True


class PeriodicDecider(BranchDecider):
    """Cycles through an explicit boolean outcome pattern."""

    def __init__(self, pattern: Sequence[bool]):
        if not pattern:
            raise ValueError("pattern must be non-empty")
        self.pattern = tuple(bool(x) for x in pattern)

    def initial_state(self, rng) -> int:
        return 0

    def decide(self, state: int, rng) -> Tuple[bool, int]:
        return self.pattern[state % len(self.pattern)], state + 1

    def __repr__(self) -> str:
        return f"PeriodicDecider(pattern={self.pattern!r})"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Goto:
    """Unconditional jump to another block of the same method."""

    target: str


@dataclass(frozen=True)
class CondBranch:
    """Two-way conditional branch resolved by a decider."""

    taken: str
    fallthrough: str
    decider: BranchDecider = field(compare=False)


@dataclass(frozen=True)
class Return:
    """Return from the enclosing method."""


Terminator = Union[Goto, CondBranch, Return]


@dataclass(frozen=True)
class CallSite:
    """A call to another method, executed after the block body."""

    callee: str


# ---------------------------------------------------------------------------
# Blocks, methods, programs
# ---------------------------------------------------------------------------


class BasicBlock:
    """A basic block: aggregate profile + memory behaviour + terminator.

    ``mix.branches`` and ``mix.calls`` are derived from the terminator and
    call sites if left at zero, keeping profiles consistent by construction.
    """

    def __init__(
        self,
        bid: str,
        mix: InstructionMix,
        terminator: Terminator,
        memory: Optional[MemoryBehavior] = None,
        calls: Sequence[CallSite] = (),
    ):
        if not bid:
            raise ValueError("block id must be non-empty")
        self.bid = bid
        self.calls: Tuple[CallSite, ...] = tuple(calls)
        self.terminator = terminator

        has_branch = isinstance(terminator, (Goto, CondBranch))
        branches = mix.branches or (1 if has_branch else 0)
        n_calls = mix.calls or len(self.calls)
        self.mix = InstructionMix(
            total=max(mix.total, mix.loads + mix.stores + branches + n_calls),
            loads=mix.loads,
            stores=mix.stores,
            branches=branches,
            calls=n_calls,
            compute_mix=mix.compute_mix,
        )
        self.memory = memory

        # Filled in by Program.layout():
        self.base_pc: Optional[int] = None
        self.branch_pc: Optional[int] = None
        self._instructions: Optional[List[Instruction]] = None

    @property
    def n_instructions(self) -> int:
        return self.mix.total

    @property
    def is_conditional(self) -> bool:
        return isinstance(self.terminator, CondBranch)

    def successors(self) -> List[str]:
        term = self.terminator
        if isinstance(term, Goto):
            return [term.target]
        if isinstance(term, CondBranch):
            return [term.taken, term.fallthrough]
        return []

    def instructions(self) -> List[Instruction]:
        """Concrete listing consistent with the aggregate profile.

        Synthesized lazily; PCs are attached if the program has been laid
        out.
        """
        if self._instructions is None:
            listing = synthesize_instructions(self.mix)
            if self.base_pc is not None:
                listing = [
                    ins.with_pc(self.base_pc + i * INSTRUCTION_BYTES)
                    for i, ins in enumerate(listing)
                ]
            self._instructions = listing
        return self._instructions

    def __repr__(self) -> str:
        return (
            f"BasicBlock({self.bid!r}, insns={self.mix.total}, "
            f"loads={self.mix.loads}, stores={self.mix.stores}, "
            f"term={type(self.terminator).__name__})"
        )


class Method:
    """A method: an entry block plus a CFG of basic blocks.

    ``region`` describes the method's heap working set; memory behaviours of
    its blocks typically draw addresses from it.  ``code_footprint`` (bytes)
    feeds the analytic L1I model in the machine.
    """

    def __init__(
        self,
        name: str,
        blocks: Iterable[BasicBlock],
        entry: str,
        region: Optional[DataRegion] = None,
        attributes: Optional[Dict[str, object]] = None,
    ):
        if not name:
            raise ValueError("method name must be non-empty")
        self.name = name
        self.blocks: Dict[str, BasicBlock] = {}
        for block in blocks:
            if block.bid in self.blocks:
                raise ProgramValidationError(
                    f"duplicate block id {block.bid!r} in method {name!r}"
                )
            self.blocks[block.bid] = block
        if entry not in self.blocks:
            raise ProgramValidationError(
                f"entry block {entry!r} not found in method {name!r}"
            )
        self.entry = entry
        self.region = region
        self.attributes: Dict[str, object] = dict(attributes or {})
        self.code_base: Optional[int] = None
        self._static_insns: Optional[int] = None

    @property
    def static_instruction_count(self) -> int:
        # Cached: the VM reads this (via code_footprint) on every method
        # invocation, and block mixes are immutable after construction.
        count = self._static_insns
        if count is None:
            count = sum(b.n_instructions for b in self.blocks.values())
            self._static_insns = count
        return count

    @property
    def code_footprint(self) -> int:
        """Static code size in bytes."""
        return self.static_instruction_count * INSTRUCTION_BYTES

    def callees(self) -> List[str]:
        seen: List[str] = []
        for block in self.blocks.values():
            for site in block.calls:
                if site.callee not in seen:
                    seen.append(site.callee)
        return seen

    def validate(self) -> None:
        for block in self.blocks.values():
            for target in block.successors():
                if target not in self.blocks:
                    raise ProgramValidationError(
                        f"method {self.name!r}: block {block.bid!r} targets "
                        f"unknown block {target!r}"
                    )
        # Every block must be able to reach a Return, otherwise an
        # activation could never terminate.
        returning = {
            bid
            for bid, b in self.blocks.items()
            if isinstance(b.terminator, Return)
        }
        if not returning:
            raise ProgramValidationError(
                f"method {self.name!r} has no returning block"
            )
        preds: Dict[str, List[str]] = {bid: [] for bid in self.blocks}
        for bid, block in self.blocks.items():
            for target in block.successors():
                preds[target].append(bid)
        reaches = set(returning)
        frontier = list(returning)
        while frontier:
            bid = frontier.pop()
            for pred in preds[bid]:
                if pred not in reaches:
                    reaches.add(pred)
                    frontier.append(pred)
        unreachable = set(self.blocks) - reaches
        if unreachable:
            raise ProgramValidationError(
                f"method {self.name!r}: blocks {sorted(unreachable)} cannot "
                "reach a return"
            )

    def __repr__(self) -> str:
        return f"Method({self.name!r}, blocks={len(self.blocks)})"


class Program:
    """A whole program: methods plus an entry method.

    ``layout`` assigns code addresses (PCs) to methods and blocks; the BBV
    baseline keys its accumulator table on branch PCs, so layout must happen
    before execution.  :meth:`validated` performs layout and whole-program
    checks and is the normal way to finalize a program.
    """

    #: Default base address of the code segment.
    CODE_BASE = 0x0001_0000

    def __init__(self, methods: Iterable[Method], entry: str):
        self.methods: Dict[str, Method] = {}
        for method in methods:
            if method.name in self.methods:
                raise ProgramValidationError(
                    f"duplicate method name {method.name!r}"
                )
            self.methods[method.name] = method
        if entry not in self.methods:
            raise ProgramValidationError(f"entry method {entry!r} not found")
        self.entry = entry
        self._laid_out = False

    def layout(self, base: int = CODE_BASE) -> None:
        """Assign code addresses to every method, block, and branch."""
        pc = base
        for method in self.methods.values():
            method.code_base = pc
            for block in method.blocks.values():
                block.base_pc = pc
                block._instructions = None  # re-synthesize with PCs
                n = block.n_instructions
                # The terminating branch is the block's last instruction.
                block.branch_pc = pc + (n - 1) * INSTRUCTION_BYTES
                pc += n * INSTRUCTION_BYTES
        self._laid_out = True

    @property
    def is_laid_out(self) -> bool:
        return self._laid_out

    def validate(self) -> None:
        for method in self.methods.values():
            method.validate()
            for callee in method.callees():
                if callee not in self.methods:
                    raise ProgramValidationError(
                        f"method {method.name!r} calls unknown method "
                        f"{callee!r}"
                    )
        self._check_recursion_bounded()

    def _check_recursion_bounded(self) -> None:
        """Reject call-graph cycles: the interpreter does not model a
        recursion-depth bound, so recursive programs could run forever."""
        colors: Dict[str, int] = {}
        stack: List[Tuple[str, Iterable[str]]] = []

        def visit(name: str) -> None:
            colors[name] = 1
            stack.append((name, iter(self.methods[name].callees())))
            while stack:
                top, it = stack[-1]
                advanced = False
                for callee in it:
                    state = colors.get(callee, 0)
                    if state == 1:
                        raise ProgramValidationError(
                            f"recursive call cycle through {callee!r}"
                        )
                    if state == 0:
                        colors[callee] = 1
                        stack.append(
                            (callee, iter(self.methods[callee].callees()))
                        )
                        advanced = True
                        break
                if not advanced:
                    colors[top] = 2
                    stack.pop()

        for name in self.methods:
            if colors.get(name, 0) == 0:
                visit(name)

    def validated(self, base: int = CODE_BASE) -> "Program":
        """Validate, lay out, and return self (fluent finalizer)."""
        self.validate()
        self.layout(base)
        return self

    @property
    def static_instruction_count(self) -> int:
        return sum(m.static_instruction_count for m in self.methods.values())

    def __repr__(self) -> str:
        return (
            f"Program(entry={self.entry!r}, methods={len(self.methods)}, "
            f"static_insns={self.static_instruction_count})"
        )
