"""Textual assembly format for mini-ISA programs.

The format is line-oriented and block-structured::

    # comment
    method main {
        region 0x200000 65536
        block b0 {
            insns 12
            loads 3
            stores 1
            mem workingset span=4096 locality=0.8
            call helper
            loop trips=10 exit=b1
        }
        block b1 {
            insns 2
            ret
        }
    }

Terminator directives (exactly one per block):

``goto <bid>``
    unconditional jump.
``loop trips=<n> exit=<bid> [body=<bid>]``
    back edge taken ``n - 1`` times, then falls through to ``exit``.
``branch taken=<bid> fall=<bid> [p=<float>] [alt=<period>]``
    conditional branch; ``p`` gives a random decider, ``alt`` an
    alternating one (default ``p=0.5``).
``ret``
    method return.

``mem <kind> key=value...`` attaches a memory behaviour; kinds are resolved
through a registry defaulting to the generators in
:mod:`repro.workloads.patterns`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.isa.instructions import InstructionMix
from repro.isa.program import (
    AlternatingDecider,
    BasicBlock,
    CallSite,
    CondBranch,
    Goto,
    LoopDecider,
    MemoryBehavior,
    Method,
    Program,
    RandomDecider,
    Return,
)


class AssemblyError(Exception):
    """Raised on malformed assembly input; carries the line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


MemoryFactory = Callable[..., MemoryBehavior]


def _default_memory_registry() -> Dict[str, MemoryFactory]:
    # Imported lazily to avoid an isa -> workloads -> isa import cycle.
    from repro.workloads import patterns

    return {
        "workingset": patterns.WorkingSetBehavior.from_kwargs,
        "stride": patterns.StridedBehavior.from_kwargs,
        "stack": patterns.StackBehavior.from_kwargs,
        "mixed": patterns.MixedBehavior.from_kwargs,
    }


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(lineno, f"expected integer, got {token!r}")


def _parse_kv(tokens: List[str], lineno: int) -> Dict[str, str]:
    kv: Dict[str, str] = {}
    for token in tokens:
        if "=" not in token:
            raise AssemblyError(lineno, f"expected key=value, got {token!r}")
        key, _, value = token.partition("=")
        kv[key] = value
    return kv


def _coerce(value: str) -> object:
    """Best-effort conversion of an attribute value: int, float, or str."""
    try:
        return int(value, 0)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


class _BlockDraft:
    def __init__(self, bid: str, lineno: int):
        self.bid = bid
        self.lineno = lineno
        self.insns = 0
        self.loads = 0
        self.stores = 0
        self.memory: Optional[MemoryBehavior] = None
        self.calls: List[str] = []
        self.terminator = None

    def finish(self) -> BasicBlock:
        if self.terminator is None:
            raise AssemblyError(
                self.lineno, f"block {self.bid!r} has no terminator"
            )
        mix = InstructionMix(
            total=self.insns, loads=self.loads, stores=self.stores
        )
        return BasicBlock(
            self.bid,
            mix,
            self.terminator,
            memory=self.memory,
            calls=[CallSite(c) for c in self.calls],
        )


class _Assembler:
    def __init__(
        self,
        text: str,
        memory_registry: Optional[Dict[str, MemoryFactory]] = None,
    ):
        self.lines = text.splitlines()
        self.registry = memory_registry
        self.methods: List[Method] = []
        self.entry: Optional[str] = None

    def _memory_factory(self, kind: str, lineno: int) -> MemoryFactory:
        if self.registry is None:
            self.registry = _default_memory_registry()
        try:
            return self.registry[kind]
        except KeyError:
            raise AssemblyError(
                lineno,
                f"unknown memory behaviour {kind!r}; "
                f"known: {sorted(self.registry)}",
            )

    def assemble(self) -> Program:
        i = 0
        n = len(self.lines)
        while i < n:
            tokens, lineno = self._tokens(i)
            i += 1
            if not tokens:
                continue
            if tokens[0] == "entry":
                if len(tokens) != 2:
                    raise AssemblyError(lineno, "usage: entry <method>")
                self.entry = tokens[1]
            elif tokens[0] == "method":
                i = self._method(tokens, lineno, i)
            else:
                raise AssemblyError(
                    lineno, f"unexpected directive {tokens[0]!r}"
                )
        if not self.methods:
            raise AssemblyError(0, "no methods defined")
        entry = self.entry or self.methods[0].name
        return Program(self.methods, entry).validated()

    def _tokens(self, index: int) -> Tuple[List[str], int]:
        line = self.lines[index]
        code = line.split("#", 1)[0].strip()
        return code.split(), index + 1

    def _method(self, header: List[str], lineno: int, i: int) -> int:
        if len(header) != 3 or header[2] != "{":
            raise AssemblyError(lineno, "usage: method <name> {")
        name = header[1]
        region = None
        entry_bid: Optional[str] = None
        blocks: List[BasicBlock] = []
        attributes: Dict[str, object] = {}

        n = len(self.lines)
        while i < n:
            tokens, lno = self._tokens(i)
            i += 1
            if not tokens:
                continue
            head = tokens[0]
            if head == "}":
                if not blocks:
                    raise AssemblyError(lno, f"method {name!r} has no blocks")
                self.methods.append(
                    Method(
                        name,
                        blocks,
                        entry_bid or blocks[0].bid,
                        region=region,
                        attributes=attributes,
                    )
                )
                return i
            if head == "region":
                if len(tokens) != 3:
                    raise AssemblyError(lno, "usage: region <base> <size>")
                from repro.isa.program import DataRegion

                region = DataRegion(
                    _parse_int(tokens[1], lno), _parse_int(tokens[2], lno)
                )
            elif head == "entry":
                if len(tokens) != 2:
                    raise AssemblyError(lno, "usage: entry <block>")
                entry_bid = tokens[1]
            elif head == "attr":
                if len(tokens) != 3:
                    raise AssemblyError(lno, "usage: attr <key> <value>")
                attributes[tokens[1]] = _coerce(tokens[2])
            elif head == "block":
                block, i = self._block(tokens, lno, i)
                blocks.append(block)
            else:
                raise AssemblyError(lno, f"unexpected directive {head!r}")
        raise AssemblyError(lineno, f"method {name!r} not closed with '}}'")

    def _block(
        self, header: List[str], lineno: int, i: int
    ) -> Tuple[BasicBlock, int]:
        if len(header) != 3 or header[2] != "{":
            raise AssemblyError(lineno, "usage: block <id> {")
        draft = _BlockDraft(header[1], lineno)

        n = len(self.lines)
        while i < n:
            tokens, lno = self._tokens(i)
            i += 1
            if not tokens:
                continue
            head = tokens[0]
            if head == "}":
                return draft.finish(), i
            if head in ("insns", "loads", "stores"):
                if len(tokens) != 2:
                    raise AssemblyError(lno, f"usage: {head} <count>")
                setattr(draft, head, _parse_int(tokens[1], lno))
            elif head == "call":
                if len(tokens) != 2:
                    raise AssemblyError(lno, "usage: call <method>")
                draft.calls.append(tokens[1])
            elif head == "mem":
                if len(tokens) < 2:
                    raise AssemblyError(lno, "usage: mem <kind> [k=v ...]")
                factory = self._memory_factory(tokens[1], lno)
                kv = {
                    k: _coerce(v)
                    for k, v in _parse_kv(tokens[2:], lno).items()
                }
                try:
                    draft.memory = factory(**kv)
                except (TypeError, ValueError) as exc:
                    raise AssemblyError(lno, f"bad mem directive: {exc}")
            elif head == "goto":
                if len(tokens) != 2:
                    raise AssemblyError(lno, "usage: goto <block>")
                self._set_terminator(draft, Goto(tokens[1]), lno)
            elif head == "ret":
                self._set_terminator(draft, Return(), lno)
            elif head == "loop":
                kv = _parse_kv(tokens[1:], lno)
                if "trips" not in kv or "exit" not in kv:
                    raise AssemblyError(
                        lno, "usage: loop trips=<n> exit=<bid> [body=<bid>]"
                    )
                trips = _parse_int(kv["trips"], lno)
                body = kv.get("body", draft.bid)
                term = CondBranch(body, kv["exit"], LoopDecider(trips))
                self._set_terminator(draft, term, lno)
            elif head == "branch":
                kv = _parse_kv(tokens[1:], lno)
                if "taken" not in kv or "fall" not in kv:
                    raise AssemblyError(
                        lno,
                        "usage: branch taken=<bid> fall=<bid> "
                        "[p=<float>|alt=<period>]",
                    )
                if "alt" in kv:
                    decider = AlternatingDecider(_parse_int(kv["alt"], lno))
                else:
                    try:
                        decider = RandomDecider(float(kv.get("p", 0.5)))
                    except ValueError as exc:
                        raise AssemblyError(lno, str(exc))
                term = CondBranch(kv["taken"], kv["fall"], decider)
                self._set_terminator(draft, term, lno)
            else:
                raise AssemblyError(lno, f"unexpected directive {head!r}")
        raise AssemblyError(
            lineno, f"block {draft.bid!r} not closed with '}}'"
        )

    @staticmethod
    def _set_terminator(draft: _BlockDraft, term, lineno: int) -> None:
        if draft.terminator is not None:
            raise AssemblyError(
                lineno, f"block {draft.bid!r} already has a terminator"
            )
        draft.terminator = term


def assemble(
    text: str,
    memory_registry: Optional[Dict[str, MemoryFactory]] = None,
) -> Program:
    """Assemble source text into a validated, laid-out :class:`Program`."""
    return _Assembler(text, memory_registry).assemble()
