"""Mini instruction set and program representation.

The reproduction does not interpret real PowerPC code.  Instead, programs are
expressed in a small block-structured intermediate representation: a
:class:`~repro.isa.program.Program` is a set of
:class:`~repro.isa.program.Method` objects, each a control-flow graph of
:class:`~repro.isa.program.BasicBlock` nodes.  Blocks carry an aggregate
execution profile (instruction mix, memory behaviour, terminator semantics)
that the interpreter in :mod:`repro.vm` replays at block granularity; blocks
can also carry a concrete instruction listing produced by the builder or the
assembler, which keeps the representation honest for tooling
(disassembly, static statistics) without forcing per-instruction
interpretation.
"""

from repro.isa.instructions import (
    Instruction,
    InstructionMix,
    Opcode,
    synthesize_instructions,
)
from repro.isa.program import (
    AlternatingDecider,
    BasicBlock,
    CallSite,
    CondBranch,
    DataRegion,
    Goto,
    LoopDecider,
    MemoryBehavior,
    Method,
    PeriodicDecider,
    PersistentAlternatingDecider,
    Program,
    ProgramValidationError,
    RandomDecider,
    Return,
)
from repro.isa.builder import MethodBuilder, ProgramBuilder
from repro.isa.assembler import AssemblyError, assemble
from repro.isa.disasm import disassemble_method, disassemble_program

__all__ = [
    "AlternatingDecider",
    "AssemblyError",
    "BasicBlock",
    "CallSite",
    "CondBranch",
    "DataRegion",
    "Goto",
    "Instruction",
    "InstructionMix",
    "LoopDecider",
    "MemoryBehavior",
    "Method",
    "MethodBuilder",
    "Opcode",
    "PeriodicDecider",
    "PersistentAlternatingDecider",
    "Program",
    "ProgramBuilder",
    "ProgramValidationError",
    "RandomDecider",
    "Return",
    "assemble",
    "disassemble_method",
    "disassemble_program",
    "synthesize_instructions",
]
