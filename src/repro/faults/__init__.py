"""Fault-injection subsystem: seeded chaos for engine, machine, policies.

See :mod:`repro.faults.plan` for the full contract and
docs/INTERNALS.md §11 for the architecture.  Public surface:

* :class:`FaultPlan` — the seeded, deterministic fault schedule;
* :class:`InjectedFault` — the exception artificial failures raise;
* :func:`corrupt_file` — the truncation primitive behind the
  ``store_corrupt`` site (exposed for tests).
"""

from repro.faults.plan import (
    PROBABILITY_SITES,
    FaultPlan,
    InjectedFault,
    corrupt_file,
)

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "PROBABILITY_SITES",
    "corrupt_file",
]
