"""Fault-injection subsystem: seeded chaos for engine, machine, policies.

See :mod:`repro.faults.plan` for the full contract and
docs/INTERNALS.md §11 for the architecture.  Public surface:

* :class:`FaultPlan` — the seeded, deterministic fault schedule;
* :class:`InjectedFault` — the exception artificial failures raise;
* :func:`corrupt_file` — the truncation primitive behind the
  ``store_corrupt`` site (exposed for tests);
* :func:`deterministic_uniform` — the pure ``(seed, site, key)`` hash
  draw underlying every plan decision (shared by the engine's
  retry-backoff jitter so chaos runs are reproducible end to end).
"""

from repro.faults.plan import (
    PROBABILITY_SITES,
    FaultPlan,
    InjectedFault,
    corrupt_file,
    deterministic_uniform,
)

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "PROBABILITY_SITES",
    "corrupt_file",
    "deterministic_uniform",
]
