"""Seeded, deterministic fault injection (`FaultPlan`).

The paper's robustness story rests on paths nothing exercises in a clean
run: the sampling code's drift-triggered re-tune (§3.3), the hardware
guard silently denying premature reconfigurations (§3.4), and — at this
reproduction's scale — an experiment engine that must keep serving
partial results when individual cells misbehave.  ``FaultPlan`` makes
those paths testable by injecting faults on a *deterministic schedule*:

* **engine chaos** — worker-process crashes, injected cell exceptions,
  injected per-cell timeouts, corrupted store entries;
* **machine chaos** — extra reconfiguration denials on top of the
  interval guard (the last-reconfiguration-counter contract: callers
  must tolerate ``False`` and retry on a later invocation);
* **profiling chaos** — multiplicative noise on the measured IPC/energy
  samples both policies tune from, plus a forced mid-run behaviour shift
  (``drift_at``) that makes previously pinned configurations wrong and
  must drive the sampling code through ``sampling_retune``.

Determinism contract (docs/INTERNALS.md §11): every decision is a pure
function of ``(seed, site, key)`` — the key names *what* is being
faulted (cell identity + attempt, CU + instruction count, hotspot +
sample index), never *when* the question was asked.  The same seed
therefore reproduces the same fault schedule regardless of worker
scheduling, cache hits, or retry interleaving, and a plan pickled into a
pool worker decides identically to its parent-process original.

With no plan installed (``fault_plan=None`` everywhere), every hook is a
single ``is not None`` check on an untaken branch — results are
bit-identical to an injection-free build (the :data:`NULL_TELEMETRY`
contract, applied to faults).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple


class InjectedFault(RuntimeError):
    """An artificial failure raised by a :class:`FaultPlan` decision.

    Distinguishable from organic failures in logs and ``CellOutcome``
    records; picklable so pool workers can raise it across the process
    boundary.
    """


#: Injection sites, for validation and for ``from_spec`` parsing.
PROBABILITY_SITES = (
    "worker_crash",
    "cell_exception",
    "cell_timeout",
    "store_corrupt",
    "reconfig_deny",
    "host_down",
    "straggler_delay",
)


def deterministic_uniform(seed: int, site: str, key: Tuple) -> float:
    """Pure-function uniform draw in [0, 1) for ``(seed, site, key)``.

    The one hash underlying every plan decision, exposed so other
    schedule-sensitive randomness (the engine's retry-backoff jitter)
    can share the determinism contract without carrying a plan.
    """
    token = f"{seed}|{site}|{key!r}".encode()
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass
class FaultPlan:
    """One seeded fault schedule.

    Probabilities are per *decision point* (one cell attempt, one store
    write, one reconfiguration request, one profiling sample).  All
    fields default to "off"; a default-constructed plan injects nothing.

    Parameters
    ----------
    seed:
        Schedule seed.  Same seed ⇒ same fault schedule (see module
        docstring for the exact contract).
    worker_crash:
        Probability that a pool worker hard-exits (``os._exit``) instead
        of executing its cell — surfaces as ``BrokenProcessPool`` in the
        engine, which must rebuild the pool and resubmit survivors.
        Only ever fired inside pool worker processes, never in the
        parent (a serial run cannot crash the caller).
    cell_exception:
        Probability that a cell raises :class:`InjectedFault` instead of
        executing (exercises retry + ``failure_policy`` paths).
    cell_timeout:
        Probability that a cell raises
        :class:`~repro.sim.engine.CellTimeout` immediately (exercises
        the timeout accounting without burning wall-clock time).
    store_corrupt:
        Probability that a persisted store entry is truncated right
        after the write (exercises read-side quarantine).
    reconfig_deny:
        Probability that :meth:`MachineModel.request_reconfiguration`
        denies a request the interval guard would have granted.
    host_down:
        Probability that a whole *host* of a multi-host backend is dead:
        every worker spawned on that host hard-exits at its first chunk.
        Keyed on ``(host, incarnation)`` — the host name the pool passes
        via ``$REPRO_WORKER_HOST`` plus the per-host respawn counter —
        so one seed deterministically picks which hosts die, and a
        half-open circuit probe can deterministically find the host
        healthy again at a later incarnation.  Inert on backends that
        set no host identity (the local process pool).
    straggler_delay / straggler_delay_s:
        Probability that a cell *executes slowly*: before simulating,
        the worker sleeps ``straggler_delay_s`` wall-clock seconds.
        Keyed on ``(host, benchmark, scheme, attempt)`` — a slow *host*,
        not a slow cell — so a speculative re-execution on a different
        host redraws the delay.  Pure scheduling: results are never
        perturbed, only wall-clock time.
    profile_noise:
        Sigma of multiplicative log-normal noise applied to measured
        IPC and energy samples in both tuning policies.
    drift_at / drift_ipc_factor / drift_config_penalty:
        Forced behaviour shift: from retired-instruction count
        ``drift_at`` on, every profiling/sampling measurement sees its
        IPC multiplied by ``drift_ipc_factor`` and additionally
        penalised by ``drift_config_penalty`` per configuration
        downsizing step (sum of setting indices), with energy inflated
        by the same per-step penalty.  Small configurations thereby
        become genuinely bad after the shift, so a correct sampling path
        must fire ``sampling_retune`` and re-pin a larger configuration.
    """

    seed: int = 0
    worker_crash: float = 0.0
    cell_exception: float = 0.0
    cell_timeout: float = 0.0
    store_corrupt: float = 0.0
    reconfig_deny: float = 0.0
    host_down: float = 0.0
    straggler_delay: float = 0.0
    straggler_delay_s: float = 0.25
    profile_noise: float = 0.0
    drift_at: Optional[int] = None
    drift_ipc_factor: float = 1.0
    drift_config_penalty: float = 0.0
    #: Parent-process tally of decisions that fired, per site (pool
    #: workers keep their own copies; use engine stats / telemetry for
    #: cross-process counts).
    injected: Dict[str, int] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        for site in PROBABILITY_SITES:
            p = getattr(self, site)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{site} must be in [0, 1], got {p!r}")
        if self.straggler_delay_s < 0.0:
            raise ValueError("straggler_delay_s must be >= 0")
        if self.profile_noise < 0.0:
            raise ValueError("profile_noise must be >= 0")
        if self.drift_ipc_factor <= 0.0:
            raise ValueError("drift_ipc_factor must be > 0")
        if not 0.0 <= self.drift_config_penalty < 1.0:
            raise ValueError("drift_config_penalty must be in [0, 1)")

    # -- deterministic draws ------------------------------------------------

    def _uniform(self, site: str, key: Tuple) -> float:
        """Pure-function uniform draw in [0, 1) for (seed, site, key)."""
        return deterministic_uniform(self.seed, site, key)

    def _gauss(self, site: str, key: Tuple) -> float:
        """Deterministic standard-normal draw (Box–Muller)."""
        u1 = max(self._uniform(site, key + ("u1",)), 1e-300)
        u2 = self._uniform(site, key + ("u2",))
        return math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)

    def decide(self, site: str, key: Tuple) -> bool:
        """Does the fault at ``site`` fire for this ``key``?"""
        probability = getattr(self, site)
        if probability <= 0.0:
            return False
        fired = self._uniform(site, key) < probability
        if fired:
            self.injected[site] = self.injected.get(site, 0) + 1
        return fired

    # -- site groups --------------------------------------------------------

    @property
    def perturbs_simulation(self) -> bool:
        """True when the plan changes *simulation results* (not just the
        engine's scheduling).  Such cells must never be cached: their
        outcomes are not described by the configuration fingerprint."""
        return (
            self.profile_noise > 0.0
            or self.drift_at is not None
            or self.reconfig_deny > 0.0
        )

    @property
    def perturbs_profiling(self) -> bool:
        return self.profile_noise > 0.0 or self.drift_at is not None

    # -- profiling-side hook ------------------------------------------------

    def perturb_measurement(
        self,
        owner: str,
        config: Tuple[int, ...],
        ipc: float,
        energy: float,
        now_instructions: int,
        sample_index: int,
    ) -> Tuple[float, float]:
        """Perturb one measured (IPC, energy) sample.

        ``owner`` names the hotspot (or ``phase:<id>`` for the BBV
        scheme) and ``sample_index`` its per-owner measurement ordinal —
        together the deterministic key for the noise draw.
        """
        if self.profile_noise > 0.0:
            key = (owner, sample_index)
            ipc *= math.exp(
                self.profile_noise * self._gauss("noise_ipc", key)
            )
            energy *= math.exp(
                self.profile_noise * self._gauss("noise_energy", key)
            )
        if (
            self.drift_at is not None
            and now_instructions >= self.drift_at
        ):
            steps = sum(config)
            ipc *= self.drift_ipc_factor * max(
                0.05, 1.0 - self.drift_config_penalty * steps
            )
            energy *= 1.0 + self.drift_config_penalty * steps
        return ipc, energy

    # -- serialisation ------------------------------------------------------

    def to_spec(self) -> str:
        """Inverse of :meth:`from_spec` (omits default-valued fields)."""
        parts = [f"seed={self.seed}"]
        for f in fields(self):
            if f.name in ("seed", "injected"):
                continue
            value = getattr(self, f.name)
            default = f.default
            if value != default:
                parts.append(f"{f.name}={value}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "FaultPlan":
        """Parse a CLI-style plan: ``seed=42,worker_crash=0.2,...``."""
        known = {
            f.name: f for f in fields(cls) if f.name != "injected"
        }
        kwargs: Dict[str, object] = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ValueError(
                    f"bad fault-plan item {chunk!r} (expected name=value)"
                )
            name, _, raw = chunk.partition("=")
            name = name.strip()
            if name not in known:
                raise ValueError(
                    f"unknown fault-plan field {name!r}; known: "
                    f"{', '.join(sorted(known))}"
                )
            if name in ("seed", "drift_at"):
                kwargs[name] = int(raw)
            else:
                kwargs[name] = float(raw)
        return cls(**kwargs)

    def __repr__(self) -> str:
        return f"FaultPlan({self.to_spec()})"


def corrupt_file(path) -> None:
    """Truncate a file to half its length (an interrupted-write stand-in).

    Used by the ``store_corrupt`` site: the damaged entry is no longer
    valid JSON, so the next read must quarantine it rather than trust it.
    """
    import os

    try:
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(1, size // 2))
    except OSError:
        pass
