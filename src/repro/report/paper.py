"""The paper's published numbers, for paper-vs-measured comparison.

Transcribed from the CGO 2005 text.  Table 6's layout is garbled in the
available text (BBV and hotspot columns are interleaved), so only its
clearly attributable rows and the qualitative claims are recorded; the
reproduction's Table 6 bench asserts those qualitative claims.
"""

from __future__ import annotations

from typing import Dict, List

BENCHMARK_ORDER: List[str] = [
    "compress", "db", "jack", "javac", "jess", "mpegaudio", "mtrt",
]


def per_benchmark(values) -> Dict[str, float]:
    """Zip a row of seven values against the benchmark order."""
    if len(values) != len(BENCHMARK_ORDER):
        raise ValueError(f"expected 7 values, got {len(values)}")
    return dict(zip(BENCHMARK_ORDER, values))


PAPER = {
    # ---- Table 4: runtime hotspot characteristics -----------------------
    "table4": {
        "dynamic_instructions": per_benchmark(
            [9.83e9, 8.78e9, 8.22e9, 8.92e9, 5.72e9, 1.09e10, 5.10e9]
        ),
        "n_hotspots": per_benchmark([299, 316, 470, 685, 434, 386, 363]),
        "avg_hotspot_size": per_benchmark(
            [81_645, 75_648, 14_941, 23_774, 77_841, 70_231, 18_617]
        ),
        "pct_code_in_hotspots": per_benchmark(
            [0.9903, 0.9941, 0.9996, 0.9992, 0.9983, 0.9987, 0.9987]
        ),
        "avg_invocations_per_hotspot": per_benchmark(
            [823, 1_105, 13_091, 5_983, 2_490, 4_747, 3_284]
        ),
        "identification_latency": per_benchmark(
            [0.0365, 0.0271, 0.0023, 0.0050, 0.0120, 0.0063, 0.0091]
        ),
    },
    # ---- Table 5: hotspot vs. BBV runtime characteristics --------------
    "table5_hotspot": {
        "n_l1d_hotspots": per_benchmark([64, 58, 81, 108, 68, 64, 73]),
        "n_l2_hotspots": per_benchmark([22, 29, 31, 33, 30, 23, 21]),
        "n_total": per_benchmark([85, 87, 112, 141, 98, 87, 94]),
        "n_tuned": per_benchmark([69, 77, 101, 132, 86, 79, 78]),
        "pct_tuned": per_benchmark(
            [0.8118, 0.8851, 0.9018, 0.9362, 0.8776, 0.9080, 0.8298]
        ),
        "per_hotspot_ipc_cov": per_benchmark(
            [0.0917, 0.0997, 0.0674, 0.0933, 0.0779, 0.0537, 0.0809]
        ),
        "inter_hotspot_ipc_cov": per_benchmark(
            [0.4378, 0.4299, 0.4938, 0.4647, 0.5249, 0.4905, 0.4669]
        ),
    },
    "table5_bbv": {
        "n_phases": per_benchmark([70, 50, 70, 84, 80, 58, 75]),
        "n_tuned": per_benchmark([35, 16, 14, 22, 24, 13, 17]),
        "pct_intervals_in_tuned": per_benchmark(
            [0.8140, 0.7535, 0.7144, 0.4040, 0.5697, 0.7334, 0.9337]
        ),
        "per_phase_ipc_cov": per_benchmark(
            [0.0407, 0.0910, 0.0735, 0.0659, 0.0520, 0.0491, 0.0624]
        ),
        "inter_phase_ipc_cov": per_benchmark(
            [0.2005, 0.3332, 0.2007, 0.2487, 0.2611, 0.3826, 0.2396]
        ),
    },
    # ---- Table 6: only the rows that are unambiguous in the source ------
    "table6_qualitative": [
        "hotspot scheme performs fewer tuning trials than BBV",
        "hotspot scheme applies its chosen configuration more often",
        "L1D is reconfigured more frequently than L2 under the hotspot "
        "scheme",
        "coverage is good (most dynamic instructions run under tuned "
        "configurations) for both schemes",
    ],
    # ---- Figure 3: cache energy reduction -------------------------------
    "figure3": {
        "avg_l1d_reduction": {"bbv": 0.32, "hotspot": 0.47},
        "avg_l2_reduction": {"bbv": 0.52, "hotspot": 0.58},
        "db_hotspot_l1d_reduction": 0.66,
    },
    # ---- Figure 4: performance impact ------------------------------------
    "figure4": {
        "bbv_range": (0.0134, 0.0238),
        "hotspot_range": (0.004, 0.0247),
        "avg": {"bbv": 0.0187, "hotspot": 0.0156},
    },
    # ---- Figure 1 / §5.2.1 prose -------------------------------------------
    "figure1": {
        # Tuned BBV phases cover ~70 % of execution; transitional ~24 %,
        # short-running ~6 %.  javac has by far the largest transitional
        # share (its tuned-interval coverage is only ~40 %).
        "avg_stable_share": 0.70,
        "worst_stable_benchmark": "javac",
    },
    # ---- §5.1 prose -------------------------------------------------------
    "hotspot_min_avg_invocations": 823,
    "identification_latency_max": 0.0365,
    "avg_tuned_hotspot_fraction": 0.88,
}
