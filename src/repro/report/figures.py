"""Plain-text bar charts for the paper's figures."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

BAR_WIDTH = 46


def _bar(value: float, max_value: float, width: int = BAR_WIDTH) -> str:
    if max_value <= 0:
        return ""
    n = int(round(width * max(0.0, value) / max_value))
    return "#" * n


def render_bar_chart(
    values: Dict[str, float],
    title: Optional[str] = None,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """One bar per key; values are fractions by default (scale=100 -> %)."""
    if not values:
        return title or ""
    label_w = max(len(k) for k in values)
    max_value = max(max(values.values()), 1e-9)
    out: List[str] = [title] if title else []
    for key, value in values.items():
        out.append(
            f"{key.ljust(label_w)} | "
            f"{_bar(value, max_value)} {value * scale:.1f}{unit}"
        )
    return "\n".join(out)


def render_grouped_bars(
    groups: Sequence[str],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    unit: str = "%",
    scale: float = 100.0,
) -> str:
    """Grouped bars: for each group, one bar per series (the paper's
    BBV-vs-hotspot figures).

    ``series`` maps series name -> per-group values (same length as
    ``groups``).
    """
    for name, values in series.items():
        if len(values) != len(groups):
            raise ValueError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups"
            )
    label_w = max(
        [len(g) for g in groups] + [len(s) for s in series], default=1
    )
    flat = [v for values in series.values() for v in values]
    max_value = max(max(flat, default=0.0), 1e-9)
    out: List[str] = [title] if title else []
    for gi, group in enumerate(groups):
        out.append(f"{group}:")
        for name, values in series.items():
            value = values[gi]
            out.append(
                f"  {name.ljust(label_w)} | "
                f"{_bar(value, max_value)} {value * scale:.1f}{unit}"
            )
    return "\n".join(out)
