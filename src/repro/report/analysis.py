"""Post-run analysis: per-hotspot and per-phase decision reports.

Formalises the forensic views used while calibrating the reproduction
(`tools/diagnose.py`): which hotspots were managed, what each tuner
measured, and what it chose.  Useful both for debugging adaptation
behaviour on new workloads and for teaching what the framework does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.report.tables import render_table


@dataclass
class HotspotReportRow:
    """One managed (or unmanaged) hotspot's story."""

    name: str
    kind: str
    mean_size: float
    invocations: int
    best_config: Optional[Tuple[int, ...]]
    best_settings: Optional[Tuple[str, ...]]
    trials: int
    tuning_rounds: int
    demotions: int
    mean_ipc: Optional[float]
    managed: bool


def hotspot_report(policy, run_result=None) -> List[HotspotReportRow]:
    """Per-hotspot rows from a finished :class:`HotspotACEPolicy` run.

    ``run_result`` (a :class:`repro.sim.driver.RunResult`) enriches rows
    with DO-database invocation counts when available.
    """
    summaries = run_result.hotspot_summaries if run_result else {}
    machine = policy.machine
    rows: List[HotspotReportRow] = []

    def settings_of(state):
        if state.best is None:
            return None
        return tuple(
            machine.cus[cu_name].describe_setting(index)
            for cu_name, index in zip(state.cu_names, state.best.config)
        )

    for name, state in policy.states.items():
        summary = summaries.get(name)
        acc = policy._ipc.get(name)
        rows.append(
            HotspotReportRow(
                name=name,
                kind=policy.kind_of.get(name, "?"),
                mean_size=(
                    summary.mean_size if summary else 0.0
                ),
                invocations=(
                    summary.invocations if summary else 0
                ),
                best_config=(
                    state.best.config if state.best else None
                ),
                best_settings=settings_of(state),
                trials=len(state.outcomes),
                tuning_rounds=state.tuning_rounds,
                demotions=state.demotions,
                mean_ipc=acc.mean if acc and acc.n else None,
                managed=True,
            )
        )
    for name in policy.unmanaged:
        summary = summaries.get(name)
        rows.append(
            HotspotReportRow(
                name=name,
                kind="unmanaged",
                mean_size=summary.mean_size if summary else 0.0,
                invocations=summary.invocations if summary else 0,
                best_config=None,
                best_settings=None,
                trials=0,
                tuning_rounds=0,
                demotions=0,
                mean_ipc=None,
                managed=False,
            )
        )
    rows.sort(key=lambda r: (not r.managed, -r.mean_size))
    return rows


def render_hotspot_report(policy, run_result=None) -> str:
    rows = hotspot_report(policy, run_result)
    table = [
        [
            r.name,
            r.kind,
            int(r.mean_size),
            r.invocations,
            "/".join(r.best_settings) if r.best_settings else "-",
            r.trials,
            r.demotions,
            f"{r.mean_ipc:.2f}" if r.mean_ipc else "-",
        ]
        for r in rows
    ]
    return render_table(
        ["hotspot", "class", "size", "invocations", "chosen",
         "trials", "demotions", "IPC"],
        table,
        title="Per-hotspot adaptation report",
    )


@dataclass
class PhaseReportRow:
    """One BBV phase's story."""

    pid: int
    intervals: int
    tuned: bool
    trials: int
    best_config: Optional[Tuple[int, ...]]
    mean_ipc: float
    demotions: int


def phase_report(policy) -> List[PhaseReportRow]:
    """Per-phase rows from a finished :class:`BBVACEPolicy` run."""
    rows: List[PhaseReportRow] = []
    for pid, phase in policy.classifier.phases.items():
        entry = policy.entries.get(pid)
        rows.append(
            PhaseReportRow(
                pid=pid,
                intervals=phase.intervals,
                tuned=bool(entry and entry.tuned),
                trials=len(entry.outcomes) if entry else 0,
                best_config=(
                    entry.best.config
                    if entry and entry.best
                    else None
                ),
                mean_ipc=phase.mean_ipc,
                demotions=entry.demotions if entry else 0,
            )
        )
    rows.sort(key=lambda r: -r.intervals)
    return rows


def render_phase_report(policy) -> str:
    rows = phase_report(policy)
    table = [
        [
            r.pid,
            r.intervals,
            "yes" if r.tuned else "no",
            r.trials,
            str(r.best_config) if r.best_config else "-",
            f"{r.mean_ipc:.2f}",
        ]
        for r in rows
    ]
    return render_table(
        ["phase", "intervals", "tuned", "trials", "best", "IPC"],
        table,
        title="Per-phase adaptation report (BBV)",
    )
