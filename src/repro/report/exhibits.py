"""Builders for every table and figure in the paper's evaluation section.

Each builder takes the :class:`~repro.sim.experiment.SuiteResults` of a
three-scheme suite run and returns an :class:`ExhibitResult` holding the
structured data (used by the benchmark harness's shape assertions) plus a
rendered plain-text exhibit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.report.figures import render_grouped_bars
from repro.report.tables import render_kv_table, render_table
from repro.report.paper import PAPER
from repro.sim.config import (
    ExperimentConfig,
    L1D_CONFIG,
    L2_CONFIG,
    MachineConfig,
)
from repro.scaling import STRUCTURE_SCALE
from repro.workloads.specjvm import SHORT_NAMES, SPECJVM_DESCRIPTIONS


@dataclass
class ExhibitResult:
    """One regenerated exhibit: structured data + rendered text."""

    exhibit: str
    rendered: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


def _short(name: str) -> str:
    return SHORT_NAMES.get(name, name)


def _avg(values: List[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ---------------------------------------------------------------------------
# Figure 1 — stable vs. transitional BBV phase intervals
# ---------------------------------------------------------------------------


def figure1(suite) -> ExhibitResult:
    stable: Dict[str, float] = {}
    transitional: Dict[str, float] = {}
    for name, comparison in suite.comparisons.items():
        stats = comparison.bbv.bbv_stats.occurrence_stats
        stable[name] = stats.stable_fraction
        transitional[name] = 1.0 - stats.stable_fraction
    names = list(stable)
    stable["avg"] = _avg([stable[n] for n in names])
    transitional["avg"] = 1.0 - stable["avg"]
    rendered = render_grouped_bars(
        [_short(n) for n in names] + ["avg"],
        {
            "stable": [stable[n] for n in names] + [stable["avg"]],
            "transitional": (
                [transitional[n] for n in names] + [transitional["avg"]]
            ),
        },
        title=(
            "Figure 1: distribution of stable/transitional BBV phase "
            "intervals"
        ),
    )
    return ExhibitResult(
        "figure1",
        rendered,
        {"stable": stable, "transitional": transitional},
    )


# ---------------------------------------------------------------------------
# Table 1 — qualitative latency comparison, with measured values
# ---------------------------------------------------------------------------


def table1(suite) -> ExhibitResult:
    hot_trials = []
    bbv_trials = []
    latencies = []
    for comparison in suite.comparisons.values():
        hs = comparison.hotspot.hotspot_stats
        bs = comparison.bbv.bbv_stats
        if hs.managed_hotspots:
            hot_trials.append(
                sum(hs.tunings.values()) / hs.managed_hotspots
            )
        if bs.n_phases:
            bbv_trials.append(sum(bs.tunings.values()) / bs.n_phases)
        latencies.append(comparison.hotspot.identification_latency)
    rows = [
        [
            "new-phase identification",
            ">= 1 sampling interval",
            f"hot_threshold invocations "
            f"(measured {100 * _avg(latencies):.1f}% of execution)",
        ],
        [
            "recurring-phase identification",
            ">= 1 sampling interval",
            "none (hotspot entry is the identification)",
        ],
        [
            "tuning latency",
            f"all combinations "
            f"(measured ~{_avg(bbv_trials):.1f} trials/phase)",
            f"CU subset only "
            f"(measured ~{_avg(hot_trials):.1f} trials/hotspot)",
        ],
    ]
    rendered = render_table(
        ["metric", "temporal (BBV)", "DO-based (hotspot)"],
        rows,
        title="Table 1: latency comparison (qualitative; measured values "
        "substituted)",
    )
    return ExhibitResult(
        "table1",
        rendered,
        {
            "avg_hotspot_trials": _avg(hot_trials),
            "avg_bbv_trials": _avg(bbv_trials),
            "avg_identification_latency": _avg(latencies),
        },
    )


# ---------------------------------------------------------------------------
# Table 2 — baseline configuration
# ---------------------------------------------------------------------------


def _bytes(n: int) -> str:
    if n >= 1 << 20 and n % (1 << 20) == 0:
        return f"{n >> 20}MB"
    if n >= 1 << 10:
        return f"{n >> 10}KB"
    return f"{n}B"


def table2(config: MachineConfig = None) -> ExhibitResult:
    config = config or MachineConfig()
    timing = config.timing
    params = config.params

    def sizes(cache) -> str:
        return "/".join(_bytes(s) for s in cache.sizes)

    pairs = {
        "issue/commit width": f"{timing.issue_width} insns/cycle",
        "branch predictor": "2K-entry bimodal, "
        f"{timing.mispredict_penalty}-cycle penalty",
        "L1 I-cache": f"{_bytes(config.l1i_size)}, "
        f"{config.l1i_line}B lines",
        "L1 D-cache": (
            f"{sizes(config.l1d)}, {config.l1d.line_size}B lines, "
            f"{config.l1d.associativity}-way, "
            f"{params.l1d_reconfig_interval}-insn reconfig interval"
        ),
        "L2 unified cache": (
            f"{sizes(config.l2)}, {config.l2.line_size}B lines, "
            f"{config.l2.associativity}-way, "
            f"{timing.l2_hit_latency}-cycle hit, "
            f"{params.l2_reconfig_interval}-insn reconfig interval"
        ),
        "memory latency": f"{timing.memory_latency} cycles",
        "interval scale": f"{params.scale} (vs. paper)",
        "structure scale": f"1/{STRUCTURE_SCALE} (vs. paper)",
    }
    rendered = render_kv_table(
        pairs,
        title="Table 2: baseline configuration of the simulated system "
        "(scaled; see DESIGN.md)",
    )
    return ExhibitResult("table2", rendered, dict(pairs))


# ---------------------------------------------------------------------------
# Table 3 — benchmark descriptions
# ---------------------------------------------------------------------------


def table3() -> ExhibitResult:
    rows = [
        [name, description]
        for name, description in SPECJVM_DESCRIPTIONS.items()
    ]
    rendered = render_table(
        ["benchmark", "description"],
        rows,
        title="Table 3: description of SPECjvm98 benchmarks (stand-ins)",
    )
    return ExhibitResult("table3", rendered, dict(SPECJVM_DESCRIPTIONS))


# ---------------------------------------------------------------------------
# Table 4 — runtime hotspot characteristics
# ---------------------------------------------------------------------------


def table4(suite) -> ExhibitResult:
    headers = [
        "", *[_short(n) for n in suite.comparisons], "avg",
    ]
    metrics: Dict[str, List[float]] = {
        "dynamic instruction count": [],
        "number of hotspots": [],
        "average hotspot size": [],
        "% of code in hotspots": [],
        "avg invocations per hotspot": [],
        "identification latency (%)": [],
    }
    for comparison in suite.comparisons.values():
        run = comparison.hotspot
        metrics["dynamic instruction count"].append(run.instructions)
        metrics["number of hotspots"].append(run.n_hotspots)
        metrics["average hotspot size"].append(run.avg_hotspot_size)
        metrics["% of code in hotspots"].append(
            100 * run.hotspot_coverage
        )
        metrics["avg invocations per hotspot"].append(
            run.avg_invocations_per_hotspot
        )
        metrics["identification latency (%)"].append(
            100 * run.identification_latency
        )
    rows = []
    for label, values in metrics.items():
        rows.append([label, *values, _avg(values)])
    rendered = render_table(
        headers, rows,
        title="Table 4: runtime hotspot characteristics",
    )
    data = {
        label: dict(zip(list(suite.comparisons), values))
        for label, values in metrics.items()
    }
    return ExhibitResult("table4", rendered, data)


# ---------------------------------------------------------------------------
# Table 5 — hotspot and BBV runtime characteristics
# ---------------------------------------------------------------------------


def table5(suite) -> ExhibitResult:
    headers = ["", *[_short(n) for n in suite.comparisons]]
    hot_rows: Dict[str, List[float]] = {
        "number of L1D hotspots": [],
        "number of L2 hotspots": [],
        "total managed hotspots": [],
        "number of tuned hotspots": [],
        "% of tuned hotspots": [],
        "per-hotspot IPC CoV (%)": [],
        "inter-hotspot IPC CoV (%)": [],
    }
    bbv_rows: Dict[str, List[float]] = {
        "number of phases": [],
        "number of tuned phases": [],
        "% of intervals in tuned phases": [],
        "per-phase IPC CoV (%)": [],
        "inter-phase IPC CoV (%)": [],
    }
    for comparison in suite.comparisons.values():
        hs = comparison.hotspot.hotspot_stats
        hot_rows["number of L1D hotspots"].append(
            hs.hotspots_by_kind.get("L1D", 0)
        )
        hot_rows["number of L2 hotspots"].append(
            hs.hotspots_by_kind.get("L2", 0)
        )
        hot_rows["total managed hotspots"].append(hs.managed_hotspots)
        hot_rows["number of tuned hotspots"].append(hs.tuned_hotspots)
        hot_rows["% of tuned hotspots"].append(100 * hs.tuned_fraction)
        hot_rows["per-hotspot IPC CoV (%)"].append(
            100 * hs.per_hotspot_ipc_cov
        )
        hot_rows["inter-hotspot IPC CoV (%)"].append(
            100 * hs.inter_hotspot_ipc_cov
        )
        bs = comparison.bbv.bbv_stats
        bbv_rows["number of phases"].append(bs.n_phases)
        bbv_rows["number of tuned phases"].append(bs.tuned_phases)
        bbv_rows["% of intervals in tuned phases"].append(
            100 * bs.tuned_interval_fraction
        )
        bbv_rows["per-phase IPC CoV (%)"].append(
            100 * bs.per_phase_ipc_cov
        )
        bbv_rows["inter-phase IPC CoV (%)"].append(
            100 * bs.inter_phase_ipc_cov
        )
    rows = [["-- hotspot approach --", *[""] * len(suite.comparisons)]]
    rows.extend([label, *values] for label, values in hot_rows.items())
    rows.append(["-- BBV approach --", *[""] * len(suite.comparisons)])
    rows.extend([label, *values] for label, values in bbv_rows.items())
    rendered = render_table(
        headers, rows,
        title="Table 5: runtime characteristics of the hotspot and BBV "
        "approaches",
    )
    benchmarks = list(suite.comparisons)
    data = {
        "hotspot": {
            label: dict(zip(benchmarks, values))
            for label, values in hot_rows.items()
        },
        "bbv": {
            label: dict(zip(benchmarks, values))
            for label, values in bbv_rows.items()
        },
    }
    return ExhibitResult("table5", rendered, data)


# ---------------------------------------------------------------------------
# Table 6 — tunings, reconfigurations, coverage
# ---------------------------------------------------------------------------


def table6(suite) -> ExhibitResult:
    headers = ["", *[_short(n) for n in suite.comparisons]]
    l1d = L1D_CONFIG.name
    l2 = L2_CONFIG.name
    rows_spec = [
        ("hotspot L1D tunings", "hotspot", "tunings", l1d),
        ("hotspot L1D reconfigs", "hotspot", "reconfigs", l1d),
        ("hotspot L1D coverage (%)", "hotspot", "coverage", l1d),
        ("hotspot L2 tunings", "hotspot", "tunings", l2),
        ("hotspot L2 reconfigs", "hotspot", "reconfigs", l2),
        ("hotspot L2 coverage (%)", "hotspot", "coverage", l2),
        ("BBV L1D tunings", "bbv", "tunings", l1d),
        ("BBV L1D reconfigs", "bbv", "reconfigs", l1d),
        ("BBV L2 tunings", "bbv", "tunings", l2),
        ("BBV L2 reconfigs", "bbv", "reconfigs", l2),
        ("BBV coverage (%)", "bbv", "coverage", l2),
    ]
    table_rows = []
    data: Dict[str, Dict[str, float]] = {}
    for label, scheme, metric, cu_name in rows_spec:
        values = []
        for comparison in suite.comparisons.values():
            stats = (
                comparison.hotspot.hotspot_stats
                if scheme == "hotspot"
                else comparison.bbv.bbv_stats
            )
            value = getattr(stats, metric)[cu_name]
            if metric == "coverage":
                value *= 100
            values.append(value)
        table_rows.append([label, *values])
        data[label] = dict(zip(list(suite.comparisons), values))
    rendered = render_table(
        headers, table_rows,
        title="Table 6: tunings, reconfigurations and coverage of "
        "hotspots and BBV phases",
    )
    return ExhibitResult("table6", rendered, data)


# ---------------------------------------------------------------------------
# Figure 3 — cache energy reduction
# ---------------------------------------------------------------------------


def figure3(suite) -> ExhibitResult:
    names = list(suite.comparisons)
    groups = [_short(n) for n in names] + ["avg"]
    data: Dict[str, Dict[str, float]] = {}
    parts = []
    for cache, sub in (("L1D", "a"), ("L2", "b")):
        bbv = [
            suite.comparisons[n].energy_reduction("bbv", cache)
            for n in names
        ]
        hot = [
            suite.comparisons[n].energy_reduction("hotspot", cache)
            for n in names
        ]
        bbv.append(_avg(bbv))
        hot.append(_avg(hot))
        parts.append(
            render_grouped_bars(
                groups,
                {"BBV": bbv, "hotspot": hot},
                title=f"Figure 3{sub}: {cache} cache energy reduction "
                "over baseline",
            )
        )
        data[cache] = {
            "bbv": dict(zip(groups, bbv)),
            "hotspot": dict(zip(groups, hot)),
        }
    return ExhibitResult("figure3", "\n\n".join(parts), data)


# ---------------------------------------------------------------------------
# Figure 4 — performance impact
# ---------------------------------------------------------------------------


def figure4(suite) -> ExhibitResult:
    names = list(suite.comparisons)
    groups = [_short(n) for n in names] + ["avg"]
    bbv = [suite.comparisons[n].slowdown("bbv") for n in names]
    hot = [suite.comparisons[n].slowdown("hotspot") for n in names]
    bbv.append(_avg(bbv))
    hot.append(_avg(hot))
    rendered = render_grouped_bars(
        groups,
        {"BBV": bbv, "hotspot": hot},
        title="Figure 4: performance degradation over the baseline",
    )
    data = {
        "bbv": dict(zip(groups, bbv)),
        "hotspot": dict(zip(groups, hot)),
    }
    return ExhibitResult("figure4", rendered, data)


# ---------------------------------------------------------------------------
# Supplementary exhibit — energy breakdown (not in the paper; exposes the
# mechanism behind Figure 3: downsizing attacks leakage first)
# ---------------------------------------------------------------------------


def energy_breakdown(suite) -> ExhibitResult:
    headers = ["", *[_short(n) for n in suite.comparisons]]
    rows = []
    data: Dict[str, Dict[str, float]] = {}
    for cache in ("L1D", "L2"):
        for scheme in ("baseline", "hotspot"):
            for component in ("dynamic", "leakage", "reconfig"):
                label = f"{cache} {scheme} {component} (nJ/insn)"
                values = []
                for comparison in suite.comparisons.values():
                    run = getattr(comparison, scheme)
                    breakdown = (
                        run.l1d_breakdown
                        if cache == "L1D"
                        else run.l2_breakdown
                    )
                    values.append(
                        breakdown[component] / max(1, run.instructions)
                    )
                rows.append([label, *[round(v, 4) for v in values]])
                data[label] = dict(
                    zip(list(suite.comparisons), values)
                )
    rendered = render_table(
        headers, rows,
        title="Energy breakdown per instruction (supplementary): where "
        "the Figure 3 savings come from",
    )
    return ExhibitResult("energy_breakdown", rendered, data)


# ---------------------------------------------------------------------------
# Tuning timeline — telemetry exhibit (not in the paper; debugging aid)
# ---------------------------------------------------------------------------


def timeline(telemetry) -> ExhibitResult:
    """Render a traced run's tuning-event timeline and metric summary.

    Unlike the paper exhibits this one consumes a
    :class:`repro.obs.Telemetry` session (from a ``--trace``/``--metrics``
    run), not suite results.  The structured payload carries the raw
    event dicts so harnesses can assert on the detect→tune→pin sequence
    without re-parsing the rendered text.
    """
    from repro.obs import summary_markdown, timeline_markdown

    rendered = (
        timeline_markdown(telemetry)
        + "\n\n"
        + summary_markdown(telemetry)
    )
    return ExhibitResult(
        "timeline",
        rendered,
        {
            "events": [event.to_dict() for event in telemetry.log],
            "counts": telemetry.log.counts(),
            "tracks": telemetry.log.tracks(),
            "dropped": telemetry.log.dropped,
            "metrics": telemetry.metrics.to_dict(),
        },
    )


#: Reference to the paper's values, re-exported for convenience.
PAPER_VALUES = PAPER


def default_config() -> ExperimentConfig:
    """The configuration the exhibits are calibrated against."""
    return ExperimentConfig()
