"""Reporting: ASCII tables/figures, paper reference values, exhibits.

Every table and figure of the paper's evaluation section can be
regenerated through :mod:`repro.report.exhibits`; the renderers in
:mod:`repro.report.tables` and :mod:`repro.report.figures` print them the
way the paper lays them out, side by side with the paper's published
numbers (:mod:`repro.report.paper`).
"""

from repro.report.tables import render_kv_table, render_table
from repro.report.figures import render_bar_chart, render_grouped_bars
from repro.report.paper import PAPER
from repro.report.exhibits import (
    ExhibitResult,
    energy_breakdown,
    figure1,
    figure3,
    figure4,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.report.analysis import (
    hotspot_report,
    phase_report,
    render_hotspot_report,
    render_phase_report,
)

__all__ = [
    "ExhibitResult",
    "PAPER",
    "energy_breakdown",
    "figure1",
    "hotspot_report",
    "phase_report",
    "render_hotspot_report",
    "render_phase_report",
    "figure3",
    "figure4",
    "render_bar_chart",
    "render_grouped_bars",
    "render_kv_table",
    "render_table",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
]
