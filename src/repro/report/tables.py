"""Plain-text table rendering."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    align_left_first: bool = True,
) -> str:
    """Render a boxed ASCII table.

    The first column is left-aligned (labels), the rest right-aligned
    (numbers), matching the paper's table layout.
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            if i == 0 and align_left_first:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    rule = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(rule)
    out.append(line(list(headers)))
    out.append(rule)
    out.extend(line(row) for row in cells)
    out.append(rule)
    return "\n".join(out)


def render_kv_table(
    pairs: Dict[str, object], title: Optional[str] = None
) -> str:
    """Two-column key/value table (used for Table 2's configuration)."""
    return render_table(
        ["parameter", "value"],
        [[k, v] for k, v in pairs.items()],
        title=title,
    )
