"""Markdown rendering of exhibits.

EXPERIMENTS.md carries paper-vs-measured tables in GitHub-flavoured
Markdown; these helpers let `tools/regenerate_experiments.py` emit
refreshed measured sections in the same format.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.report.exhibits import ExhibitResult


def _fmt(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """A GitHub-flavoured Markdown table."""
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "---|" * len(headers))
    for row in rows:
        lines.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(lines)


def per_benchmark_exhibit_to_markdown(
    exhibit: ExhibitResult,
    percent_rows: bool = False,
) -> str:
    """Render an exhibit whose ``data`` maps row-label -> {benchmark: value}.

    Works for table4/table6-shaped data; nested exhibits (table5, figure3)
    have dedicated helpers below.
    """
    labels = list(exhibit.data)
    sample = exhibit.data[labels[0]]
    if not isinstance(sample, dict):
        raise ValueError(
            f"exhibit {exhibit.exhibit!r} is not per-benchmark shaped"
        )
    benchmarks = list(sample)
    rows = []
    for label in labels:
        values = exhibit.data[label]
        if not isinstance(values, dict):
            continue
        row = [label]
        for name in benchmarks:
            value = values.get(name, "")
            if percent_rows and isinstance(value, float):
                value = f"{value:.1%}"
            row.append(value)
        rows.append(row)
    return render_markdown_table(
        ["", *benchmarks], rows, title=exhibit.exhibit
    )


def figure3_to_markdown(exhibit: ExhibitResult) -> str:
    """The Figure 3 comparison as one Markdown table."""
    l1d = exhibit.data["L1D"]
    l2 = exhibit.data["L2"]
    benchmarks = list(l1d["bbv"])
    rows = []
    for name in benchmarks:
        rows.append(
            [
                name,
                f"{l1d['bbv'][name]:.1%}",
                f"{l1d['hotspot'][name]:.1%}",
                f"{l2['bbv'][name]:.1%}",
                f"{l2['hotspot'][name]:.1%}",
            ]
        )
    return render_markdown_table(
        ["benchmark", "L1D BBV", "L1D hotspot", "L2 BBV", "L2 hotspot"],
        rows,
        title="Figure 3 — cache energy reduction",
    )


def figure4_to_markdown(exhibit: ExhibitResult) -> str:
    benchmarks = list(exhibit.data["bbv"])
    rows = [
        [
            name,
            f"{exhibit.data['bbv'][name]:.1%}",
            f"{exhibit.data['hotspot'][name]:.1%}",
        ]
        for name in benchmarks
    ]
    return render_markdown_table(
        ["benchmark", "BBV", "hotspot"],
        rows,
        title="Figure 4 — performance degradation",
    )


def headline_to_markdown(
    figure3_exhibit: ExhibitResult, figure4_exhibit: ExhibitResult
) -> str:
    """The EXPERIMENTS.md headline table, from fresh measurements."""
    l1d = figure3_exhibit.data["L1D"]
    l2 = figure3_exhibit.data["L2"]
    f4 = figure4_exhibit.data
    rows = [
        [
            "L1D energy reduction (avg)", "32%", "47%",
            f"{l1d['bbv']['avg']:.1%}", f"{l1d['hotspot']['avg']:.1%}",
        ],
        [
            "L2 energy reduction (avg)", "52%", "58%",
            f"{l2['bbv']['avg']:.1%}", f"{l2['hotspot']['avg']:.1%}",
        ],
        [
            "slowdown (avg)", "1.87%", "1.56%",
            f"{f4['bbv']['avg']:.1%}", f"{f4['hotspot']['avg']:.1%}",
        ],
    ]
    return render_markdown_table(
        ["metric", "paper BBV", "paper hotspot", "measured BBV",
         "measured hotspot"],
        rows,
        title="Headline comparison",
    )
