"""Global scaling constants shared by configuration and workloads.

This is a leaf module (no repro-internal imports) so that both
:mod:`repro.sim.config` and :mod:`repro.workloads` can use the constants
without creating import cycles.  See DESIGN.md §2 for the scaling
rationale.
"""

#: Divisor applied to every interval-like constant of the paper
#: (reconfiguration intervals, BBV sampling interval, hotspot size bands):
#: the paper's runs are ~10^10 instructions, the reproduction's a few
#: million, and all of the paper's results depend on interval *ratios*.
DEFAULT_INTERVAL_SCALE = 0.01

#: Divisor applied to cache capacities and workload working sets.  The
#: refill cost after a reconfiguration is proportional to cache *content*,
#: which does not shrink with intervals — without this, one resize would
#: stall for several scaled intervals (vs. ~1 % of an interval in the
#: paper).  Scaling structures and working sets together preserves all
#: miss-rate-vs-size relationships while restoring the paper's
#: overhead-to-interval ratio.
STRUCTURE_SCALE = 8
