#!/usr/bin/env python
"""List or prune entries of the persistent experiment result store.

The store (default ``results/store/``, see ``repro.sim.store``) grows one
JSON file per simulated ``(benchmark, scheme, config-fingerprint)`` cell
and is never pruned automatically — entries stay valid for as long as
their fingerprint matches a configuration someone still runs.  This tool
is the maintenance side:

List everything::

    PYTHONPATH=src python tools/store_gc.py

Prune entries older than 30 days::

    PYTHONPATH=src python tools/store_gc.py --older-than-days 30 --prune

Prune corrupt entries and entries with unknown schema versions (left by
older/newer checkouts)::

    PYTHONPATH=src python tools/store_gc.py --unknown-schema --prune

Cap the store at 64 MiB, evicting least-recently-written entries first::

    PYTHONPATH=src python tools/store_gc.py --max-bytes 67108864 --prune

Without ``--prune`` the tool only reports what it *would* delete.  To
wipe the store completely, pass ``--all --prune`` (equivalent to
``repro.sim.experiment.clear_cache()``'s store side).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.sim.store import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    StoreEntryInfo,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="List or prune persistent experiment-store entries."
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        metavar="PATH",
        help="store directory (default: results/store or $REPRO_STORE_DIR)",
    )
    parser.add_argument(
        "--older-than-days",
        type=float,
        default=None,
        metavar="N",
        help="select entries created more than N days ago",
    )
    parser.add_argument(
        "--unknown-schema",
        action="store_true",
        help="select corrupt entries and entries whose schema version is "
        f"not the current one ({STORE_SCHEMA_VERSION})",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="select the oldest entries (by file mtime, LRU) until the "
        "store's total entry bytes fit under N",
    )
    parser.add_argument(
        "--all", action="store_true", help="select every entry"
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_table",
        help="print every entry as one aligned table (file, cell, "
        "fingerprint, schema version, entry bytes, shard and its total "
        "bytes, created age)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="actually delete the selected entries (default: dry run)",
    )
    return parser


def selected(args, entry: StoreEntryInfo) -> bool:
    if args.all:
        return True
    if args.unknown_schema and (entry.corrupt or not entry.known_schema):
        return True
    if (
        args.older_than_days is not None
        and entry.age_days() > args.older_than_days
    ):
        return True
    return False


def describe(entry: StoreEntryInfo) -> str:
    if entry.corrupt:
        detail = "CORRUPT"
    else:
        schema = (
            f"v{entry.schema}"
            if entry.known_schema
            else f"UNKNOWN SCHEMA v{entry.schema}"
        )
        fingerprint = (entry.fingerprint or "?")[:12]
        detail = (
            f"{entry.benchmark}/{entry.scheme} fp={fingerprint} "
            f"{schema} age={entry.age_days():.1f}d"
        )
    return f"{entry.path.name}: {detail}"


def shard_of(entry: StoreEntryInfo) -> str:
    """The content-hash shard an entry lives in (``.`` for flat root)."""
    parent = entry.path.parent.name
    return parent if len(parent) == 2 else "."


def shard_bytes(entries: List[StoreEntryInfo]) -> dict:
    """Total entry bytes per shard directory."""
    totals: dict = {}
    for entry in entries:
        shard = shard_of(entry)
        totals[shard] = totals.get(shard, 0) + entry.size_bytes
    return totals


def render_listing(entries: List[StoreEntryInfo]) -> str:
    """One aligned table over all entries: cell, schema, size, age —
    plus each row's shard and the shard's total bytes."""
    totals = shard_bytes(entries)
    headers = (
        "file",
        "benchmark",
        "scheme",
        "fingerprint",
        "schema",
        "bytes",
        "shard",
        "shard-bytes",
        "age",
    )
    rows = [headers]
    for entry in entries:
        shard = shard_of(entry)
        if entry.corrupt:
            rows.append(
                (
                    entry.path.name,
                    "CORRUPT",
                    "-",
                    "-",
                    "-",
                    str(entry.size_bytes),
                    shard,
                    str(totals[shard]),
                    "-",
                )
            )
            continue
        schema = f"v{entry.schema}" + ("" if entry.known_schema else " (?)")
        rows.append(
            (
                entry.path.name,
                entry.benchmark or "?",
                entry.scheme or "?",
                (entry.fingerprint or "?")[:12],
                schema,
                str(entry.size_bytes),
                shard,
                str(totals[shard]),
                f"{entry.age_days():.1f}d",
            )
        )
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def over_byte_cap(
    entries: List[StoreEntryInfo], max_bytes: int
) -> List[StoreEntryInfo]:
    """Least-recently-written entries whose eviction brings the store's
    total entry bytes under ``max_bytes``.

    LRU by file mtime: the newest entries are kept, the oldest go first.
    Corrupt entries sort with their mtime like everything else (they
    carry no payload worth protecting).  Ties break by path for
    determinism.
    """
    total = sum(entry.size_bytes for entry in entries)
    if total <= max_bytes:
        return []
    victims: List[StoreEntryInfo] = []
    for entry in sorted(
        entries, key=lambda e: (e.mtime, str(e.path))
    ):
        if total <= max_bytes:
            break
        victims.append(entry)
        total -= entry.size_bytes
    return victims


def main(argv: List[str] = None) -> int:
    args = build_parser().parse_args(argv)
    store = ResultStore(args.store_dir)
    if not store.root.is_dir():
        print(f"store {store.root} does not exist; nothing to do")
        return 0
    if args.list_table:
        entries = list(store.entries())
        if entries:
            print(render_listing(entries))
        print(
            f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
            f"in {store.root}"
        )
        quarantined = store.corrupt_files()
        if quarantined:
            print()
            print(f"{len(quarantined)} quarantined (corrupt) file(s):")
            for path in quarantined:
                reason = store.quarantine_reason(path) or "no reason recorded"
                print(f"  {path.name}: {reason}")
            print("  (prune with --all --prune)")
        stale = store.stale_tmp_files()
        if stale:
            print()
            print(
                f"{len(stale)} leftover .tmp file(s) — debris of crashed "
                "atomic writes:"
            )
            for path in stale:
                print(f"  {path.name}")
            print("  (prune with --all --prune)")
        leases = store.stale_lease_files()
        if leases:
            print()
            print(
                f"{len(leases)} stale shard lease(s) — dead writers "
                "(live writers take these over automatically):"
            )
            for path in leases:
                print(f"  {path.parent.name}/{path.name}")
            print("  (prune with --all --prune)")
        return 0
    filtering = (
        args.all
        or args.unknown_schema
        or args.older_than_days is not None
        or args.max_bytes is not None
    )
    total = 0
    all_entries: List[StoreEntryInfo] = []
    chosen: List[StoreEntryInfo] = []
    for entry in store.entries():
        total += 1
        all_entries.append(entry)
        if not filtering:
            print(describe(entry))
        elif selected(args, entry):
            chosen.append(entry)
    if args.max_bytes is not None:
        already = {str(entry.path) for entry in chosen}
        chosen.extend(
            entry
            for entry in over_byte_cap(all_entries, max(0, args.max_bytes))
            if str(entry.path) not in already
        )
    if not filtering:
        print(f"{total} entr{'y' if total == 1 else 'ies'} in {store.root}")
        return 0
    verb = "pruning" if args.prune else "would prune"
    for entry in chosen:
        print(f"{verb} {describe(entry)}")
        if args.prune:
            try:
                entry.path.unlink()
            except OSError as error:
                print(f"  failed: {error}", file=sys.stderr)
    extra = 0
    if args.all:
        # A full wipe also clears quarantined files (with their reason
        # sidecars) and crashed-writer .tmp debris.
        for path in store.corrupt_files():
            reason_path = path.with_name(path.name + ".reason")
            print(f"{verb} {path.name}: quarantined")
            extra += 1
            if args.prune:
                for victim in (path, reason_path):
                    try:
                        victim.unlink()
                    except OSError:
                        pass
        for path in store.stale_tmp_files():
            print(f"{verb} {path.name}: leftover .tmp")
            extra += 1
            if args.prune:
                try:
                    path.unlink()
                except OSError as error:
                    print(f"  failed: {error}", file=sys.stderr)
        for path in store.stale_lease_files():
            print(f"{verb} {path.parent.name}/{path.name}: stale lease")
            extra += 1
            if args.prune:
                try:
                    path.unlink()
                except OSError as error:
                    print(f"  failed: {error}", file=sys.stderr)
    suffix = f" (+{extra} corrupt/tmp file(s))" if extra else ""
    print(
        f"{verb} {len(chosen)} of {total} "
        f"entr{'y' if total == 1 else 'ies'} in {store.root}{suffix}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
