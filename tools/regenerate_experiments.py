"""Regenerate the measured exhibits and write them under results/.

Usage::

    python tools/regenerate_experiments.py [--instructions N] [--out DIR]

Produces:
    results/exhibits.txt    — every exhibit, rendered
    results/summary.md      — the headline table in Markdown, for
                              pasting into EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import os
import time

from repro.report import exhibits
from repro.sim.config import ExperimentConfig
from repro.sim.experiment import run_suite


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--instructions", type=int, default=None)
    parser.add_argument("--out", default="results")
    args = parser.parse_args()

    config = ExperimentConfig()
    if args.instructions:
        config.max_instructions = args.instructions

    print("simulating the full suite ...")
    start = time.time()
    suite = run_suite(config=config)
    print(f"done in {time.time() - start:.0f}s")

    os.makedirs(args.out, exist_ok=True)

    builders = [
        exhibits.figure1,
        exhibits.table1,
        lambda _s: exhibits.table2(),
        lambda _s: exhibits.table3(),
        exhibits.table4,
        exhibits.table5,
        exhibits.table6,
        exhibits.figure3,
        exhibits.figure4,
        exhibits.energy_breakdown,
    ]
    exhibits_path = os.path.join(args.out, "exhibits.txt")
    with open(exhibits_path, "w") as fp:
        for build in builders:
            fp.write(build(suite).rendered)
            fp.write("\n\n")
    print(f"wrote {exhibits_path}")

    from repro.report.markdown import (
        figure3_to_markdown,
        figure4_to_markdown,
        headline_to_markdown,
        per_benchmark_exhibit_to_markdown,
    )

    fig3 = exhibits.figure3(suite)
    fig4 = exhibits.figure4(suite)
    summary_path = os.path.join(args.out, "summary.md")
    with open(summary_path, "w") as fp:
        fp.write(headline_to_markdown(fig3, fig4))
        fp.write("\n\n")
        fp.write(figure3_to_markdown(fig3))
        fp.write("\n\n")
        fp.write(figure4_to_markdown(fig4))
        fp.write("\n\n")
        fp.write(
            per_benchmark_exhibit_to_markdown(exhibits.table4(suite))
        )
        fp.write("\n")
    print(f"wrote {summary_path}")


if __name__ == "__main__":
    main()
