#!/usr/bin/env python
"""Perf-regression benchmark suite for the simulation kernels.

Times representative cells and writes a ``BENCH_<date>.json`` snapshot:

* ``kernel:<benchmark>/<scheme>`` — one full simulation under the
  reference kernel and under the fast kernel, interleaved min-of-N (both
  kernels are timed back to back inside each repetition, so machine
  noise hits both alike).  The heaviest cells run at double budget —
  these are the numbers the fast-kernel default is gated on.
* ``kernel-turbo:<benchmark>/<scheme>`` — the same cell under all three
  kernels (reference, fast, turbo), interleaved min-of-N, each on the
  config a user selecting that kernel would run (turbo auto-selects the
  split decider stream).  Batching-live cells (baseline scheme) run at
  4x budget — turbo's whole-interval batching amortises its table setup
  over the run, and multi-million-instruction sweeps are what the tier
  exists for — and are gated on both ``speedup_cpu_vs_reference`` and
  ``speedup_cpu_vs_fast``.  Measuring-policy cells (hotspot) pin the
  deoptimisation story instead: turbo must stay within a parity band of
  fast, because ``bulk_pause_depth`` forces its exact scalar path.
  Every turbo cell also re-runs the statistical equivalence smoke
  (decisions exact, metrics within ``tests/tolerance_spec.json``) at a
  small budget and records the verdict, which ``--check`` requires to
  be a pass.
* ``engine:cold`` — a suite batch (benchmarks x 3 schemes) against an
  empty persistent store (every cell simulates);
* ``engine:warm`` — the same batch again on the populated store (every
  cell is a store hit; measures the cache read path);
* ``engine:jobs2`` — the same batch, fresh store, two worker processes,
  including the pool spawn + warm-up a first batch pays;
* ``obs:overhead`` — telemetry cost on one hotspot cell, interleaved
  min-of-N over three variants: ``off`` (no telemetry argument at all),
  ``null`` (the explicit ``NULL_TELEMETRY`` sink — the instrumented-but-
  disabled path every untraced run takes), and ``capture`` (a live
  ``Telemetry`` session).  The gate holds ``null`` within noise of
  ``off``; the ``capture`` ratio is recorded as context, not gated —
  tracing is opt-in and allowed to cost something.
* ``engine:parallel-efficiency`` — steady-state scheduling cost: the
  same batch (caches off, so every cell simulates) through a serial
  engine versus a jobs=2 engine whose persistent pool is already warm.
  The pool spawn is deliberately outside the timed region — a
  persistent pool pays it once per engine, not per batch — and the
  host's CPU count is recorded so the gate can be interpreted.
* ``engine:makespan-skew`` — the scheduler cell: a deliberately skewed
  batch (10 light cells + 2 heavy cells at ~10x the light budget, the
  heavies *last* in submission order) through two warm jobs=2 engines
  sharing one pre-trained cost model — one under ``schedule="fifo"``
  (the legacy count-based chunks pair both heavies into the final
  chunk, serialising them on one worker), one under ``schedule="lpt"``
  (cost-balanced packing runs the heavies in parallel up front).  The
  gate requires LPT to beat FIFO by ``SKEW_MIN_SPEEDUP`` wall clock on
  a multi-core host; on a single-core host the ratio is recorded, not
  gated (there is no parallelism for the plan to exploit).

For the *kernel* cells the compared statistic is CPU time
(``time.process_time``): single-process, so it is the less noisy clock.
For the *engine* cells the primary statistic is **wall time** — a
multi-process batch burns its CPU in the workers, where the parent's
``process_time`` cannot see it, so the engine cells' ``cpu_s`` is
recorded only as context and must never be compared.

``--check --baseline BENCH_x.json`` exits non-zero when the fast
kernel's speedup collapses against the committed baseline (tolerance is
deliberately loose: this is a smoke gate against "someone pessimised the
fast path", not a microbenchmark).  The parallel-efficiency gate is
core-aware: on a multi-core host jobs=2 must beat serial cold outright;
on a single-core host that is physically impossible, so the gate bounds
the parallelism overhead instead (``SINGLE_CORE_OVERHEAD``).

Usage::

    PYTHONPATH=src python tools/bench.py                 # full run
    PYTHONPATH=src python tools/bench.py --quick         # CI smoke: 300k budget, 1 repeat
    PYTHONPATH=src python tools/bench.py --quick --check --baseline BENCH_2026-08-06.json
"""

from __future__ import annotations

import argparse
import datetime
import gc
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.sim.config import ExperimentConfig
from repro.sim.driver import RunSpec, execute
from repro.sim.engine import Engine
from repro.sim.experiment import run_suite
from repro.sim.store import ResultStore

# The turbo cells reuse the statistical-equivalence harness from the
# test tree (single source of truth for the tolerance contract), which
# imports as the ``tests`` package from the repo root.
_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT))

SCHEMA = 1

#: (benchmark, scheme, heavy) — ``heavy`` cells run at 2x budget; they
#: are the suite's dominant cost and the speedup gate's subject.
KERNEL_CELLS = (
    ("db", "baseline", True),
    ("jack", "baseline", True),
    ("db", "bbv", False),
    ("db", "hotspot", False),
    ("mtrt", "hotspot", False),
)

#: (benchmark, scheme, budget multiplier, batching_live) for the
#: three-kernel turbo cells.  ``batching_live`` says whether turbo's
#: batched path actually runs there (baseline scheme) or the cell pins
#: deoptimisation parity instead (measuring policies force the exact
#: scalar path); the ``--check`` gate differs accordingly.
TURBO_CELLS = (
    ("db", "baseline", 4, True),
    ("jack", "baseline", 4, True),
    ("db", "hotspot", 1, False),
)

#: Suite subset for the engine cells (x 3 schemes each).
ENGINE_BENCHMARKS = ("db", "jess")

#: --check tolerances.  A fast-kernel speedup may wobble with machine
#: load; it must stay above an absolute floor and above a fraction of
#: the committed baseline.
SPEEDUP_ABS_FLOOR = 1.25
SPEEDUP_REL_TOLERANCE = 0.5
#: Turbo gates.  Batching-live cells must beat the reference and the
#: fast kernel outright (absolute floors hold even in --quick, where
#: budgets shrink and turbo's amortisation suffers most); deopt cells
#: must stay within a parity band of fast — turbo there *is* the fast
#: path plus a per-quantum flag check.
TURBO_VS_REF_ABS_FLOOR = 2.0
TURBO_VS_FAST_ABS_FLOOR = 1.2
TURBO_DEOPT_PARITY = 0.7
#: Budget for each turbo cell's statistical-equivalence smoke run.
TURBO_SMOKE_BUDGET = 200_000
#: The warm engine pass serves every cell from the store; it must beat
#: the cold pass outright (wall clock — see the module docstring).
WARM_COLD_FACTOR = 0.9
#: On a single-core host a jobs=2 batch cannot beat the serial pass on
#: raw simulation time; the gate instead requires the steady-state
#: parallel overhead (chunk pickling, result shipping, scheduling) to
#: stay within this factor of the serial wall clock.
SINGLE_CORE_OVERHEAD = 1.15
#: The makespan-skew cell: light/heavy split and the LPT-vs-FIFO
#: wall-clock gate (multi-core hosts only; see the module docstring).
SKEW_LIGHT_CELLS = 10
SKEW_HEAVY_CELLS = 2
SKEW_FACTOR = 10
SKEW_MIN_SPEEDUP = 1.3
#: The instrumented-but-disabled telemetry path (NULL_TELEMETRY sink)
#: must stay within noise of running with no telemetry argument at all:
#: a multiplicative bound plus a small absolute slack so sub-second
#: cells don't fail on scheduler jitter.
OBS_NULL_OVERHEAD_FACTOR = 1.15
OBS_ABS_SLACK_S = 0.05


def _time_once(fn: Callable[[], object]) -> Dict[str, float]:
    gc.collect()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    fn()
    return {
        "wall_s": time.perf_counter() - wall0,
        "cpu_s": time.process_time() - cpu0,
    }


def _merge_min(best: Optional[Dict[str, float]], sample: Dict[str, float]):
    if best is None:
        return dict(sample)
    return {key: min(best[key], sample[key]) for key in best}


def bench_kernel_cell(
    benchmark: str, scheme: str, budget: int, repeats: int
) -> Dict[str, object]:
    """Interleaved min-of-N timing of one cell under both kernels."""
    timings: Dict[str, Optional[Dict[str, float]]] = {
        "reference": None, "fast": None,
    }
    for _ in range(repeats):
        for kernel in ("reference", "fast"):
            spec = RunSpec(
                benchmark, scheme,
                ExperimentConfig(
                    max_instructions=budget, sim_kernel=kernel
                ),
            )
            sample = _time_once(lambda spec=spec: execute(spec))
            timings[kernel] = _merge_min(timings[kernel], sample)
    reference, fast = timings["reference"], timings["fast"]
    return {
        "budget": budget,
        "repeats": repeats,
        "reference": reference,
        "fast": fast,
        "speedup_wall": reference["wall_s"] / fast["wall_s"],
        "speedup_cpu": reference["cpu_s"] / fast["cpu_s"],
    }


def _turbo_available() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def bench_turbo_cell(
    benchmark: str, scheme: str, budget: int, repeats: int
) -> Dict[str, object]:
    """Interleaved min-of-N timing of one cell under all three kernels.

    Each kernel runs the config a user selecting it would run: reference
    and fast keep the byte-stable default (shared decider stream), turbo
    auto-selects the split stream.  The statistical-equivalence smoke at
    the end is the correctness side of the same coin — a turbo speedup
    only counts if the cell still passes its equivalence contract.
    """
    timings: Dict[str, Optional[Dict[str, float]]] = {
        "reference": None, "fast": None, "turbo": None,
    }
    for _ in range(repeats):
        for kernel in ("reference", "fast", "turbo"):
            spec = RunSpec(
                benchmark, scheme,
                ExperimentConfig(
                    max_instructions=budget, sim_kernel=kernel
                ),
            )
            sample = _time_once(lambda spec=spec: execute(spec))
            timings[kernel] = _merge_min(timings[kernel], sample)
    reference, fast, turbo = (
        timings["reference"], timings["fast"], timings["turbo"]
    )
    smoke_budget = min(budget, TURBO_SMOKE_BUDGET)
    try:
        from tests.stat_equivalence import assert_cell_stat_equivalent

        assert_cell_stat_equivalent(
            benchmark, scheme, max_instructions=smoke_budget
        )
        smoke: Dict[str, object] = {"budget": smoke_budget, "pass": True}
    except AssertionError as exc:
        smoke = {
            "budget": smoke_budget, "pass": False, "error": str(exc),
        }
    return {
        "budget": budget,
        "repeats": repeats,
        "reference": reference,
        "fast": fast,
        "turbo": turbo,
        "speedup_cpu_vs_reference": reference["cpu_s"] / turbo["cpu_s"],
        "speedup_cpu_vs_fast": fast["cpu_s"] / turbo["cpu_s"],
        "speedup_wall_vs_reference": reference["wall_s"] / turbo["wall_s"],
        "equivalence_smoke": smoke,
    }


def bench_obs_overhead(budget: int, repeats: int) -> Dict[str, object]:
    """Interleaved min-of-N telemetry-overhead timing of one hot cell.

    All three variants run back to back inside each repetition so
    machine noise hits them alike; CPU time is the compared statistic
    (single process, the less noisy clock).
    """
    from repro.obs import NULL_TELEMETRY, Telemetry

    def spec() -> RunSpec:
        return RunSpec(
            "db", "hotspot", ExperimentConfig(max_instructions=budget)
        )

    variants: Dict[str, Optional[Dict[str, float]]] = {
        "off": None, "null": None, "capture": None,
    }
    for _ in range(repeats):
        variants["off"] = _merge_min(
            variants["off"], _time_once(lambda: execute(spec()))
        )
        variants["null"] = _merge_min(
            variants["null"],
            _time_once(lambda: execute(spec(), telemetry=NULL_TELEMETRY)),
        )
        variants["capture"] = _merge_min(
            variants["capture"],
            _time_once(lambda: execute(spec(), telemetry=Telemetry())),
        )
    off, null, capture = (
        variants["off"], variants["null"], variants["capture"]
    )
    return {
        "budget": budget,
        "repeats": repeats,
        "off": off,
        "null": null,
        "capture": capture,
        "null_ratio_cpu": null["cpu_s"] / off["cpu_s"],
        "capture_ratio_cpu": capture["cpu_s"] / off["cpu_s"],
    }


def bench_engine_cells(budget: int, repeats: int) -> Dict[str, object]:
    """Cold store / warm store / jobs=2 suite batches (fast kernel)."""
    config = ExperimentConfig(max_instructions=budget)
    cells: Dict[str, Optional[Dict[str, float]]] = {
        "engine:cold": None, "engine:warm": None, "engine:jobs2": None,
    }
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
            store = ResultStore(Path(tmp))

            def cold():
                run_suite(
                    ENGINE_BENCHMARKS, config,
                    engine=Engine(store=store, memory_cache={}),
                )

            def warm():
                run_suite(
                    ENGINE_BENCHMARKS, config,
                    engine=Engine(store=store, memory_cache={}),
                )

            cells["engine:cold"] = _merge_min(
                cells["engine:cold"], _time_once(cold)
            )
            cells["engine:warm"] = _merge_min(
                cells["engine:warm"], _time_once(warm)
            )
        with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
            store2 = ResultStore(Path(tmp))
            engine2 = Engine(jobs=2, store=store2, memory_cache={})

            def jobs2():
                run_suite(ENGINE_BENCHMARKS, config, engine=engine2)

            # Timed region includes pool spawn + worker warm-up — the
            # cost a first batch actually pays; shutdown is not timed
            # (a persistent pool never pays it per batch).
            cells["engine:jobs2"] = _merge_min(
                cells["engine:jobs2"], _time_once(jobs2)
            )
            engine2.close()
    n_cells = len(ENGINE_BENCHMARKS) * 3
    host_cpus = os.cpu_count() or 1
    out = {
        name: dict(
            timing, budget=budget, cells=n_cells, host_cpus=host_cpus
        )
        for name, timing in cells.items()
    }
    out["engine:parallel-efficiency"] = bench_parallel_efficiency(
        config, repeats, n_cells
    )
    out["engine:makespan-skew"] = bench_makespan_skew(budget, repeats)
    return out


def _skew_specs(light_budget: int, heavy_budget: int) -> list:
    """10 light + 2 heavy cells, heavies last in submission order.

    Distinct seeds keep the cells' fingerprints distinct (no dedup
    collapse) while the cost key — benchmark/scheme/kernel/budget
    bucket — still groups all lights together and all heavies together,
    which is exactly what the scheduler's estimates key on.
    """
    lights = [
        RunSpec(
            "db",
            "baseline",
            ExperimentConfig(max_instructions=light_budget, seed=seed),
        )
        for seed in range(SKEW_LIGHT_CELLS)
    ]
    heavies = [
        RunSpec(
            "db",
            "baseline",
            ExperimentConfig(max_instructions=heavy_budget, seed=100 + n),
        )
        for n in range(SKEW_HEAVY_CELLS)
    ]
    return lights + heavies


def bench_makespan_skew(budget: int, repeats: int) -> Dict[str, object]:
    """LPT vs FIFO wall clock on a deliberately skewed jobs=2 batch.

    One untimed training batch teaches a shared cost model the ~10:1
    light/heavy split; then two warm engines run the same batch with
    caches off — identical work, identical results, only the chunk plan
    differs.  FIFO's count-based chunks pair both heavies into the last
    chunk (they serialise on one worker after the lights drain); LPT
    fronts them on separate workers.
    """
    from repro.sim.costmodel import CostModel

    light_budget = max(5_000, budget // 2)
    heavy_budget = light_budget * SKEW_FACTOR
    specs = _skew_specs(light_budget, heavy_budget)
    model = CostModel()
    trainer = Engine(
        jobs=2, use_cache=False, memory_cache={}, cost_model=model
    )
    try:
        trainer.run(specs)  # untimed: teaches the model the skew
    finally:
        trainer.close()
    engines = {
        "fifo": Engine(
            jobs=2,
            use_cache=False,
            memory_cache={},
            schedule="fifo",
            cost_model=model,
        ),
        "lpt": Engine(
            jobs=2,
            use_cache=False,
            memory_cache={},
            schedule="lpt",
            cost_model=model,
        ),
    }
    best: Dict[str, Optional[Dict[str, float]]] = {
        "fifo": None, "lpt": None,
    }
    try:
        # Pool spawn + benchmark warm-up untimed, as in the
        # parallel-efficiency cell: one throwaway light cell each.
        warm = [
            RunSpec(
                "db",
                "baseline",
                ExperimentConfig(max_instructions=light_budget, seed=999),
            )
        ]
        for engine in engines.values():
            engine.run(warm)
        for _ in range(repeats):
            for mode, engine in engines.items():
                best[mode] = _merge_min(
                    best[mode],
                    _time_once(lambda e=engine: e.run(specs)),
                )
        predicted = engines["lpt"].stats.predicted_makespan_s
    finally:
        for engine in engines.values():
            engine.close()
    fifo_wall = best["fifo"]["wall_s"]
    lpt_wall = best["lpt"]["wall_s"]
    return {
        "light_budget": light_budget,
        "heavy_budget": heavy_budget,
        "cells": len(specs),
        "jobs": 2,
        "repeats": repeats,
        "fifo_wall_s": fifo_wall,
        "lpt_wall_s": lpt_wall,
        "speedup_wall": fifo_wall / lpt_wall,
        "lpt_predicted_makespan_s": predicted,
        "host_cpus": os.cpu_count() or 1,
    }


def bench_parallel_efficiency(
    config: ExperimentConfig, repeats: int, n_cells: int
) -> Dict[str, object]:
    """Steady-state serial vs warm-pool jobs=2 batch wall clock.

    Both engines run with caches off so every cell simulates every time;
    the parallel engine's pool is spawned and warmed by an untimed
    throwaway batch first (a persistent pool pays that once per engine,
    not per batch).
    """
    specs = [
        RunSpec(benchmark, scheme, config)
        for benchmark in ENGINE_BENCHMARKS
        for scheme in ("baseline", "bbv", "hotspot")
    ]
    serial_engine = Engine(jobs=1, use_cache=False, memory_cache={})
    parallel_engine = Engine(jobs=2, use_cache=False, memory_cache={})
    try:
        parallel_engine.run(specs)  # spawn + warm the pool, untimed
        serial_best: Optional[Dict[str, float]] = None
        parallel_best: Optional[Dict[str, float]] = None
        for _ in range(repeats):
            serial_best = _merge_min(
                serial_best,
                _time_once(lambda: serial_engine.run(specs)),
            )
            parallel_best = _merge_min(
                parallel_best,
                _time_once(lambda: parallel_engine.run(specs)),
            )
    finally:
        parallel_engine.close()
    serial_wall = serial_best["wall_s"]
    parallel_wall = parallel_best["wall_s"]
    return {
        "budget": config.max_instructions,
        "cells": n_cells,
        "jobs": 2,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "wall_ratio": serial_wall / parallel_wall,
        "host_cpus": os.cpu_count() or 1,
    }


def run_bench(budget: int, repeats: int, mode: str) -> Dict[str, object]:
    cells: Dict[str, object] = {}
    for benchmark, scheme, heavy in KERNEL_CELLS:
        cell_budget = budget * 2 if heavy else budget
        name = f"kernel:{benchmark}/{scheme}"
        print(f"  {name} @{cell_budget} ...", flush=True)
        cells[name] = bench_kernel_cell(
            benchmark, scheme, cell_budget, repeats
        )
        entry = cells[name]
        print(
            f"    ref cpu={entry['reference']['cpu_s']:.3f}s "
            f"fast cpu={entry['fast']['cpu_s']:.3f}s "
            f"speedup={entry['speedup_cpu']:.2f}x"
        )
    if _turbo_available():
        for benchmark, scheme, multiplier, live in TURBO_CELLS:
            cell_budget = budget * multiplier
            name = f"kernel-turbo:{benchmark}/{scheme}"
            print(f"  {name} @{cell_budget} ...", flush=True)
            cells[name] = bench_turbo_cell(
                benchmark, scheme, cell_budget, repeats
            )
            entry = cells[name]
            smoke = entry["equivalence_smoke"]
            print(
                f"    ref cpu={entry['reference']['cpu_s']:.3f}s "
                f"fast cpu={entry['fast']['cpu_s']:.3f}s "
                f"turbo cpu={entry['turbo']['cpu_s']:.3f}s "
                f"vs_ref={entry['speedup_cpu_vs_reference']:.2f}x "
                f"vs_fast={entry['speedup_cpu_vs_fast']:.2f}x "
                f"smoke={'pass' if smoke['pass'] else 'FAIL'}"
            )
    else:
        print("  kernel-turbo cells skipped (numpy unavailable)")
    print("  obs:overhead ...", flush=True)
    cells["obs:overhead"] = bench_obs_overhead(budget, repeats)
    obs = cells["obs:overhead"]
    print(
        f"    off cpu={obs['off']['cpu_s']:.3f}s "
        f"null={obs['null_ratio_cpu']:.3f}x "
        f"capture={obs['capture_ratio_cpu']:.3f}x"
    )
    print("  engine cells ...", flush=True)
    cells.update(bench_engine_cells(budget // 4, max(1, repeats - 3)))
    efficiency = cells["engine:parallel-efficiency"]
    print(
        f"    parallel-efficiency: serial "
        f"wall={efficiency['serial_wall_s']:.3f}s warm-pool jobs2 "
        f"wall={efficiency['parallel_wall_s']:.3f}s "
        f"ratio={efficiency['wall_ratio']:.2f}x "
        f"(host_cpus={efficiency['host_cpus']})"
    )
    skew = cells["engine:makespan-skew"]
    print(
        f"    makespan-skew: fifo wall={skew['fifo_wall_s']:.3f}s "
        f"lpt wall={skew['lpt_wall_s']:.3f}s "
        f"speedup={skew['speedup_wall']:.2f}x "
        f"(host_cpus={skew['host_cpus']})"
    )

    kernel_entries = {
        name: entry for name, entry in cells.items()
        if name.startswith("kernel:")
    }
    heavy_names = [
        f"kernel:{b}/{s}" for b, s, heavy in KERNEL_CELLS if heavy
    ]
    summary = {
        "min_kernel_speedup_cpu": min(
            e["speedup_cpu"] for e in kernel_entries.values()
        ),
        "max_kernel_speedup_cpu": max(
            e["speedup_cpu"] for e in kernel_entries.values()
        ),
        "heaviest_cells": {
            name: cells[name]["speedup_cpu"] for name in heavy_names
        },
        "parallel_wall_ratio": efficiency["wall_ratio"],
        "makespan_skew_speedup_wall": skew["speedup_wall"],
        "host_cpus": efficiency["host_cpus"],
        "obs_null_ratio_cpu": obs["null_ratio_cpu"],
        "obs_capture_ratio_cpu": obs["capture_ratio_cpu"],
    }
    turbo_entries = {
        name: entry for name, entry in cells.items()
        if name.startswith("kernel-turbo:")
    }
    if turbo_entries:
        summary["turbo_cells"] = {
            name: {
                "vs_reference": entry["speedup_cpu_vs_reference"],
                "vs_fast": entry["speedup_cpu_vs_fast"],
                "smoke_pass": entry["equivalence_smoke"]["pass"],
            }
            for name, entry in turbo_entries.items()
        }
    return {
        "schema": SCHEMA,
        "date": datetime.date.today().isoformat(),
        "mode": mode,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "budget": budget,
        "repeats": repeats,
        "cells": cells,
        "summary": summary,
    }


class _GateTable:
    """Collects one row per gate and renders them as one aligned delta
    table: every cell's current value next to its baseline value and
    the requirement, pass/fail per gate — never first-failure-only."""

    HEADERS = ("cell", "metric", "current", "baseline", "required", "status")

    def __init__(self) -> None:
        self.rows: list = []
        self.failures = 0

    def gate(
        self,
        cell: str,
        metric: str,
        value: str,
        base: str,
        required: str,
        passed: Optional[bool],
    ) -> None:
        """``passed=None`` records an ungated context row (``info``)."""
        if passed is None:
            status = "info"
        elif passed:
            status = "ok"
        else:
            status = "REGRESSION"
            self.failures += 1
        self.rows.append((cell, metric, value, base, required, status))

    def render(self) -> str:
        rows = [self.HEADERS] + [
            tuple(str(field) for field in row) for row in self.rows
        ]
        widths = [
            max(len(row[column]) for row in rows)
            for column in range(len(self.HEADERS))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  "
                + "  ".join(
                    field.ljust(width)
                    for field, width in zip(row, widths)
                ).rstrip()
            )
            if index == 0:
                lines.append(
                    "  " + "  ".join("-" * width for width in widths)
                )
        return "\n".join(lines)


def _base_value(base_cells, name, key) -> str:
    entry = base_cells.get(name)
    if not isinstance(entry, dict) or key not in entry:
        return "-"
    value = entry[key]
    if isinstance(value, dict):
        return "-"
    return f"{value:.2f}" if isinstance(value, float) else str(value)


def check_against_baseline(
    current: Dict[str, object], baseline: Dict[str, object]
) -> int:
    """Regression gate; returns the number of failures (0 = pass).

    Every gated metric is evaluated and printed as one per-cell delta
    table (current vs baseline vs requirement); the return value counts
    the failing gates, so a run with three regressions reports all
    three, not just the first.
    """
    table = _GateTable()
    base_cells = baseline.get("cells", {})
    for name, entry in current["cells"].items():
        if not name.startswith("kernel:"):
            continue
        speedup = entry["speedup_cpu"]
        base = base_cells.get(name)
        required = SPEEDUP_ABS_FLOOR
        if base is not None:
            required = max(
                required, base["speedup_cpu"] * SPEEDUP_REL_TOLERANCE
            )
        table.gate(
            name,
            "speedup_cpu",
            f"{speedup:.2f}x",
            _base_value(base_cells, name, "speedup_cpu"),
            f">= {required:.2f}x",
            speedup >= required,
        )
    live_cells = {
        f"kernel-turbo:{b}/{s}": live for b, s, _, live in TURBO_CELLS
    }
    for name, entry in current["cells"].items():
        if not name.startswith("kernel-turbo:"):
            continue
        vs_ref = entry["speedup_cpu_vs_reference"]
        vs_fast = entry["speedup_cpu_vs_fast"]
        base = base_cells.get(name)
        if live_cells.get(name, True):
            required_ref = TURBO_VS_REF_ABS_FLOOR
            required_fast = TURBO_VS_FAST_ABS_FLOOR
            if base is not None:
                required_ref = max(
                    required_ref,
                    base["speedup_cpu_vs_reference"] * SPEEDUP_REL_TOLERANCE,
                )
                required_fast = max(
                    required_fast,
                    base["speedup_cpu_vs_fast"] * SPEEDUP_REL_TOLERANCE,
                )
        else:
            # Deoptimised cell: turbo is the fast path plus a flag
            # check, so the gate is a parity band, not a speedup.
            required_ref = SPEEDUP_ABS_FLOOR
            required_fast = TURBO_DEOPT_PARITY
        smoke = entry["equivalence_smoke"]
        table.gate(
            name,
            "speedup_cpu_vs_reference",
            f"{vs_ref:.2f}x",
            _base_value(base_cells, name, "speedup_cpu_vs_reference"),
            f">= {required_ref:.2f}x",
            vs_ref >= required_ref,
        )
        table.gate(
            name,
            "speedup_cpu_vs_fast",
            f"{vs_fast:.2f}x",
            _base_value(base_cells, name, "speedup_cpu_vs_fast"),
            f">= {required_fast:.2f}x",
            vs_fast >= required_fast,
        )
        table.gate(
            name,
            "equivalence_smoke",
            "pass" if smoke["pass"] else "FAIL",
            "-",
            "pass",
            bool(smoke["pass"]),
        )
    cold = current["cells"].get("engine:cold")
    warm = current["cells"].get("engine:warm")
    if cold and warm:
        # Wall clock on purpose: engine batches burn CPU in worker
        # processes the parent's process_time cannot see.
        limit = cold["wall_s"] * WARM_COLD_FACTOR
        table.gate(
            "engine:warm",
            "wall_s",
            f"{warm['wall_s']:.3f}s",
            _base_value(base_cells, "engine:warm", "wall_s"),
            f"<= {limit:.3f}s (cold x {WARM_COLD_FACTOR})",
            warm["wall_s"] <= limit,
        )
    obs = current["cells"].get("obs:overhead")
    if obs:
        limit = (
            obs["off"]["cpu_s"] * OBS_NULL_OVERHEAD_FACTOR
            + OBS_ABS_SLACK_S
        )
        table.gate(
            "obs:overhead",
            "null_cpu_s",
            f"{obs['null']['cpu_s']:.3f}s",
            "-",
            f"<= {limit:.3f}s (off={obs['off']['cpu_s']:.3f}s)",
            obs["null"]["cpu_s"] <= limit,
        )
        table.gate(
            "obs:overhead",
            "capture_ratio_cpu",
            f"{obs['capture_ratio_cpu']:.2f}x",
            _base_value(base_cells, "obs:overhead", "capture_ratio_cpu"),
            "(recorded, not gated)",
            None,
        )
    efficiency = current["cells"].get("engine:parallel-efficiency")
    if efficiency:
        cpus = int(efficiency.get("host_cpus", 1))
        parallel = efficiency["parallel_wall_s"]
        serial = efficiency["serial_wall_s"]
        if cpus >= 2:
            passed = parallel < serial
            requirement = f"< serial {serial:.3f}s ({cpus} cpus)"
        else:
            passed = parallel <= serial * SINGLE_CORE_OVERHEAD
            requirement = (
                f"<= {serial * SINGLE_CORE_OVERHEAD:.3f}s "
                f"(1 cpu: serial x {SINGLE_CORE_OVERHEAD})"
            )
        table.gate(
            "engine:parallel-efficiency",
            "parallel_wall_s",
            f"{parallel:.3f}s",
            _base_value(
                base_cells, "engine:parallel-efficiency", "parallel_wall_s"
            ),
            requirement,
            passed,
        )
    skew = current["cells"].get("engine:makespan-skew")
    if skew:
        cpus = int(skew.get("host_cpus", 1))
        speedup = skew["speedup_wall"]
        base = _base_value(
            base_cells, "engine:makespan-skew", "speedup_wall"
        )
        if cpus >= 2:
            # The scheduler's raison d'être: on a skewed batch LPT must
            # beat the legacy FIFO plan by a real margin.
            table.gate(
                "engine:makespan-skew",
                "speedup_wall",
                f"{speedup:.2f}x",
                base,
                f">= {SKEW_MIN_SPEEDUP:.2f}x ({cpus} cpus)",
                speedup >= SKEW_MIN_SPEEDUP,
            )
        else:
            # One core: both plans serialise; nothing to gate.
            table.gate(
                "engine:makespan-skew",
                "speedup_wall",
                f"{speedup:.2f}x",
                base,
                "(1 cpu: recorded, not gated)",
                None,
            )
    print(table.render())
    return table.failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n")[0],
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke sizes (300k-instruction cells, 1 repetition)",
    )
    parser.add_argument(
        "--budget", type=int, default=None,
        help="instruction budget per kernel cell (heavy cells run 2x, "
             "batching-live turbo cells 4x)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repetitions per cell (minimum is reported)",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero when speedups regress against --baseline",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="committed BENCH_*.json to compare against in --check mode",
    )
    args = parser.parse_args(argv)

    budget = args.budget or (300_000 if args.quick else 2_000_000)
    repeats = args.repeats or (1 if args.quick else 5)
    mode = "quick" if args.quick else "full"

    print(f"bench: mode={mode} budget={budget} repeats={repeats}")
    payload = run_bench(budget, repeats, mode)

    output = args.output or Path(
        __file__
    ).resolve().parent.parent / f"BENCH_{payload['date']}.json"
    output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    summary = payload["summary"]
    print(
        "kernel speedups (cpu): "
        f"min={summary['min_kernel_speedup_cpu']:.2f}x "
        f"max={summary['max_kernel_speedup_cpu']:.2f}x; heaviest: "
        + ", ".join(
            f"{name.split(':', 1)[1]}={ratio:.2f}x"
            for name, ratio in summary["heaviest_cells"].items()
        )
    )

    if args.check:
        if args.baseline is None or not args.baseline.exists():
            print(
                "check: no baseline given/found — recording only "
                "(first run is the baseline)",
            )
            return 0
        baseline = json.loads(args.baseline.read_text())
        print(f"check: against {args.baseline}")
        failures = check_against_baseline(payload, baseline)
        if failures:
            print(f"check: {failures} regression(s)")
            return 1
        print("check: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
