"""Diagnostic dump of per-hotspot and per-phase tuning decisions.

Usage: python tools/diagnose.py <benchmark> [max_instructions]
"""

import sys

from repro.report.analysis import (
    render_hotspot_report,
    render_phase_report,
)
from repro.sim.config import ExperimentConfig
from repro.sim.driver import make_policy, run_benchmark
from repro.workloads.specjvm import build_benchmark


def main() -> None:
    bench = sys.argv[1] if len(sys.argv) > 1 else "db"
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 6_000_000
    config = ExperimentConfig(max_instructions=budget)
    built = build_benchmark(bench)

    print("=== workload ===")
    for spec in built.library.specs:
        print(
            f"  {spec.name:10s} {spec.kind:6s} size~{spec.target_size:6d} "
            f"span={spec.span:6d} trips={spec.trips_mean} "
            f"callees={spec.callees}"
        )

    print("\n=== hotspot scheme ===")
    policy = make_policy("hotspot", config)
    result = run_benchmark(built, "hotspot", config, policy=policy)
    print(
        f"ipc={result.ipc:.3f} l1dmiss={result.l1d_miss_rate:.4f} "
        f"l2miss={result.l2_miss_rate:.4f} "
        f"denied={result.denied_reconfigurations}"
    )
    print(render_hotspot_report(policy, result))

    print("\n=== bbv scheme ===")
    bbv_policy = make_policy("bbv", config)
    bbv_result = run_benchmark(built, "bbv", config, policy=bbv_policy)
    print(
        f"ipc={bbv_result.ipc:.3f} l1dmiss={bbv_result.l1d_miss_rate:.4f} "
        f"l2miss={bbv_result.l2_miss_rate:.4f} "
        f"cu_order={bbv_policy.cu_names}"
    )
    print(render_phase_report(bbv_policy))


if __name__ == "__main__":
    main()
